//! The R-tree structure: dynamic inserts, deletes, and subtree access.

use crate::node::{Entry, Node, NodeId, Payload};
use crate::split::{split, SplitStrategy};
use crate::DEFAULT_FANOUT;
use sdo_geom::Rect;
use sdo_storage::Counters;
use std::sync::Arc;

/// Cached handle for the global `rtree.node_reads` metric, bumped only
/// while a profile session is active (one relaxed load otherwise).
fn obs_node_reads() -> &'static Arc<sdo_obs::Counter> {
    static HANDLE: std::sync::OnceLock<Arc<sdo_obs::Counter>> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| sdo_obs::global().counter("rtree.node_reads"))
}

/// Tuning parameters, mirroring the knobs Oracle stores in the index
/// metadata row (fanout) plus the split strategy.
#[derive(Debug, Clone, Copy)]
pub struct RTreeParams {
    /// Maximum entries per node.
    pub max_entries: usize,
    /// Minimum entries per non-root node.
    pub min_entries: usize,
    /// Overflow split algorithm.
    pub split: SplitStrategy,
    /// R*-style forced reinsertion: on the first overflow of a level
    /// per insert, evict the ~30% entries farthest from the node
    /// center and reinsert them instead of splitting (Beckmann et al.,
    /// the paper's citation [1]). Improves node clustering for dynamic
    /// workloads at some insert cost.
    pub forced_reinsert: bool,
}

impl Default for RTreeParams {
    fn default() -> Self {
        RTreeParams {
            max_entries: DEFAULT_FANOUT,
            min_entries: DEFAULT_FANOUT * 2 / 5, // R*-recommended 40%
            split: SplitStrategy::default(),
            forced_reinsert: false,
        }
    }
}

impl RTreeParams {
    /// Params with an explicit fanout (min fill = 40%).
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout >= 4, "fanout must be at least 4");
        RTreeParams {
            max_entries: fanout,
            min_entries: (fanout * 2 / 5).max(2),
            split: SplitStrategy::default(),
            forced_reinsert: false,
        }
    }

    /// Use the given split strategy.
    pub fn with_split(mut self, s: SplitStrategy) -> Self {
        self.split = s;
        self
    }

    /// Enable or disable R* forced reinsertion.
    pub fn with_forced_reinsert(mut self, on: bool) -> Self {
        self.forced_reinsert = on;
        self
    }
}

/// Outcome of an overflowing node during insertion.
enum Overflow<T> {
    /// The node split; the new sibling (MBR + id) must be linked by the
    /// parent (or become the new root's second child).
    Split(Rect, NodeId),
    /// Forced reinsertion: these entries were evicted from a node at
    /// the given level and must be reinserted there.
    Reinsert(u32, Vec<Entry<T>>),
}

/// A reference to a subtree root, as returned by
/// [`RTree::subtree_roots`] — the unit of work for the paper's parallel
/// join decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubtreeRef {
    /// Subtree root node id.
    pub node: NodeId,
    /// Tight bounding rectangle of the subtree.
    pub mbr: Rect,
    /// The root node's level (0 = leaf).
    pub level: u32,
}

/// A dynamic R-tree over items of type `T`.
///
/// ```
/// use sdo_rtree::{RTree, RTreeParams};
/// use sdo_geom::Rect;
///
/// let mut t = RTree::new(RTreeParams::with_fanout(8));
/// t.insert(Rect::new(0.0, 0.0, 1.0, 1.0), "a");
/// t.insert(Rect::new(5.0, 5.0, 6.0, 6.0), "b");
/// let hits = t.query_window(&Rect::new(0.5, 0.5, 2.0, 2.0));
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].1, "a");
/// ```
#[derive(Clone)]
pub struct RTree<T: Clone> {
    pub(crate) nodes: Vec<Node<T>>,
    free: Vec<NodeId>,
    pub(crate) root: NodeId,
    len: usize,
    params: RTreeParams,
    counters: Option<Arc<Counters>>,
}

impl<T: Clone> Default for RTree<T> {
    fn default() -> Self {
        RTree::new(RTreeParams::default())
    }
}

impl<T: Clone> RTree<T> {
    /// An empty tree with the given parameters.
    pub fn new(params: RTreeParams) -> Self {
        assert!(params.min_entries >= 2, "min_entries must be >= 2");
        assert!(
            params.max_entries >= 2 * params.min_entries,
            "max_entries must be >= 2 * min_entries"
        );
        RTree {
            nodes: vec![Node::new(0)],
            free: Vec::new(),
            root: 0,
            len: 0,
            params,
            counters: None,
        }
    }

    /// Attach shared work counters (node reads charge
    /// `rtree_node_reads`).
    pub fn with_counters(mut self, counters: Arc<Counters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// The tree's tuning parameters.
    #[inline]
    pub fn params(&self) -> &RTreeParams {
        &self.params
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (1 = root is a leaf).
    #[inline]
    pub fn height(&self) -> u32 {
        self.nodes[self.root].level + 1
    }

    /// Bounding rectangle of the whole tree.
    pub fn mbr(&self) -> Rect {
        self.nodes[self.root].mbr()
    }

    /// The current root node id.
    #[inline]
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// Borrow a node, charging a logical node read.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<T> {
        if let Some(c) = &self.counters {
            Counters::bump(&c.rtree_node_reads);
        }
        if sdo_obs::profiling() {
            obs_node_reads().add(1);
        }
        &self.nodes[id]
    }

    /// Borrow a node without charging I/O (structural traversals).
    #[inline]
    pub(crate) fn node_quiet(&self, id: NodeId) -> &Node<T> {
        &self.nodes[id]
    }

    pub(crate) fn set_len_raw(&mut self, len: usize) {
        self.len = len;
    }

    /// Number of live nodes (allocated minus freed).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// The shared counters attached via [`RTree::with_counters`].
    pub fn counters(&self) -> Option<&Arc<Counters>> {
        self.counters.as_ref()
    }

    pub(crate) fn alloc(&mut self, node: Node<T>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            id
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn dealloc(&mut self, id: NodeId) {
        self.nodes[id].entries.clear();
        self.free.push(id);
    }

    // -- insert --------------------------------------------------------------

    /// Insert an item with its bounding rectangle.
    pub fn insert(&mut self, mbr: Rect, item: T) {
        self.insert_entry_at_level(Entry::item(mbr, item), 0);
        self.len += 1;
    }

    /// Insert an entry into some node at `target_level` (0 = leaf).
    /// Grows the tree if the root splits; drives R* forced reinsertion
    /// when enabled (at most one reinsertion round per level per
    /// logical insert, per the R*-tree).
    pub(crate) fn insert_entry_at_level(&mut self, entry: Entry<T>, target_level: u32) {
        debug_assert!(target_level <= self.nodes[self.root].level);
        let mut pending: Vec<(Entry<T>, u32)> = vec![(entry, target_level)];
        let mut reinserted_levels: u64 = 0;
        while let Some((e, lvl)) = pending.pop() {
            match self.insert_rec(self.root, e, lvl, reinserted_levels) {
                None => {}
                Some(Overflow::Split(sib_mbr, sib)) => {
                    // Root split: grow the tree by one level.
                    let old_root = self.root;
                    let old_mbr = self.nodes[old_root].mbr();
                    let new_level = self.nodes[old_root].level + 1;
                    let mut new_root = Node::new(new_level);
                    new_root.entries.push(Entry::child(old_mbr, old_root));
                    new_root.entries.push(Entry::child(sib_mbr, sib));
                    self.root = self.alloc(new_root);
                }
                Some(Overflow::Reinsert(level, entries)) => {
                    reinserted_levels |= 1u64 << level.min(63);
                    pending.extend(entries.into_iter().map(|e| (e, level)));
                }
            }
        }
    }

    /// Recursive insert; reports an overflow outcome: either a new
    /// sibling after a split, or a batch of evicted entries to
    /// reinsert at their level.
    fn insert_rec(
        &mut self,
        node: NodeId,
        entry: Entry<T>,
        target_level: u32,
        no_reinsert: u64,
    ) -> Option<Overflow<T>> {
        if self.nodes[node].level == target_level {
            self.nodes[node].entries.push(entry);
            return self.handle_overflow(node, no_reinsert);
        }
        let child_idx = self.choose_subtree(node, &entry.mbr);
        let child_id = self.nodes[node].entries[child_idx].child_id();
        let overflow = self.insert_rec(child_id, entry, target_level, no_reinsert);
        // Tighten the child's MBR after the insert.
        let child_mbr = self.nodes[child_id].mbr();
        self.nodes[node].entries[child_idx].mbr = child_mbr;
        match overflow {
            Some(Overflow::Split(sib_mbr, sib)) => {
                self.nodes[node].entries.push(Entry::child(sib_mbr, sib));
                self.handle_overflow(node, no_reinsert)
            }
            other => other, // None, or a reinsert batch bubbling up
        }
    }

    /// Resolve an overflowing node: forced reinsertion when enabled and
    /// not yet used at this level during the current insert, else a
    /// split.
    fn handle_overflow(&mut self, node: NodeId, no_reinsert: u64) -> Option<Overflow<T>> {
        if self.nodes[node].len() <= self.params.max_entries {
            return None;
        }
        let level = self.nodes[node].level;
        let reinsert_allowed = self.params.forced_reinsert
            && node != self.root
            && no_reinsert & (1u64 << level.min(63)) == 0;
        if reinsert_allowed {
            // Evict the ~30% entries farthest from the node's center.
            let evict = (self.nodes[node].len() * 3 / 10).max(1);
            let center = self.nodes[node].mbr().center();
            let n = &mut self.nodes[node];
            n.entries.sort_by(|a, b| {
                a.mbr.center().dist2(&center).total_cmp(&b.mbr.center().dist2(&center))
            });
            let evicted = n.entries.split_off(n.entries.len() - evict);
            return Some(Overflow::Reinsert(level, evicted));
        }
        self.maybe_split(node).map(|(mbr, id)| Overflow::Split(mbr, id))
    }

    /// Guttman's ChooseLeaf criterion: least enlargement, ties by least
    /// area.
    fn choose_subtree(&self, node: NodeId, mbr: &Rect) -> usize {
        let entries = &self.nodes[node].entries;
        let mut best = 0;
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, e) in entries.iter().enumerate() {
            let enl = e.mbr.enlargement(mbr);
            let area = e.mbr.area();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = i;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    fn maybe_split(&mut self, node: NodeId) -> Option<(Rect, NodeId)> {
        if self.nodes[node].len() <= self.params.max_entries {
            return None;
        }
        let level = self.nodes[node].level;
        let entries = std::mem::take(&mut self.nodes[node].entries);
        let (left, right) = split(self.params.split, entries, self.params.min_entries);
        self.nodes[node].entries = left;
        let mut sib = Node::new(level);
        sib.entries = right;
        let sib_mbr = sib.mbr();
        let sib_id = self.alloc(sib);
        Some((sib_mbr, sib_id))
    }

    // -- delete --------------------------------------------------------------

    /// Delete one item equal to `item` whose rectangle matches `mbr`.
    /// Returns true when an item was removed.
    pub fn delete(&mut self, mbr: &Rect, item: &T) -> bool
    where
        T: PartialEq,
    {
        let mut orphans: Vec<(u32, Vec<Entry<T>>)> = Vec::new();
        let deleted = self.delete_rec(self.root, mbr, item, &mut orphans);
        if !deleted {
            return false;
        }
        self.len -= 1;
        // Shrink the root while it is an internal node with one child.
        while self.nodes[self.root].level > 0 && self.nodes[self.root].len() == 1 {
            let child = self.nodes[self.root].entries[0].child_id();
            let old = self.root;
            self.root = child;
            self.dealloc(old);
        }
        if self.nodes[self.root].level > 0 && self.nodes[self.root].is_empty() {
            // Tree emptied out entirely.
            let old = self.root;
            let leaf = self.alloc(Node::new(0));
            self.root = leaf;
            self.dealloc(old);
        }
        // Reinsert orphaned entries at their original levels.
        for (level, entries) in orphans {
            for e in entries {
                // The tree may have shrunk below the orphan's level; in
                // that case graft children directly by raising the tree.
                let root_level = self.nodes[self.root].level;
                if level <= root_level {
                    self.insert_entry_at_level(e, level);
                } else {
                    // Orphan entry points to a subtree taller than the
                    // current root: make it the new root's sibling.
                    self.raise_root_to(level);
                    self.insert_entry_at_level(e, level);
                }
            }
        }
        true
    }

    /// Grow the tree with single-child internal nodes until the root
    /// sits at `level`. Only used by orphan reinsertion edge cases.
    fn raise_root_to(&mut self, level: u32) {
        while self.nodes[self.root].level < level {
            let old_root = self.root;
            let old_mbr = self.nodes[old_root].mbr();
            let mut n = Node::new(self.nodes[old_root].level + 1);
            n.entries.push(Entry::child(old_mbr, old_root));
            self.root = self.alloc(n);
        }
    }

    fn delete_rec(
        &mut self,
        node: NodeId,
        mbr: &Rect,
        item: &T,
        orphans: &mut Vec<(u32, Vec<Entry<T>>)>,
    ) -> bool
    where
        T: PartialEq,
    {
        if self.nodes[node].is_leaf() {
            let pos =
                self.nodes[node].entries.iter().position(|e| e.mbr == *mbr && e.item_ref() == item);
            return match pos {
                Some(i) => {
                    self.nodes[node].entries.swap_remove(i);
                    true
                }
                None => false,
            };
        }
        let candidates: Vec<(usize, NodeId)> = self.nodes[node]
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.mbr.intersects(mbr))
            .map(|(i, e)| (i, e.child_id()))
            .collect();
        for (idx, child) in candidates {
            if self.delete_rec(child, mbr, item, orphans) {
                let is_root = node == self.root;
                let min = if is_root { 1 } else { self.params.min_entries };
                let _ = min;
                if self.nodes[child].len() < self.params.min_entries {
                    // Condense: orphan the child's remaining entries.
                    let level = self.nodes[child].level;
                    let entries = std::mem::take(&mut self.nodes[child].entries);
                    orphans.push((level, entries));
                    self.nodes[node].entries.swap_remove(idx);
                    self.dealloc(child);
                } else {
                    self.nodes[node].entries[idx].mbr = self.nodes[child].mbr();
                }
                return true;
            }
        }
        false
    }

    // -- subtree access --------------------------------------------------------

    /// The roots of all subtrees `levels_down` levels below the root —
    /// the paper's `subtree_root(index, level)` primitive. Descending by
    /// more levels than the tree has yields the leaves.
    pub fn subtree_roots(&self, levels_down: u32) -> Vec<SubtreeRef> {
        let root_level = self.nodes[self.root].level;
        let target = root_level.saturating_sub(levels_down);
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let n = self.node_quiet(id);
            if n.level == target {
                out.push(SubtreeRef { node: id, mbr: n.mbr(), level: n.level });
            } else {
                for e in &n.entries {
                    stack.push(e.child_id());
                }
            }
        }
        out
    }

    /// Iterate every stored `(mbr, item)` pair.
    pub fn iter_items(&self) -> impl Iterator<Item = (Rect, &T)> + '_ {
        let mut stack = vec![self.root];
        let mut leaf_items: Vec<(Rect, &T)> = Vec::new();
        while let Some(id) = stack.pop() {
            let n = self.node_quiet(id);
            if n.is_leaf() {
                for e in &n.entries {
                    leaf_items.push((e.mbr, e.item_ref()));
                }
            } else {
                for e in &n.entries {
                    stack.push(e.child_id());
                }
            }
        }
        leaf_items.into_iter()
    }

    // -- merge (parallel build support) ----------------------------------------

    /// Merge several independently built trees into one — the paper's
    /// R-tree parallel creation endgame ("cluster subtrees in parallel
    /// ... merged at the end"). Consumes the inputs; parameters come
    /// from the first non-empty tree.
    pub fn merge(trees: Vec<RTree<T>>) -> RTree<T> {
        let mut iter = trees.into_iter();
        let mut acc = match iter.next() {
            Some(t) => t,
            None => return RTree::new(RTreeParams::default()),
        };
        for t in iter {
            acc.graft(t);
        }
        acc
    }

    /// Graft another tree's contents into this one by inserting its
    /// root as a subtree (copying its arena across), keeping leaves at
    /// uniform depth.
    pub fn graft(&mut self, other: RTree<T>) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other;
            return;
        }
        // Keep the taller tree as the receiver.
        let mut other = other;
        if other.height() > self.height() {
            std::mem::swap(self, &mut other);
        }
        let other_level = other.nodes[other.root].level;
        // A root is exempt from the min-fill bound, but once grafted it
        // becomes an ordinary node. If it is underfull, dissolve it and
        // insert its entries (each a legal subtree or item) one by one.
        if other.nodes[other.root].len() < self.params.min_entries {
            let other_len = other.len;
            let entries = std::mem::take(&mut other.nodes[other.root].entries);
            for e in entries {
                let adopted = match e.payload {
                    Payload::Item(t) => Entry::item(e.mbr, t),
                    Payload::Node(child) => {
                        let new_child = self.adopt_subtree(&other, child);
                        Entry::child(e.mbr, new_child)
                    }
                };
                self.insert_entry_at_level(adopted, other_level);
            }
            self.len += other_len;
            return;
        }
        // Copy other's reachable nodes into our arena, remapping ids.
        let root_new = self.adopt_subtree(&other, other.root);
        let other_mbr = other.nodes[other.root].mbr();
        let self_level = self.nodes[self.root].level;
        if other_level == self_level {
            // Equal heights: new root above both.
            let old_root = self.root;
            let old_mbr = self.nodes[old_root].mbr();
            let mut new_root = Node::new(self_level + 1);
            new_root.entries.push(Entry::child(old_mbr, old_root));
            new_root.entries.push(Entry::child(other_mbr, root_new));
            self.root = self.alloc(new_root);
        } else {
            // Insert the subtree at the level just above its root.
            self.insert_entry_at_level(Entry::child(other_mbr, root_new), other_level + 1);
        }
        self.len += other.len;
    }

    /// Recursively copy a subtree from `other` into our arena; returns
    /// the new id of `node`.
    fn adopt_subtree(&mut self, other: &RTree<T>, node: NodeId) -> NodeId {
        let src = &other.nodes[node];
        let mut dst = Node::new(src.level);
        dst.entries.reserve(src.entries.len());
        // Collect child copies first to avoid holding borrows across alloc.
        let mut copied: Vec<Entry<T>> = Vec::with_capacity(src.entries.len());
        for e in &src.entries {
            match &e.payload {
                Payload::Item(t) => copied.push(Entry::item(e.mbr, t.clone())),
                Payload::Node(child) => {
                    let new_child = self.adopt_subtree(other, *child);
                    copied.push(Entry::child(e.mbr, new_child));
                }
            }
        }
        dst.entries = copied;
        self.alloc(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(x: f64, y: f64) -> Rect {
        Rect::new(x, y, x + 1.0, y + 1.0)
    }

    fn build(n: usize, params: RTreeParams) -> RTree<usize> {
        let mut t = RTree::new(params);
        for i in 0..n {
            let x = (i % 100) as f64 * 2.0;
            let y = (i / 100) as f64 * 2.0;
            t.insert(unit(x, y), i);
        }
        t
    }

    #[test]
    fn insert_grows_tree() {
        let t = build(1000, RTreeParams::with_fanout(8));
        assert_eq!(t.len(), 1000);
        assert!(t.height() >= 3);
        t.check_invariants().unwrap();
        assert_eq!(t.iter_items().count(), 1000);
    }

    #[test]
    fn all_split_strategies_keep_invariants() {
        for s in [SplitStrategy::Linear, SplitStrategy::Quadratic, SplitStrategy::RStar] {
            let t = build(500, RTreeParams::with_fanout(6).with_split(s));
            t.check_invariants().unwrap_or_else(|e| panic!("{s:?}: {e}"));
            assert_eq!(t.len(), 500);
        }
    }

    #[test]
    fn delete_removes_and_condenses() {
        let mut t = build(300, RTreeParams::with_fanout(6));
        for i in 0..300 {
            let x = (i % 100) as f64 * 2.0;
            let y = (i / 100) as f64 * 2.0;
            assert!(t.delete(&unit(x, y), &i), "failed to delete {i}");
            assert!(!t.delete(&unit(x, y), &i), "double delete {i}");
            t.check_invariants().unwrap_or_else(|e| panic!("after delete {i}: {e}"));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn delete_nonexistent_is_noop() {
        let mut t = build(50, RTreeParams::with_fanout(8));
        assert!(!t.delete(&unit(999.0, 999.0), &1));
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn subtree_roots_partition_the_tree() {
        let t = build(2000, RTreeParams::with_fanout(8));
        for levels_down in 0..t.height() {
            let roots = t.subtree_roots(levels_down);
            if levels_down == 0 {
                assert_eq!(roots.len(), 1);
                assert_eq!(roots[0].node, t.root_id());
            }
            // Items under all subtree roots must total the tree size.
            let mut count = 0;
            for r in &roots {
                let mut stack = vec![r.node];
                while let Some(id) = stack.pop() {
                    let n = t.node_quiet(id);
                    if n.is_leaf() {
                        count += n.len();
                    } else {
                        for e in &n.entries {
                            stack.push(e.child_id());
                        }
                    }
                }
            }
            assert_eq!(count, 2000, "levels_down={levels_down}");
        }
    }

    #[test]
    fn subtree_roots_beyond_height_returns_leaves() {
        let t = build(100, RTreeParams::with_fanout(8));
        let roots = t.subtree_roots(99);
        assert!(roots.iter().all(|r| r.level == 0));
    }

    #[test]
    fn merge_equal_and_unequal_heights() {
        let a = build(400, RTreeParams::with_fanout(8));
        let mut small = RTree::new(RTreeParams::with_fanout(8));
        for i in 0..10 {
            small.insert(unit(500.0 + i as f64, 0.0), 10_000 + i);
        }
        let merged = RTree::merge(vec![a, small]);
        assert_eq!(merged.len(), 410);
        merged.check_invariants().unwrap();
        // all items survive
        let mut items: Vec<usize> = merged.iter_items().map(|(_, i)| *i).collect();
        items.sort_unstable();
        assert_eq!(items.len(), 410);
        assert_eq!(items[400..], (10_000..10_010).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn merge_with_empty_and_reversed_heights() {
        let empty: RTree<usize> = RTree::new(RTreeParams::with_fanout(8));
        let big = build(300, RTreeParams::with_fanout(8));
        let mut tiny = RTree::new(RTreeParams::with_fanout(8));
        tiny.insert(unit(0.0, 0.0), 1);
        // tiny receives big: graft must swap internally
        let merged = RTree::merge(vec![tiny, empty, big]);
        assert_eq!(merged.len(), 301);
        merged.check_invariants().unwrap();
    }

    #[test]
    fn forced_reinsert_keeps_invariants_and_improves_packing() {
        let base = RTreeParams::with_fanout(8);
        let rstar = base.with_forced_reinsert(true);
        let mut plain = RTree::new(base);
        let mut reins = RTree::new(rstar);
        // adversarial insertion order: interleave two far clusters
        for i in 0..600usize {
            let (x, y) = if i % 2 == 0 {
                ((i % 37) as f64 * 2.0, (i % 23) as f64 * 2.0)
            } else {
                (500.0 + (i % 29) as f64 * 2.0, 500.0 + (i % 31) as f64 * 2.0)
            };
            plain.insert(unit(x, y), i);
            reins.insert(unit(x, y), i);
        }
        reins.check_invariants().unwrap();
        assert_eq!(reins.len(), 600);
        // identical contents
        let mut a: Vec<usize> = plain.iter_items().map(|(_, i)| *i).collect();
        let mut b: Vec<usize> = reins.iter_items().map(|(_, i)| *i).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // identical window query answers
        let w = Rect::new(10.0, 10.0, 60.0, 40.0);
        let mut qa: Vec<usize> = plain.query_window(&w).into_iter().map(|(_, i)| i).collect();
        let mut qb: Vec<usize> = reins.query_window(&w).into_iter().map(|(_, i)| i).collect();
        qa.sort_unstable();
        qb.sort_unstable();
        assert_eq!(qa, qb);
        // deletes still work with reinsertion enabled
        for i in (0..600).step_by(3) {
            let (x, y) = if i % 2 == 0 {
                ((i % 37) as f64 * 2.0, (i % 23) as f64 * 2.0)
            } else {
                (500.0 + (i % 29) as f64 * 2.0, 500.0 + (i % 31) as f64 * 2.0)
            };
            assert!(reins.delete(&unit(x, y), &i));
        }
        reins.check_invariants().unwrap();
    }

    #[test]
    fn counters_track_node_reads() {
        let c = Arc::new(Counters::new());
        let t = build(200, RTreeParams::with_fanout(8)).with_counters(Arc::clone(&c));
        let _ = t.node(t.root_id());
        assert!(Counters::get(&c.rtree_node_reads) >= 1);
    }
}
