//! Structural invariant checking for R-trees.

use crate::node::{NodeId, Payload};
use crate::tree::RTree;

impl<T: Clone> RTree<T> {
    /// Verify every structural invariant:
    ///
    /// * each internal entry's MBR equals (not merely contains) the
    ///   child node's tight MBR,
    /// * levels decrease by exactly one per edge; leaves are level 0,
    /// * fill bounds: non-root nodes hold `min..=max` entries, the root
    ///   holds `<= max` (and `>= 2` when internal),
    /// * item count matches `len()`.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut items = 0usize;
        self.check_node(self.root, true, &mut items)?;
        if items != self.len() {
            return Err(format!("len() = {} but found {items} items", self.len()));
        }
        Ok(())
    }

    fn check_node(&self, id: NodeId, is_root: bool, items: &mut usize) -> Result<(), String> {
        let n = self.node_quiet(id);
        let min = self.params().min_entries;
        let max = self.params().max_entries;
        if n.len() > max {
            return Err(format!("node {id} overfull: {} > {max}", n.len()));
        }
        if is_root {
            if n.level > 0 && n.len() < 2 {
                return Err(format!("internal root has {} entries", n.len()));
            }
        } else if n.len() < min {
            return Err(format!("node {id} (level {}) underfull: {} < {min}", n.level, n.len()));
        }
        for e in &n.entries {
            match &e.payload {
                Payload::Item(_) => {
                    if n.level != 0 {
                        return Err(format!("item entry in internal node {id}"));
                    }
                    *items += 1;
                }
                Payload::Node(child) => {
                    if n.level == 0 {
                        return Err(format!("child entry in leaf node {id}"));
                    }
                    let c = self.node_quiet(*child);
                    if c.level + 1 != n.level {
                        return Err(format!(
                            "level mismatch: node {id} level {} -> child {child} level {}",
                            n.level, c.level
                        ));
                    }
                    let tight = c.mbr();
                    if e.mbr != tight {
                        return Err(format!(
                            "entry MBR {} differs from child {child} tight MBR {tight}",
                            e.mbr
                        ));
                    }
                    self.check_node(*child, false, items)?;
                }
            }
        }
        Ok(())
    }
}
