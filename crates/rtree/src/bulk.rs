//! Sort-Tile-Recursive bulk loading.
//!
//! STR (Leutenegger, Lopez & Edgington, cited as \[13\]) packs sorted
//! items into full leaves, then recursively packs each level the same
//! way. Bulk-built trees are what the paper's parallel R-tree creation
//! produces per partition before [`crate::RTree::merge`] combines them.

use crate::node::{Entry, Node};
use crate::tree::{RTree, RTreeParams};
use sdo_geom::Rect;

impl<T: Clone> RTree<T> {
    /// Build a packed tree from `(mbr, item)` pairs using STR.
    pub fn bulk_load(items: Vec<(Rect, T)>, params: RTreeParams) -> RTree<T> {
        let mut tree = RTree::new(params);
        if items.is_empty() {
            return tree;
        }
        let mut level: u32 = 0;
        let mut entries: Vec<Entry<T>> =
            items.into_iter().map(|(mbr, t)| Entry::item(mbr, t)).collect();
        let count = entries.len();

        loop {
            if entries.len() <= params.max_entries {
                // These entries become the root.
                let mut root = Node::new(level);
                root.entries = entries;
                let id = tree.alloc(root);
                tree.set_root_raw(id, count);
                return tree;
            }
            let groups = str_pack(entries, params.max_entries, params.min_entries);
            let mut parents: Vec<Entry<T>> = Vec::with_capacity(groups.len());
            for g in groups {
                let mut n = Node::new(level);
                n.entries = g;
                let mbr = n.mbr();
                let id = tree.alloc(n);
                parents.push(Entry::child(mbr, id));
            }
            entries = parents;
            level += 1;
        }
    }
}

/// One round of STR packing: sort by x-center, slice, sort each slice
/// by y-center, chunk into groups of at most `max` (balancing the last
/// two groups so none drops below `min`).
fn str_pack<T>(mut entries: Vec<Entry<T>>, max: usize, min: usize) -> Vec<Vec<Entry<T>>> {
    let n = entries.len();
    let node_count = n.div_ceil(max);
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(slice_count);

    entries.sort_by(|a, b| a.mbr.center().x.total_cmp(&b.mbr.center().x));

    let mut groups = Vec::with_capacity(node_count);
    let mut rest = entries;
    while !rest.is_empty() {
        let take = slice_size.min(rest.len());
        let mut slice: Vec<Entry<T>> = rest.drain(..take).collect();
        slice.sort_by(|a, b| a.mbr.center().y.total_cmp(&b.mbr.center().y));
        // Chunk the slice, balancing the tail.
        let mut remaining = slice.len();
        let mut it = slice.into_iter();
        while remaining > 0 {
            let take = if remaining > max && remaining < max + min {
                remaining / 2
            } else {
                max.min(remaining)
            };
            groups.push((&mut it).take(take).collect());
            remaining -= take;
        }
    }
    groups
}

impl<T: Clone> RTree<T> {
    /// Install a pre-built root (bulk load internal use).
    pub(crate) fn set_root_raw(&mut self, root: crate::node::NodeId, len: usize) {
        self.root = root;
        self.set_len_raw(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_geom::Point;

    fn items(n: usize) -> Vec<(Rect, usize)> {
        (0..n)
            .map(|i| {
                // pseudo-random but deterministic placement
                let x = ((i * 2654435761) % 10_000) as f64 / 10.0;
                let y = ((i * 40503) % 10_000) as f64 / 10.0;
                (Rect::new(x, y, x + 1.5, y + 1.5), i)
            })
            .collect()
    }

    #[test]
    fn bulk_load_sizes() {
        for n in [0usize, 1, 31, 32, 33, 1000, 5000] {
            let t = RTree::bulk_load(items(n), RTreeParams::with_fanout(32));
            assert_eq!(t.len(), n, "n={n}");
            t.check_invariants().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(t.iter_items().count(), n);
        }
    }

    #[test]
    fn bulk_load_queries_match_brute_force() {
        let data = items(2000);
        let t = RTree::bulk_load(data.clone(), RTreeParams::with_fanout(16));
        let window = Rect::new(100.0, 100.0, 400.0, 300.0);
        let mut got: Vec<usize> = t.query_window(&window).into_iter().map(|(_, i)| i).collect();
        got.sort_unstable();
        let mut want: Vec<usize> =
            data.iter().filter(|(r, _)| r.intersects(&window)).map(|(_, i)| *i).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn bulk_tree_is_shallower_than_incremental() {
        let data = items(4000);
        let bulk = RTree::bulk_load(data.clone(), RTreeParams::with_fanout(16));
        let mut incr = RTree::new(RTreeParams::with_fanout(16));
        for (r, i) in data {
            incr.insert(r, i);
        }
        assert!(bulk.height() <= incr.height());
        // STR packs nodes fuller: fewer nodes overall.
        assert!(bulk.node_count() <= incr.node_count());
    }

    #[test]
    fn bulk_supports_subsequent_updates() {
        let mut t = RTree::bulk_load(items(500), RTreeParams::with_fanout(8));
        t.insert(Rect::new(0.0, 0.0, 1.0, 1.0), 9999);
        assert_eq!(t.len(), 501);
        assert!(t.delete(&Rect::new(0.0, 0.0, 1.0, 1.0), &9999));
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn knn_on_bulk_tree() {
        let data = items(1000);
        let t = RTree::bulk_load(data.clone(), RTreeParams::with_fanout(16));
        let q = Point::new(500.0, 500.0);
        let got = t.query_knn(&q, 10);
        let mut want: Vec<f64> = data.iter().map(|(r, _)| r.mindist_point(&q)).collect();
        want.sort_by(f64::total_cmp);
        for (i, (d, _, _)) in got.iter().enumerate() {
            assert!((d - want[i]).abs() < 1e-9);
        }
    }
}
