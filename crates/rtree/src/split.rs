//! Node split strategies.
//!
//! Dynamic R-tree performance hinges on how overflowing nodes split.
//! Three published strategies are provided — Guttman's linear and
//! quadratic splits \[8\] and the R*-tree topological split \[1\] — and
//! the choice is a tuning parameter ([`crate::RTreeParams`]), giving
//! the ablation benches a real knob to turn.

use crate::node::Entry;
use sdo_geom::Rect;

/// Which split algorithm an R-tree uses when a node overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Guttman's linear-time seed selection.
    Linear,
    /// Guttman's quadratic-time seed selection (Oracle-era default).
    #[default]
    Quadratic,
    /// R*-tree axis/distribution selection (margin then overlap).
    RStar,
}

/// Split `entries` (length `M + 1`) into two groups, each with at least
/// `min` entries.
pub fn split<T>(
    strategy: SplitStrategy,
    entries: Vec<Entry<T>>,
    min: usize,
) -> (Vec<Entry<T>>, Vec<Entry<T>>) {
    debug_assert!(entries.len() >= 2 * min, "cannot satisfy min fill");
    match strategy {
        SplitStrategy::Linear => guttman_split(entries, min, pick_seeds_linear),
        SplitStrategy::Quadratic => guttman_split(entries, min, pick_seeds_quadratic),
        SplitStrategy::RStar => rstar_split(entries, min),
    }
}

// ---------------------------------------------------------------------------
// Guttman splits
// ---------------------------------------------------------------------------

/// Linear seed pick: per axis, the pair with greatest normalized
/// separation between one entry's high side and another's low side.
fn pick_seeds_linear<T>(entries: &[Entry<T>]) -> (usize, usize) {
    let mut best = (0usize, 1usize);
    let mut best_sep = f64::NEG_INFINITY;
    for axis in 0..2 {
        let (lo, hi, width) = axis_extents(entries, axis);
        if width <= 0.0 {
            continue;
        }
        // highest low side and lowest high side
        let mut highest_low = 0;
        let mut lowest_high = 0;
        for (i, e) in entries.iter().enumerate() {
            if low(&e.mbr, axis) > low(&entries[highest_low].mbr, axis) {
                highest_low = i;
            }
            if high(&e.mbr, axis) < high(&entries[lowest_high].mbr, axis) {
                lowest_high = i;
            }
        }
        if highest_low == lowest_high {
            continue;
        }
        let sep =
            (low(&entries[highest_low].mbr, axis) - high(&entries[lowest_high].mbr, axis)) / width;
        let _ = (lo, hi);
        if sep > best_sep {
            best_sep = sep;
            best = (lowest_high, highest_low);
        }
    }
    best
}

/// Quadratic seed pick: the pair wasting the most area if grouped.
fn pick_seeds_quadratic<T>(entries: &[Entry<T>]) -> (usize, usize) {
    let mut best = (0usize, 1usize);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = entries[i].mbr.union(&entries[j].mbr).area()
                - entries[i].mbr.area()
                - entries[j].mbr.area();
            if waste > worst_waste {
                worst_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

fn guttman_split<T>(
    mut entries: Vec<Entry<T>>,
    min: usize,
    pick_seeds: fn(&[Entry<T>]) -> (usize, usize),
) -> (Vec<Entry<T>>, Vec<Entry<T>>) {
    let (s1, s2) = pick_seeds(&entries);
    // Remove higher index first so the lower stays valid.
    let (hi, lo) = if s1 > s2 { (s1, s2) } else { (s2, s1) };
    let seed_b = entries.swap_remove(hi);
    let seed_a = entries.swap_remove(lo);
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = group_a[0].mbr;
    let mut mbr_b = group_b[0].mbr;

    while let Some(next) = pick_next(&entries, &mbr_a, &mbr_b) {
        let total_left = entries.len();
        // Min-fill enforcement: if a group must take everything left.
        if group_a.len() + total_left == min {
            for e in entries.drain(..) {
                mbr_a = mbr_a.union(&e.mbr);
                group_a.push(e);
            }
            break;
        }
        if group_b.len() + total_left == min {
            for e in entries.drain(..) {
                mbr_b = mbr_b.union(&e.mbr);
                group_b.push(e);
            }
            break;
        }
        let e = entries.swap_remove(next);
        let enl_a = mbr_a.enlargement(&e.mbr);
        let enl_b = mbr_b.enlargement(&e.mbr);
        let to_a = match enl_a.partial_cmp(&enl_b) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            // Ties: smaller area, then fewer entries.
            _ => {
                if mbr_a.area() != mbr_b.area() {
                    mbr_a.area() < mbr_b.area()
                } else {
                    group_a.len() <= group_b.len()
                }
            }
        };
        if to_a {
            mbr_a = mbr_a.union(&e.mbr);
            group_a.push(e);
        } else {
            mbr_b = mbr_b.union(&e.mbr);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

/// Guttman's PickNext: the entry with the greatest preference
/// difference between the two groups.
fn pick_next<T>(entries: &[Entry<T>], mbr_a: &Rect, mbr_b: &Rect) -> Option<usize> {
    if entries.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_diff = f64::NEG_INFINITY;
    for (i, e) in entries.iter().enumerate() {
        let diff = (mbr_a.enlargement(&e.mbr) - mbr_b.enlargement(&e.mbr)).abs();
        if diff > best_diff {
            best_diff = diff;
            best = i;
        }
    }
    Some(best)
}

// ---------------------------------------------------------------------------
// R* split
// ---------------------------------------------------------------------------

fn rstar_split<T>(entries: Vec<Entry<T>>, min: usize) -> (Vec<Entry<T>>, Vec<Entry<T>>) {
    let n = entries.len();
    // Choose the split axis: the one whose sorted distributions have the
    // smallest total margin.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..2 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            low(&entries[a].mbr, axis)
                .total_cmp(&low(&entries[b].mbr, axis))
                .then(high(&entries[a].mbr, axis).total_cmp(&high(&entries[b].mbr, axis)))
        });
        let mut margin_sum = 0.0;
        for k in min..=(n - min) {
            let left = union_of(&entries, &order[..k]);
            let right = union_of(&entries, &order[k..]);
            margin_sum += left.margin() + right.margin();
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }
    // Along the chosen axis, pick the distribution with minimal overlap
    // (ties: minimal combined area).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        low(&entries[a].mbr, best_axis)
            .total_cmp(&low(&entries[b].mbr, best_axis))
            .then(high(&entries[a].mbr, best_axis).total_cmp(&high(&entries[b].mbr, best_axis)))
    });
    let mut best_k = min;
    let mut best_overlap = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for k in min..=(n - min) {
        let left = union_of(&entries, &order[..k]);
        let right = union_of(&entries, &order[k..]);
        let overlap = left.overlap_area(&right);
        let area = left.area() + right.area();
        if overlap < best_overlap || (overlap == best_overlap && area < best_area) {
            best_overlap = overlap;
            best_area = area;
            best_k = k;
        }
    }
    // Materialize the two groups in order.
    let mut take_left = vec![false; n];
    for &i in &order[..best_k] {
        take_left[i] = true;
    }
    let mut left = Vec::with_capacity(best_k);
    let mut right = Vec::with_capacity(n - best_k);
    for (i, e) in entries.into_iter().enumerate() {
        if take_left[i] {
            left.push(e);
        } else {
            right.push(e);
        }
    }
    (left, right)
}

#[inline]
fn low(r: &Rect, axis: usize) -> f64 {
    if axis == 0 {
        r.min_x
    } else {
        r.min_y
    }
}

#[inline]
fn high(r: &Rect, axis: usize) -> f64 {
    if axis == 0 {
        r.max_x
    } else {
        r.max_y
    }
}

fn axis_extents<T>(entries: &[Entry<T>], axis: usize) -> (f64, f64, f64) {
    let lo = entries.iter().map(|e| low(&e.mbr, axis)).fold(f64::INFINITY, f64::min);
    let hi = entries.iter().map(|e| high(&e.mbr, axis)).fold(f64::NEG_INFINITY, f64::max);
    (lo, hi, hi - lo)
}

fn union_of<T>(entries: &[Entry<T>], idx: &[usize]) -> Rect {
    idx.iter().fold(Rect::EMPTY, |acc, &i| acc.union(&entries[i].mbr))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(rects: &[(f64, f64, f64, f64)]) -> Vec<Entry<usize>> {
        rects
            .iter()
            .enumerate()
            .map(|(i, &(a, b, c, d))| Entry::item(Rect::new(a, b, c, d), i))
            .collect()
    }

    fn check_split(strategy: SplitStrategy, es: Vec<Entry<usize>>, min: usize) {
        let n = es.len();
        let (a, b) = split(strategy, es, min);
        assert!(a.len() >= min, "{strategy:?}: group A underfull ({})", a.len());
        assert!(b.len() >= min, "{strategy:?}: group B underfull ({})", b.len());
        assert_eq!(a.len() + b.len(), n, "{strategy:?}: entries lost");
        // no duplicates
        let mut ids: Vec<usize> = a.iter().chain(b.iter()).map(|e| *e.item_ref()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "{strategy:?}: duplicated entries");
    }

    fn two_clusters() -> Vec<Entry<usize>> {
        entries(&[
            (0.0, 0.0, 1.0, 1.0),
            (0.5, 0.5, 1.5, 1.5),
            (1.0, 0.0, 2.0, 1.0),
            (0.0, 1.0, 1.0, 2.0),
            (100.0, 100.0, 101.0, 101.0),
            (100.5, 100.5, 101.5, 101.5),
            (101.0, 100.0, 102.0, 101.0),
        ])
    }

    #[test]
    fn all_strategies_satisfy_min_fill() {
        for strategy in [SplitStrategy::Linear, SplitStrategy::Quadratic, SplitStrategy::RStar] {
            check_split(strategy, two_clusters(), 2);
            check_split(strategy, two_clusters(), 3);
        }
    }

    #[test]
    fn clusters_separate_cleanly() {
        for strategy in [SplitStrategy::Linear, SplitStrategy::Quadratic, SplitStrategy::RStar] {
            let (a, b) = split(strategy, two_clusters(), 2);
            let mbr_a = a.iter().fold(Rect::EMPTY, |acc, e| acc.union(&e.mbr));
            let mbr_b = b.iter().fold(Rect::EMPTY, |acc, e| acc.union(&e.mbr));
            assert!(
                !mbr_a.intersects(&mbr_b),
                "{strategy:?} failed to separate obvious clusters: {mbr_a} vs {mbr_b}"
            );
        }
    }

    #[test]
    fn identical_rects_split_evenly_enough() {
        let es = entries(&[(0.0, 0.0, 1.0, 1.0); 9]);
        for strategy in [SplitStrategy::Linear, SplitStrategy::Quadratic, SplitStrategy::RStar] {
            check_split(strategy, es.clone(), 4);
        }
    }

    #[test]
    fn rstar_minimizes_overlap_on_grid() {
        // 4x2 grid of unit squares: the R* split should cut along x with
        // zero overlap.
        let mut rs = Vec::new();
        for i in 0..4 {
            for j in 0..2 {
                rs.push((i as f64, j as f64, i as f64 + 1.0, j as f64 + 1.0));
            }
        }
        let (a, b) = split(SplitStrategy::RStar, entries(&rs), 2);
        let mbr_a = a.iter().fold(Rect::EMPTY, |acc, e| acc.union(&e.mbr));
        let mbr_b = b.iter().fold(Rect::EMPTY, |acc, e| acc.union(&e.mbr));
        assert_eq!(mbr_a.overlap_area(&mbr_b), 0.0);
    }
}
