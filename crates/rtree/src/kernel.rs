//! Batched MBR filter kernels over SoA rectangle arrays.
//!
//! The per-entry loops in `query.rs` and `join.rs` test one
//! `Rect` at a time through two pointer dereferences and four
//! short-circuiting comparisons — the branchy shape that defeats
//! auto-vectorization. Following *SIMD-ified R-tree Query Processing*
//! (Rayhan & Aref), this module keeps a node's rectangles in a
//! structure-of-arrays view ([`SoaMbrs`]: four contiguous `f64`
//! arrays) and evaluates predicates branch-free over 64-entry chunks,
//! collecting hits into a bitmask so the comparison loop carries no
//! data-dependent branches and LLVM can lower it to packed compares.
//!
//! For node-pair joins the quadratic scan is replaced above
//! [`SWEEP_THRESHOLD`] by sort-by-`min_x` + forward plane-sweep
//! (Tsitsigkos & Mamoulis, *Parallel In-Memory Evaluation of Spatial
//! Joins*): each rectangle only inspects the run of rectangles whose
//! x-interval overlaps its own, so sparse node pairs cost
//! O(n log n + k) instead of O(n·m).
//!
//! ### Degenerate rectangles
//!
//! All kernels treat a rectangle as *valid* only when
//! `min_x <= max_x && min_y <= max_y`. [`Rect::EMPTY`]
//! (`+inf..-inf`) and any rectangle with a NaN coordinate fail that
//! test and never match — including under `WithinDistance`, where the
//! scalar `mindist` would launder NaN into `0.0` via `f64::max`. The
//! batch kernels are therefore strictly *stricter* than the scalar
//! path on garbage input and identical on valid input.

use crate::join::JoinPredicate;
use crate::node::Entry;
use sdo_geom::{axis_mindist, Rect};

pub mod simd;

/// Entry-count product above which a node-pair join uses the
/// plane-sweep instead of the chunked scan. Below it the sort overhead
/// is not paid back; 256 corresponds to two half-full fanout-32 nodes.
pub const SWEEP_THRESHOLD: usize = 256;

/// A structure-of-arrays view of a run of MBRs: four parallel `f64`
/// arrays. Reused across node visits via [`SoaMbrs::fill`] so the
/// steady-state query loop performs no allocation.
#[derive(Debug, Default, Clone)]
pub struct SoaMbrs {
    min_x: Vec<f64>,
    min_y: Vec<f64>,
    max_x: Vec<f64>,
    max_y: Vec<f64>,
}

impl SoaMbrs {
    /// An empty view; fill it with [`SoaMbrs::fill`] or [`SoaMbrs::push`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rectangles in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.min_x.len()
    }

    /// True when the view holds no rectangles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x.is_empty()
    }

    /// Drop all rectangles, keeping capacity.
    pub fn clear(&mut self) {
        self.min_x.clear();
        self.min_y.clear();
        self.max_x.clear();
        self.max_y.clear();
    }

    /// Append one rectangle.
    #[inline]
    pub fn push(&mut self, r: &Rect) {
        self.min_x.push(r.min_x);
        self.min_y.push(r.min_y);
        self.max_x.push(r.max_x);
        self.max_y.push(r.max_y);
    }

    /// Rebuild the view from an iterator of rectangles (clears first).
    pub fn fill<'a>(&mut self, rects: impl IntoIterator<Item = &'a Rect>) {
        self.clear();
        for r in rects {
            self.push(r);
        }
    }

    /// Rebuild the view from a node's entries (clears first).
    pub fn fill_from_entries<T>(&mut self, entries: &[Entry<T>]) {
        self.fill(entries.iter().map(|e| &e.mbr));
    }

    /// Reassemble rectangle `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Rect {
        Rect::new(self.min_x[i], self.min_y[i], self.max_x[i], self.max_y[i])
    }

    /// `min_x <= max_x && min_y <= max_y` — false for `Rect::EMPTY`
    /// and for any NaN coordinate.
    #[inline]
    fn valid(&self, i: usize) -> bool {
        self.min_x[i] <= self.max_x[i] && self.min_y[i] <= self.max_y[i]
    }

    /// Indices whose rectangles intersect `q`, in ascending order.
    /// Chunked and branch-free: each 64-entry chunk packs its hits
    /// into a bitmask before any data-dependent branch runs. Returns
    /// the number of rectangles tested (== `len()` unless `q` is
    /// degenerate, in which case 0).
    pub fn scan_intersects(&self, q: &Rect, mut emit: impl FnMut(usize)) -> u64 {
        if !(q.min_x <= q.max_x && q.min_y <= q.max_y) {
            return 0;
        }
        let n = self.len();
        let mut base = 0;
        while base < n {
            let chunk = (n - base).min(64);
            let mut mask: u64 = 0;
            for j in 0..chunk {
                let i = base + j;
                // Same four comparisons as `Rect::intersects`; `&`
                // instead of `&&` keeps the loop branch-free. NaN
                // coordinates fail every comparison, so degenerate
                // entries drop out with no extra validity term.
                let hit = (self.min_x[i] <= q.max_x)
                    & (q.min_x <= self.max_x[i])
                    & (self.min_y[i] <= q.max_y)
                    & (q.min_y <= self.max_y[i]);
                mask |= (hit as u64) << j;
            }
            while mask != 0 {
                let j = mask.trailing_zeros() as usize;
                emit(base + j);
                mask &= mask - 1;
            }
            base += chunk;
        }
        n as u64
    }

    /// Indices whose rectangles lie within `mindist <= d` of `q`
    /// (matching `Rect::mindist`'s formula exactly on valid input).
    /// Degenerate entries never match; returns rectangles tested.
    pub fn scan_within(&self, q: &Rect, d: f64, mut emit: impl FnMut(usize)) -> u64 {
        let valid = q.min_x <= q.max_x && q.min_y <= q.max_y;
        if !valid || d.is_nan() || d < 0.0 {
            return 0;
        }
        let n = self.len();
        let mut base = 0;
        while base < n {
            let chunk = (n - base).min(64);
            let mut mask: u64 = 0;
            for j in 0..chunk {
                let i = base + j;
                // `Rect::mindist` via the shared `axis_mindist` clamp,
                // so the kernel is bit-identical to the scalar path.
                // The validity term rejects EMPTY/NaN entries that the
                // `max` chain would otherwise launder to 0.
                let dx = axis_mindist(q.min_x, q.max_x, self.min_x[i], self.max_x[i]);
                let dy = axis_mindist(q.min_y, q.max_y, self.min_y[i], self.max_y[i]);
                let hit = ((dx * dx + dy * dy).sqrt() <= d)
                    & (self.min_x[i] <= self.max_x[i])
                    & (self.min_y[i] <= self.max_y[i]);
                mask |= (hit as u64) << j;
            }
            while mask != 0 {
                let j = mask.trailing_zeros() as usize;
                emit(base + j);
                mask &= mask - 1;
            }
            base += chunk;
        }
        n as u64
    }

    /// Indices whose rectangles are fully contained in `q` (matching
    /// `q.contains_rect(r)`): the containment side of window queries.
    pub fn scan_contained_in(&self, q: &Rect, mut emit: impl FnMut(usize)) -> u64 {
        let n = self.len();
        let mut base = 0;
        while base < n {
            let chunk = (n - base).min(64);
            let mut mask: u64 = 0;
            for j in 0..chunk {
                let i = base + j;
                let hit = (q.min_x <= self.min_x[i])
                    & (q.min_y <= self.min_y[i])
                    & (self.max_x[i] <= q.max_x)
                    & (self.max_y[i] <= q.max_y)
                    & (self.min_x[i] <= self.max_x[i])
                    & (self.min_y[i] <= self.max_y[i]);
                mask |= (hit as u64) << j;
            }
            while mask != 0 {
                let j = mask.trailing_zeros() as usize;
                emit(base + j);
                mask &= mask - 1;
            }
            base += chunk;
        }
        n as u64
    }

    /// Apply the join predicate against a single probe rectangle —
    /// the scan half of the node-pair join. Dispatches to the
    /// intersect or within-distance kernel.
    #[inline]
    pub fn scan_pred(&self, pred: JoinPredicate, q: &Rect, emit: impl FnMut(usize)) -> u64 {
        match pred {
            JoinPredicate::Intersects => self.scan_intersects(q, emit),
            JoinPredicate::WithinDistance(d) => self.scan_within(q, d, emit),
        }
    }
}

/// Scratch state for [`sweep_pairs`], reused across node pairs so the
/// join loop does not allocate in steady state.
#[derive(Debug, Default)]
pub struct SweepScratch {
    left: Vec<u32>,
    right: Vec<u32>,
}

impl SweepScratch {
    /// Fresh scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Sort-by-`min_x` forward plane-sweep over two SoA rectangle sets.
/// Emits every index pair `(i, j)` satisfying `pred`, in sweep order.
/// Degenerate rectangles (EMPTY / NaN) are dropped before the sweep
/// and can never match. Returns the number of candidate pair tests
/// actually performed (the sweep's inner-loop trip count) — the
/// number a quadratic scan would charge is `a.len() * b.len()`.
pub fn sweep_pairs(
    a: &SoaMbrs,
    b: &SoaMbrs,
    pred: JoinPredicate,
    scratch: &mut SweepScratch,
    mut emit: impl FnMut(usize, usize),
) -> u64 {
    let reach = match pred {
        JoinPredicate::Intersects => 0.0,
        JoinPredicate::WithinDistance(d) => {
            if d.is_nan() || d < 0.0 {
                return 0;
            }
            d
        }
    };
    sweep_sort_orders(a, b, &mut scratch.left, &mut scratch.right);

    let (la, lb) = (scratch.left.len(), scratch.right.len());
    let mut tests = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < la && j < lb {
        let ai = scratch.left[i] as usize;
        let bj = scratch.right[j] as usize;
        if a.min_x[ai] <= b.min_x[bj] {
            // `a[ai]` opens first: run forward over the right side
            // while its x-interval (grown by `reach`) still overlaps.
            let stop = a.max_x[ai] + reach;
            for &jj in &scratch.right[j..] {
                let bj = jj as usize;
                if b.min_x[bj] > stop {
                    break;
                }
                tests += 1;
                if pair_matches(a, ai, b, bj, pred) {
                    emit(ai, bj);
                }
            }
            i += 1;
        } else {
            let stop = b.max_x[bj] + reach;
            for &ii in &scratch.left[i..] {
                let ai = ii as usize;
                if a.min_x[ai] > stop {
                    break;
                }
                tests += 1;
                if pair_matches(a, ai, b, bj, pred) {
                    emit(ai, bj);
                }
            }
            j += 1;
        }
    }
    tests
}

/// Build the sweep's sorted index orders: valid rectangles only (EMPTY
/// and NaN entries are dropped here and can never pair), ascending by
/// `min_x` under `total_cmp`. Shared by [`sweep_pairs`] and the
/// vectorized [`simd::sweep_pairs_simd`] so both sweeps visit pairs in
/// the identical order.
pub(crate) fn sweep_sort_orders(
    a: &SoaMbrs,
    b: &SoaMbrs,
    left: &mut Vec<u32>,
    right: &mut Vec<u32>,
) {
    left.clear();
    right.clear();
    left.extend((0..a.len() as u32).filter(|&i| a.valid(i as usize)));
    right.extend((0..b.len() as u32).filter(|&j| b.valid(j as usize)));
    left.sort_unstable_by(|&x, &y| a.min_x[x as usize].total_cmp(&a.min_x[y as usize]));
    right.sort_unstable_by(|&x, &y| b.min_x[x as usize].total_cmp(&b.min_x[y as usize]));
}

/// The sweep's inner test. X-overlap is implied by the sweep invariant
/// for `Intersects` (both rectangles are valid and the later `min_x`
/// falls inside the earlier interval), so only y remains; distance
/// pairs recompute the full `Rect::mindist` formula so results are
/// bit-identical to the scalar path.
#[inline]
fn pair_matches(a: &SoaMbrs, i: usize, b: &SoaMbrs, j: usize, pred: JoinPredicate) -> bool {
    match pred {
        JoinPredicate::Intersects => a.min_y[i] <= b.max_y[j] && b.min_y[j] <= a.max_y[i],
        JoinPredicate::WithinDistance(d) => {
            let dx = axis_mindist(a.min_x[i], a.max_x[i], b.min_x[j], b.max_x[j]);
            let dy = axis_mindist(a.min_y[i], a.max_y[i], b.min_y[j], b.max_y[j]);
            (dx * dx + dy * dy).sqrt() <= d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soa(rects: &[Rect]) -> SoaMbrs {
        let mut s = SoaMbrs::new();
        s.fill(rects.iter());
        s
    }

    fn rects(n: usize, offset: f64) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = offset + ((i * 2654435761) % 997) as f64 / 3.0;
                let y = ((i * 40503) % 991) as f64 / 3.0;
                Rect::new(x, y, x + 4.0, y + 4.0)
            })
            .collect()
    }

    #[test]
    fn scan_intersects_matches_scalar() {
        let rs = rects(300, 0.0);
        let s = soa(&rs);
        for q in [
            Rect::new(10.0, 10.0, 60.0, 60.0),
            Rect::new(-100.0, -100.0, -50.0, -50.0),
            Rect::new(0.0, 0.0, 1000.0, 1000.0),
        ] {
            let mut got = Vec::new();
            s.scan_intersects(&q, |i| got.push(i));
            let want: Vec<usize> = (0..rs.len()).filter(|&i| rs[i].intersects(&q)).collect();
            assert_eq!(got, want, "window {q}");
        }
    }

    #[test]
    fn scan_within_matches_scalar() {
        let rs = rects(300, 0.0);
        let s = soa(&rs);
        let q = Rect::new(100.0, 100.0, 120.0, 120.0);
        for d in [0.0, 3.5, 40.0] {
            let mut got = Vec::new();
            s.scan_within(&q, d, |i| got.push(i));
            let want: Vec<usize> = (0..rs.len()).filter(|&i| rs[i].mindist(&q) <= d).collect();
            assert_eq!(got, want, "d={d}");
        }
    }

    #[test]
    fn scan_contained_matches_scalar() {
        let rs = rects(300, 0.0);
        let s = soa(&rs);
        let q = Rect::new(20.0, 20.0, 200.0, 200.0);
        let mut got = Vec::new();
        s.scan_contained_in(&q, |i| got.push(i));
        let want: Vec<usize> = (0..rs.len()).filter(|&i| q.contains_rect(&rs[i])).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn degenerate_rects_never_match_in_scans() {
        let bad = [
            Rect::EMPTY,
            Rect::new(f64::NAN, 0.0, 1.0, 1.0),
            Rect::new(0.0, f64::NAN, 1.0, 1.0),
            Rect::new(0.0, 0.0, f64::NAN, 1.0),
            Rect::new(0.0, 0.0, 1.0, f64::NAN),
            Rect::new(f64::NAN, f64::NAN, f64::NAN, f64::NAN),
        ];
        let s = soa(&bad);
        let huge = Rect::new(-1e12, -1e12, 1e12, 1e12);
        let mut hits = 0;
        s.scan_intersects(&huge, |_| hits += 1);
        s.scan_within(&huge, 1e12, |_| hits += 1);
        s.scan_contained_in(&huge, |_| hits += 1);
        assert_eq!(hits, 0, "EMPTY/NaN rectangles must never match");
        // Degenerate *query* matches nothing either.
        let good = soa(&[Rect::new(0.0, 0.0, 1.0, 1.0)]);
        for q in [Rect::EMPTY, Rect::new(f64::NAN, 0.0, 1.0, 1.0)] {
            good.scan_intersects(&q, |_| hits += 1);
            good.scan_within(&q, 10.0, |_| hits += 1);
            good.scan_contained_in(&q, |_| hits += 1);
        }
        assert_eq!(hits, 0, "degenerate query windows must match nothing");
    }

    #[test]
    fn sweep_matches_nested_loop() {
        let ra = rects(180, 0.0);
        let rb = rects(140, 55.0);
        let (sa, sb) = (soa(&ra), soa(&rb));
        let mut scratch = SweepScratch::new();
        for pred in [JoinPredicate::Intersects, JoinPredicate::WithinDistance(6.0)] {
            let mut got = Vec::new();
            let tests = sweep_pairs(&sa, &sb, pred, &mut scratch, |i, j| got.push((i, j)));
            got.sort_unstable();
            let mut want = Vec::new();
            for (i, x) in ra.iter().enumerate() {
                for (j, y) in rb.iter().enumerate() {
                    if pred.matches(x, y) {
                        want.push((i, j));
                    }
                }
            }
            assert_eq!(got, want, "{pred:?}");
            assert!(
                tests < (ra.len() * rb.len()) as u64,
                "{pred:?}: sweep should test fewer pairs ({tests}) than quadratic"
            );
        }
    }

    #[test]
    fn sweep_drops_degenerate_rects() {
        let mut ra = rects(40, 0.0);
        ra.push(Rect::EMPTY);
        ra.push(Rect::new(f64::NAN, 0.0, 1e9, 1e9));
        let rb = rects(40, 0.0);
        let (sa, sb) = (soa(&ra), soa(&rb));
        let mut scratch = SweepScratch::new();
        for pred in [JoinPredicate::Intersects, JoinPredicate::WithinDistance(1e9)] {
            let mut got = Vec::new();
            sweep_pairs(&sa, &sb, pred, &mut scratch, |i, j| got.push((i, j)));
            assert!(
                got.iter().all(|&(i, _)| i < 40),
                "{pred:?}: degenerate left rectangles must never pair"
            );
        }
    }

    #[test]
    fn sweep_handles_negative_distance() {
        let ra = rects(20, 0.0);
        let (sa, sb) = (soa(&ra), soa(&ra));
        let mut scratch = SweepScratch::new();
        let mut n = 0;
        sweep_pairs(&sa, &sb, JoinPredicate::WithinDistance(-1.0), &mut scratch, |_, _| n += 1);
        assert_eq!(n, 0);
        let mut m = 0;
        soa(&ra).scan_within(&ra[0], -1.0, |_| m += 1);
        assert_eq!(m, 0);
    }

    #[test]
    fn scan_within_matches_rect_mindist_on_degenerate_rects() {
        // Regression pin: `scan_within` and the per-rect `Rect::mindist`
        // must agree exactly on degenerate (point / axis-parallel line)
        // rectangles, because both sides now share `axis_mindist`.
        // EMPTY entries never match regardless of distance.
        let rs = [
            Rect::new(3.0, 4.0, 3.0, 4.0),   // point
            Rect::new(0.0, 7.0, 10.0, 7.0),  // horizontal line
            Rect::new(-2.0, 0.0, -2.0, 9.0), // vertical line
            Rect::new(1.0, 1.0, 2.0, 2.0),   // ordinary box
            Rect::EMPTY,
        ];
        let s = soa(&rs);
        for q in [
            Rect::new(0.0, 0.0, 0.0, 0.0), // degenerate query point
            Rect::new(0.0, 5.0, 6.0, 5.0), // degenerate query line
            Rect::new(0.0, 0.0, 4.0, 4.0),
        ] {
            for d in [0.0, 1.0, 2.5, 5.0, 100.0] {
                let mut got = Vec::new();
                s.scan_within(&q, d, |i| got.push(i));
                let want: Vec<usize> = (0..4).filter(|&i| rs[i].mindist(&q) <= d).collect();
                assert_eq!(got, want, "q={q} d={d}");
                assert!(!got.contains(&4), "EMPTY must never match");
            }
        }
    }

    #[test]
    fn soa_roundtrip_and_reuse() {
        let rs = rects(70, 0.0);
        let mut s = SoaMbrs::new();
        s.fill(rs.iter());
        assert_eq!(s.len(), 70);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(&s.get(i), r);
        }
        s.fill(rs[..3].iter());
        assert_eq!(s.len(), 3);
        s.clear();
        assert!(s.is_empty());
    }
}
