//! Arena-allocated R-tree nodes.

use sdo_geom::Rect;

/// Index of a node in the tree's arena.
pub type NodeId = usize;

/// One slot of a node: a bounding rectangle plus either a child node
/// (internal levels) or a data item (leaf level).
#[derive(Debug, Clone)]
pub struct Entry<T> {
    /// Bounding rectangle of the child subtree or data item.
    pub mbr: Rect,
    /// Child pointer or data item.
    pub payload: Payload<T>,
}

/// What an entry points at.
#[derive(Debug, Clone)]
pub enum Payload<T> {
    /// Child node pointer (level > 0).
    Node(NodeId),
    /// Data item (level 0).
    Item(T),
}

impl<T> Entry<T> {
    /// A leaf entry holding `item`.
    pub fn item(mbr: Rect, item: T) -> Self {
        Entry { mbr, payload: Payload::Item(item) }
    }

    /// An internal entry pointing at `node`.
    pub fn child(mbr: Rect, node: NodeId) -> Self {
        Entry { mbr, payload: Payload::Node(node) }
    }

    /// The child node id (panics on leaf entries).
    pub fn child_id(&self) -> NodeId {
        match &self.payload {
            Payload::Node(id) => *id,
            Payload::Item(_) => panic!("leaf entry has no child"),
        }
    }

    /// The data item (panics on internal entries).
    pub fn item_ref(&self) -> &T {
        match &self.payload {
            Payload::Item(t) => t,
            Payload::Node(_) => panic!("internal entry has no item"),
        }
    }
}

/// An R-tree node: a flat vector of entries plus its level.
///
/// `level == 0` is the leaf level; the root carries the largest level.
/// Keeping levels explicit (instead of deriving them from depth) makes
/// subtree grafting during parallel-build merges straightforward.
#[derive(Debug, Clone)]
pub struct Node<T> {
    /// 0 = leaf; the root carries the largest level.
    pub level: u32,
    /// The node's entries (items at level 0, children above).
    pub entries: Vec<Entry<T>>,
}

impl<T> Node<T> {
    /// An empty node at `level`.
    pub fn new(level: u32) -> Self {
        Node { level, entries: Vec::new() }
    }

    /// True at the leaf level.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tight bounding rectangle over this node's entries.
    pub fn mbr(&self) -> Rect {
        self.entries.iter().fold(Rect::EMPTY, |acc, e| acc.union(&e.mbr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mbr_is_union_of_entries() {
        let mut n: Node<u32> = Node::new(0);
        assert!(n.is_leaf());
        assert!(n.is_empty());
        n.entries.push(Entry::item(Rect::new(0.0, 0.0, 1.0, 1.0), 1));
        n.entries.push(Entry::item(Rect::new(5.0, 2.0, 6.0, 3.0), 2));
        assert_eq!(n.mbr(), Rect::new(0.0, 0.0, 6.0, 3.0));
        assert_eq!(n.len(), 2);
        assert_eq!(*n.entries[0].item_ref(), 1);
    }

    #[test]
    #[should_panic(expected = "no child")]
    fn item_entry_has_no_child() {
        let e: Entry<u32> = Entry::item(Rect::EMPTY, 1);
        let _ = e.child_id();
    }
}
