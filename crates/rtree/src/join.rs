//! The synchronized-traversal R-tree join.
//!
//! The paper's §4.2: "the subtree roots of the R-tree indexes ... are
//! pushed onto a stack. In each fetch call, the spatial join processing
//! is resumed using the contents of the stack and as many result join
//! rowids are determined as specified in the fetch call."
//!
//! [`JoinCursor`] is exactly that object: an explicit-stack,
//! *restartable* tree-matching traversal (Brinkhoff-style, \[10\])
//! producing candidate pairs in bounded batches. Seed it with the two
//! roots for a serial join, or with a single subtree-root pair per
//! parallel slave for the paper's parallel decomposition (Figure 1).

use crate::kernel::simd::{
    scan_pred_quantized, scan_pred_simd, sweep_pairs_simd, QuantCounters, QuantizedMbrs,
    SweepScratchSimd, QUANT_SWEEP_SCALE,
};
use crate::kernel::{sweep_pairs, SoaMbrs, SweepScratch, SWEEP_THRESHOLD};
use crate::node::{Entry, Node, NodeId};
use crate::tree::RTree;
use sdo_geom::Rect;
use sdo_storage::Counters;
use std::collections::VecDeque;
use std::sync::Arc;

fn obs_kernel_sweeps() -> &'static Arc<sdo_obs::Counter> {
    static HANDLE: std::sync::OnceLock<Arc<sdo_obs::Counter>> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| sdo_obs::global().counter("rtree.kernel.sweeps"))
}

fn obs_kernel_scans() -> &'static Arc<sdo_obs::Counter> {
    static HANDLE: std::sync::OnceLock<Arc<sdo_obs::Counter>> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| sdo_obs::global().counter("rtree.kernel.scans"))
}

fn obs_kernel_quantized_hits() -> &'static Arc<sdo_obs::Counter> {
    static HANDLE: std::sync::OnceLock<Arc<sdo_obs::Counter>> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| sdo_obs::global().counter("rtree.kernel.quantized_hits"))
}

fn obs_kernel_exact_rejects() -> &'static Arc<sdo_obs::Counter> {
    static HANDLE: std::sync::OnceLock<Arc<sdo_obs::Counter>> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| sdo_obs::global().counter("rtree.kernel.exact_rejects"))
}

fn obs_kernel_packet_descents() -> &'static Arc<sdo_obs::Counter> {
    static HANDLE: std::sync::OnceLock<Arc<sdo_obs::Counter>> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| sdo_obs::global().counter("rtree.kernel.packet_descents"))
}

/// Which node-pair matching implementation the join runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Entry-by-entry nested loops over the AoS node layout — the
    /// pre-kernel code path, kept for ablation (`kernel=scalar`).
    Scalar,
    /// SoA batch kernels: chunked branch-free scans for small node
    /// pairs, sort + forward plane-sweep above [`SWEEP_THRESHOLD`].
    #[default]
    Batch,
    /// Explicit SIMD kernels (`kernel=simd`): runtime-dispatched vector
    /// scans ([`crate::kernel::simd`]), the quantized u16 node layout
    /// for sub-threshold pairs, the vectorized plane-sweep above it,
    /// and packet descent for leaf-vs-subtree pairs.
    Simd,
}

impl KernelMode {
    /// Parse the SQL option value (`scalar` | `batch` | `simd`).
    pub fn parse(s: &str) -> Option<KernelMode> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelMode::Scalar),
            "batch" => Some(KernelMode::Batch),
            "simd" => Some(KernelMode::Simd),
            _ => None,
        }
    }
}

/// Per-cursor kernel accounting: how many node pairs went through the
/// plane-sweep vs the batch scan, and how many pair tests each ran.
/// Surfaced as `kernel_sweeps` / `kernel_scans` metrics in
/// `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Node pairs matched with the plane-sweep.
    pub sweeps: u64,
    /// Node pairs (or single-rect probes) matched with batch scans.
    pub scans: u64,
    /// Pair tests actually executed by the batch kernels.
    pub tests: u64,
    /// Candidates that passed the quantized u16 prefilter
    /// ([`KernelMode::Simd`] only).
    pub quantized_hits: u64,
    /// Quantized candidates the exact f64 re-check then rejected.
    pub exact_rejects: u64,
    /// Nodes visited by packet descents (a node loaded once for a
    /// whole probe packet counts once).
    pub packet_descents: u64,
}

impl KernelStats {
    /// Accumulate another cursor's stats (parallel slaves merge here).
    pub fn merge(&mut self, other: &KernelStats) {
        self.sweeps += other.sweeps;
        self.scans += other.scans;
        self.tests += other.tests;
        self.quantized_hits += other.quantized_hits;
        self.exact_rejects += other.exact_rejects;
        self.packet_descents += other.packet_descents;
    }
}

/// The MBR-level predicate driving the primary filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinPredicate {
    /// MBRs intersect (candidates for ANYINTERACT and all containment
    /// masks).
    Intersects,
    /// MBRs lie within distance `d` (candidates for
    /// `SDO_WITHIN_DISTANCE` joins).
    WithinDistance(f64),
}

impl JoinPredicate {
    /// Evaluate the predicate on two MBRs.
    #[inline]
    pub fn matches(&self, a: &Rect, b: &Rect) -> bool {
        match self {
            JoinPredicate::Intersects => a.intersects(b),
            JoinPredicate::WithinDistance(d) => a.mindist(b) <= *d,
        }
    }
}

/// A candidate pair produced by the MBR join: both items plus their
/// MBRs (the secondary filter uses the items — rowids — to fetch exact
/// geometries).
pub type CandidatePair<A, B> = (Rect, A, Rect, B);

/// Suspended traversal state: the pending node-pair stack plus
/// undelivered candidates (see [`JoinCursor::into_parts`]).
pub type SuspendedJoin<A, B> = (Vec<(NodeId, NodeId)>, VecDeque<CandidatePair<A, B>>);

/// Restartable synchronized traversal of two R-trees.
pub struct JoinCursor<'a, A: Clone, B: Clone> {
    left: &'a RTree<A>,
    right: &'a RTree<B>,
    pred: JoinPredicate,
    /// Pending node pairs still to be expanded.
    stack: Vec<(NodeId, NodeId)>,
    /// Candidate pairs produced but not yet handed out.
    buf: VecDeque<CandidatePair<A, B>>,
    counters: Option<Arc<Counters>>,
    kernel: KernelMode,
    /// Pair-product cutoff above which [`match_pairwise`] switches from
    /// per-probe scans to the plane-sweep (default [`SWEEP_THRESHOLD`]).
    sweep_threshold: usize,
    /// SoA scratch views + sweep order buffers, reused across node
    /// pairs so the steady-state join loop does not allocate.
    soa_left: SoaMbrs,
    soa_right: SoaMbrs,
    sweep: SweepScratch,
    /// Simd-mode scratch: quantized right-node keys, gathered sweep
    /// buffers, the probe packet's SoA view, and the packet stack.
    quant_right: QuantizedMbrs,
    sweep_simd: SweepScratchSimd,
    probes_soa: SoaMbrs,
    packet_stack: Vec<(NodeId, u8)>,
    stats: KernelStats,
}

impl<'a, A: Clone, B: Clone> JoinCursor<'a, A, B> {
    /// Join the full trees (single root pair).
    pub fn new(left: &'a RTree<A>, right: &'a RTree<B>, pred: JoinPredicate) -> Self {
        let mut stack = Vec::new();
        if !left.is_empty() && !right.is_empty() {
            stack.push((left.root_id(), right.root_id()));
        }
        Self::build(left, right, pred, stack, VecDeque::new())
    }

    fn build(
        left: &'a RTree<A>,
        right: &'a RTree<B>,
        pred: JoinPredicate,
        stack: Vec<(NodeId, NodeId)>,
        buf: VecDeque<CandidatePair<A, B>>,
    ) -> Self {
        JoinCursor {
            left,
            right,
            pred,
            stack,
            buf,
            counters: None,
            kernel: KernelMode::default(),
            sweep_threshold: SWEEP_THRESHOLD,
            soa_left: SoaMbrs::new(),
            soa_right: SoaMbrs::new(),
            sweep: SweepScratch::new(),
            quant_right: QuantizedMbrs::new(),
            sweep_simd: SweepScratchSimd::new(),
            probes_soa: SoaMbrs::new(),
            packet_stack: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// Join specific subtree pairs — the parallel decomposition: each
    /// slave receives the cross product slice assigned to it.
    pub fn from_pairs(
        left: &'a RTree<A>,
        right: &'a RTree<B>,
        pred: JoinPredicate,
        pairs: Vec<(NodeId, NodeId)>,
    ) -> Self {
        Self::build(left, right, pred, pairs, VecDeque::new())
    }

    /// Charge MBR tests to shared counters.
    pub fn with_counters(mut self, counters: Arc<Counters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Select the node-pair matching kernel (default [`KernelMode::Batch`]).
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Override the pair-product cutoff for the plane-sweep (default
    /// [`SWEEP_THRESHOLD`]). `0` makes every node pair take the sweep;
    /// `usize::MAX` forces the scan paths throughout. Under
    /// [`KernelMode::Simd`] the effective cutoff is this value scaled
    /// by [`QUANT_SWEEP_SCALE`] — quantized scans move the crossover.
    pub fn with_sweep_threshold(mut self, threshold: usize) -> Self {
        self.sweep_threshold = threshold;
        self
    }

    /// Kernel accounting accumulated so far (sweeps/scans/tests).
    pub fn kernel_stats(&self) -> KernelStats {
        self.stats
    }

    /// True when no further candidates can be produced.
    pub fn is_exhausted(&self) -> bool {
        self.stack.is_empty() && self.buf.is_empty()
    }

    /// Suspend the traversal: extract the pending node-pair stack and
    /// undelivered candidates. Together with [`JoinCursor::from_parts`]
    /// this lets a pipelined table function persist join state between
    /// `fetch` calls without holding a borrow of the trees.
    pub fn into_parts(self) -> SuspendedJoin<A, B> {
        (self.stack, self.buf)
    }

    /// Resume a suspended traversal (see [`JoinCursor::into_parts`]).
    pub fn from_parts(
        left: &'a RTree<A>,
        right: &'a RTree<B>,
        pred: JoinPredicate,
        stack: Vec<(NodeId, NodeId)>,
        buf: VecDeque<CandidatePair<A, B>>,
    ) -> Self {
        Self::build(left, right, pred, stack, buf)
    }

    #[inline]
    fn charge_mbr_tests(&self, n: u64) {
        if let Some(c) = &self.counters {
            Counters::add(&c.mbr_tests, n);
        }
    }

    /// Produce up to `max` candidate pairs, resuming from the stack —
    /// the body of the table function's `fetch`. Returns an empty vec
    /// when the join is complete.
    pub fn next_batch(&mut self, max: usize) -> Vec<CandidatePair<A, B>> {
        while self.buf.len() < max {
            let Some((l, r)) = self.stack.pop() else { break };
            self.expand(l, r);
        }
        let n = self.buf.len().min(max);
        self.buf.drain(..n).collect()
    }

    /// Drain the entire join.
    pub fn collect_all(&mut self) -> Vec<CandidatePair<A, B>> {
        let mut out = Vec::new();
        loop {
            let batch = self.next_batch(4096);
            if batch.is_empty() {
                return out;
            }
            out.extend(batch);
        }
    }

    /// Expand one node pair: emit candidates for leaf/leaf, descend the
    /// deeper side otherwise. Under [`KernelMode::Batch`] the pairwise
    /// cases run the SoA kernels: plane-sweep above
    /// [`SWEEP_THRESHOLD`], chunked batch scans below it.
    fn expand(&mut self, l: NodeId, r: NodeId) {
        let ln = self.left.node(l);
        let rn = self.right.node(r);
        match (ln.is_leaf(), rn.is_leaf()) {
            (true, true) => match self.kernel {
                KernelMode::Scalar => {
                    self.charge_mbr_tests((ln.len() * rn.len()) as u64);
                    for le in &ln.entries {
                        for re in &rn.entries {
                            if self.pred.matches(&le.mbr, &re.mbr) {
                                self.buf.push_back((
                                    le.mbr,
                                    le.item_ref().clone(),
                                    re.mbr,
                                    re.item_ref().clone(),
                                ));
                            }
                        }
                    }
                }
                KernelMode::Batch | KernelMode::Simd => {
                    let tests = self.match_pairwise(ln, rn, |ln, rn, buf, _, i, j| {
                        let (le, re) = (&ln.entries[i], &rn.entries[j]);
                        buf.push_back((
                            le.mbr,
                            le.item_ref().clone(),
                            re.mbr,
                            re.item_ref().clone(),
                        ));
                    });
                    self.charge_mbr_tests(tests);
                }
            },
            (false, false) if ln.level == rn.level => match self.kernel {
                KernelMode::Scalar => {
                    // Same level: pairwise child matching.
                    self.charge_mbr_tests((ln.len() * rn.len()) as u64);
                    for le in &ln.entries {
                        for re in &rn.entries {
                            if self.pred.matches(&le.mbr, &re.mbr) {
                                self.stack.push((le.child_id(), re.child_id()));
                            }
                        }
                    }
                }
                KernelMode::Batch | KernelMode::Simd => {
                    let tests = self.match_pairwise(ln, rn, |ln, rn, _, stack, i, j| {
                        stack.push((ln.entries[i].child_id(), rn.entries[j].child_id()));
                    });
                    self.charge_mbr_tests(tests);
                }
            },
            _ => {
                // Unequal heights: descend whichever node sits higher.
                if ln.level > rn.level {
                    let rmbr = rn.mbr();
                    match self.kernel {
                        KernelMode::Scalar => {
                            self.charge_mbr_tests(ln.len() as u64);
                            for le in &ln.entries {
                                if self.pred.matches(&le.mbr, &rmbr) {
                                    self.stack.push((le.child_id(), r));
                                }
                            }
                        }
                        KernelMode::Batch => {
                            self.charge_mbr_tests(ln.len() as u64);
                            self.soa_left.fill_from_entries(&ln.entries);
                            let stack = &mut self.stack;
                            let tests = self.soa_left.scan_pred(self.pred, &rmbr, |i| {
                                stack.push((ln.entries[i].child_id(), r));
                            });
                            self.stats.scans += 1;
                            self.stats.tests += tests;
                            if sdo_obs::profiling() {
                                obs_kernel_scans().add(1);
                            }
                        }
                        KernelMode::Simd if rn.is_leaf() => {
                            // The right node is a whole leaf of probes:
                            // descend the packet through the left
                            // subtree together, loading each node once.
                            let buf = &mut self.buf;
                            let (tests, descents) = packet_probe_subtree(
                                &rn.entries,
                                self.left,
                                l,
                                self.pred,
                                &mut self.probes_soa,
                                &mut self.packet_stack,
                                |p, le| {
                                    let re = &rn.entries[p];
                                    buf.push_back((
                                        le.mbr,
                                        le.item_ref().clone(),
                                        re.mbr,
                                        re.item_ref().clone(),
                                    ));
                                },
                            );
                            self.stats.packet_descents += descents;
                            self.stats.tests += tests;
                            self.charge_mbr_tests(tests);
                            if sdo_obs::profiling() {
                                obs_kernel_packet_descents().add(descents);
                            }
                        }
                        KernelMode::Simd => {
                            self.charge_mbr_tests(ln.len() as u64);
                            self.soa_left.fill_from_entries(&ln.entries);
                            let stack = &mut self.stack;
                            let tests = scan_pred_simd(&self.soa_left, self.pred, &rmbr, |i| {
                                stack.push((ln.entries[i].child_id(), r));
                            });
                            self.stats.scans += 1;
                            self.stats.tests += tests;
                            if sdo_obs::profiling() {
                                obs_kernel_scans().add(1);
                            }
                        }
                    }
                } else {
                    let lmbr = ln.mbr();
                    match self.kernel {
                        KernelMode::Scalar => {
                            self.charge_mbr_tests(rn.len() as u64);
                            for re in &rn.entries {
                                if self.pred.matches(&lmbr, &re.mbr) {
                                    self.stack.push((l, re.child_id()));
                                }
                            }
                        }
                        KernelMode::Batch => {
                            self.charge_mbr_tests(rn.len() as u64);
                            self.soa_right.fill_from_entries(&rn.entries);
                            let stack = &mut self.stack;
                            let tests = self.soa_right.scan_pred(self.pred, &lmbr, |j| {
                                stack.push((l, rn.entries[j].child_id()));
                            });
                            self.stats.scans += 1;
                            self.stats.tests += tests;
                            if sdo_obs::profiling() {
                                obs_kernel_scans().add(1);
                            }
                        }
                        KernelMode::Simd if ln.is_leaf() => {
                            let buf = &mut self.buf;
                            let (tests, descents) = packet_probe_subtree(
                                &ln.entries,
                                self.right,
                                r,
                                self.pred,
                                &mut self.probes_soa,
                                &mut self.packet_stack,
                                |p, re| {
                                    let le = &ln.entries[p];
                                    buf.push_back((
                                        le.mbr,
                                        le.item_ref().clone(),
                                        re.mbr,
                                        re.item_ref().clone(),
                                    ));
                                },
                            );
                            self.stats.packet_descents += descents;
                            self.stats.tests += tests;
                            self.charge_mbr_tests(tests);
                            if sdo_obs::profiling() {
                                obs_kernel_packet_descents().add(descents);
                            }
                        }
                        KernelMode::Simd => {
                            self.charge_mbr_tests(rn.len() as u64);
                            self.soa_right.fill_from_entries(&rn.entries);
                            let stack = &mut self.stack;
                            let tests = scan_pred_simd(&self.soa_right, self.pred, &lmbr, |j| {
                                stack.push((l, rn.entries[j].child_id()));
                            });
                            self.stats.scans += 1;
                            self.stats.tests += tests;
                            if sdo_obs::profiling() {
                                obs_kernel_scans().add(1);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Batch/Simd-mode pairwise matching of two nodes' entry lists: the
    /// plane-sweep when the pair product is large enough to amortize
    /// the sort, per-probe scans otherwise. Under [`KernelMode::Simd`]
    /// the sweep is the vectorized [`sweep_pairs_simd`] and the scans
    /// go through the quantized u16 node layout
    /// ([`scan_pred_quantized`]). `emit` receives the two nodes, the
    /// candidate buffer, the traversal stack, and the matching entry
    /// index pair; returns pair tests executed.
    fn match_pairwise(
        &mut self,
        ln: &Node<A>,
        rn: &Node<B>,
        mut emit: impl FnMut(
            &Node<A>,
            &Node<B>,
            &mut VecDeque<CandidatePair<A, B>>,
            &mut Vec<(NodeId, NodeId)>,
            usize,
            usize,
        ),
    ) -> u64 {
        self.soa_right.fill_from_entries(&rn.entries);
        let simd = self.kernel == KernelMode::Simd;
        let buf = &mut self.buf;
        let stack = &mut self.stack;
        // Quantized scans move the sweep crossover far up: sorting only
        // pays for itself against 16-keys-per-op branchless scans once
        // node products reach ~512² (see QUANT_SWEEP_SCALE).
        let cutoff = if simd {
            self.sweep_threshold.saturating_mul(QUANT_SWEEP_SCALE)
        } else {
            self.sweep_threshold
        };
        let tests;
        if ln.len() * rn.len() >= cutoff {
            self.soa_left.fill_from_entries(&ln.entries);
            tests = if simd {
                sweep_pairs_simd(
                    &self.soa_left,
                    &self.soa_right,
                    self.pred,
                    &mut self.sweep_simd,
                    |i, j| emit(ln, rn, buf, stack, i, j),
                )
            } else {
                sweep_pairs(&self.soa_left, &self.soa_right, self.pred, &mut self.sweep, |i, j| {
                    emit(ln, rn, buf, stack, i, j)
                })
            };
            self.stats.sweeps += 1;
            if sdo_obs::profiling() {
                obs_kernel_sweeps().add(1);
            }
        } else {
            let mut n = 0;
            if simd {
                self.quant_right.fill_from_soa(&self.soa_right);
                let mut counters = QuantCounters::default();
                for (i, le) in ln.entries.iter().enumerate() {
                    n += scan_pred_quantized(
                        &self.quant_right,
                        &self.soa_right,
                        self.pred,
                        &le.mbr,
                        &mut counters,
                        |j| emit(ln, rn, buf, stack, i, j),
                    );
                }
                self.stats.quantized_hits += counters.quantized_hits;
                self.stats.exact_rejects += counters.exact_rejects;
                if sdo_obs::profiling() {
                    obs_kernel_quantized_hits().add(counters.quantized_hits);
                    obs_kernel_exact_rejects().add(counters.exact_rejects);
                }
            } else {
                for (i, le) in ln.entries.iter().enumerate() {
                    n += self
                        .soa_right
                        .scan_pred(self.pred, &le.mbr, |j| emit(ln, rn, buf, stack, i, j));
                }
            }
            tests = n;
            self.stats.scans += 1;
            if sdo_obs::profiling() {
                obs_kernel_scans().add(1);
            }
        }
        self.stats.tests += tests;
        tests
    }
}

/// Ray-packet-style multi-query descent: push a packet of up to 8
/// probe rectangles through `tree` from `root` together, loading each
/// visited node once for the whole packet (the "shared node loads" of
/// packet traversal). Each node entry is tested against the packet
/// with one SoA vector scan; the resulting hit mask, ANDed with the
/// packet's active mask, decides which lanes descend. At the leaves,
/// `emit(probe_index, entry)` fires for every surviving (probe, item)
/// hit. Returns `(pair_tests, nodes_descended)`.
fn packet_probe_subtree<P: Clone, S: Clone>(
    probes: &[Entry<P>],
    tree: &RTree<S>,
    root: NodeId,
    pred: JoinPredicate,
    probes_soa: &mut SoaMbrs,
    stack: &mut Vec<(NodeId, u8)>,
    mut emit: impl FnMut(usize, &Entry<S>),
) -> (u64, u64) {
    let mut tests = 0u64;
    let mut descents = 0u64;
    for (chunk, group) in probes.chunks(8).enumerate() {
        let base = chunk * 8;
        probes_soa.fill(group.iter().map(|e| &e.mbr));
        let full = ((1u16 << group.len()) - 1) as u8;
        stack.clear();
        stack.push((root, full));
        while let Some((id, mask)) = stack.pop() {
            descents += 1;
            let node = tree.node(id);
            for e in &node.entries {
                let mut bits = 0u8;
                // Both join predicates are symmetric, so probing the
                // packet with the entry MBR tests the same pairs.
                tests += scan_pred_simd(probes_soa, pred, &e.mbr, |p| bits |= 1 << p);
                let active = bits & mask;
                if active == 0 {
                    continue;
                }
                if node.is_leaf() {
                    let mut lanes = active;
                    while lanes != 0 {
                        emit(base + lanes.trailing_zeros() as usize, e);
                        lanes &= lanes - 1;
                    }
                } else {
                    stack.push((e.child_id(), active));
                }
            }
        }
    }
    (tests, descents)
}

/// Build the subtree-pair work list for a parallel join: descend both
/// trees `levels_down` levels and return the MBR-filtered cross product
/// of subtree roots (Figure 1's `(R11,S11) ... (R12,S12)` pairs).
pub fn subtree_pair_tasks<A: Clone, B: Clone>(
    left: &RTree<A>,
    right: &RTree<B>,
    pred: JoinPredicate,
    levels_down: u32,
) -> Vec<(NodeId, NodeId)> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    let ls = left.subtree_roots(levels_down);
    let rs = right.subtree_roots(levels_down);
    let mut pairs = Vec::new();
    for l in &ls {
        for r in &rs {
            if pred.matches(&l.mbr, &r.mbr) {
                pairs.push((l.node, r.node));
            }
        }
    }
    pairs
}

/// Split one join task into finer-grained tasks by expanding the pair
/// a single level, applying the same matching rules as the traversal
/// itself (pairwise children at equal levels, descend the higher side
/// otherwise). Returns `None` for a leaf/leaf pair — that task is
/// already atomic. Used by the work-stealing parallel join to keep
/// task granularity small enough for load balancing: processing the
/// returned tasks yields exactly the candidates the original pair
/// would have produced.
pub fn split_pair<A: Clone, B: Clone>(
    left: &RTree<A>,
    right: &RTree<B>,
    pred: JoinPredicate,
    l: NodeId,
    r: NodeId,
) -> Option<Vec<(NodeId, NodeId)>> {
    let ln = left.node(l);
    let rn = right.node(r);
    let mut out = Vec::new();
    match (ln.is_leaf(), rn.is_leaf()) {
        (true, true) => return None,
        (false, false) if ln.level == rn.level => {
            for le in &ln.entries {
                for re in &rn.entries {
                    if pred.matches(&le.mbr, &re.mbr) {
                        out.push((le.child_id(), re.child_id()));
                    }
                }
            }
        }
        _ => {
            if ln.level > rn.level {
                let rmbr = rn.mbr();
                for le in &ln.entries {
                    if pred.matches(&le.mbr, &rmbr) {
                        out.push((le.child_id(), r));
                    }
                }
            } else {
                let lmbr = ln.mbr();
                for re in &rn.entries {
                    if pred.matches(&lmbr, &re.mbr) {
                        out.push((l, re.child_id()));
                    }
                }
            }
        }
    }
    Some(out)
}

/// Crude upper bound on the leaf-level work of joining the subtrees
/// under a node pair: the product of each side's estimated item count
/// (`len * fanout^level`). Cheap — two node reads, no traversal — and
/// monotone in subtree size, which is all the work-stealing scheduler
/// needs to decide whether a task is worth splitting.
pub fn estimate_pair_work<A: Clone, B: Clone>(
    left: &RTree<A>,
    right: &RTree<B>,
    l: NodeId,
    r: NodeId,
) -> u64 {
    fn est<T: Clone>(tree: &RTree<T>, id: NodeId) -> u64 {
        let node = tree.node(id);
        let fanout = tree.params().max_entries as u64;
        let mut n = node.len() as u64;
        for _ in 0..node.level {
            n = n.saturating_mul(fanout);
        }
        n.max(1)
    }
    est(left, l).saturating_mul(est(right, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeParams;

    fn tree(offset: f64, n: usize, fanout: usize) -> (RTree<usize>, Vec<Rect>) {
        let mut rects = Vec::new();
        for i in 0..n {
            let x = offset + ((i * 2654435761) % 1000) as f64 / 5.0;
            let y = ((i * 40503) % 1000) as f64 / 5.0;
            rects.push(Rect::new(x, y, x + 2.0, y + 2.0));
        }
        let items: Vec<(Rect, usize)> = rects.iter().cloned().zip(0..n).collect();
        (RTree::bulk_load(items, RTreeParams::with_fanout(fanout)), rects)
    }

    fn brute_force(a: &[Rect], b: &[Rect], pred: JoinPredicate) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, ra) in a.iter().enumerate() {
            for (j, rb) in b.iter().enumerate() {
                if pred.matches(ra, rb) {
                    out.push((i, j));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn sorted_pairs(c: Vec<super::CandidatePair<usize, usize>>) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = c.into_iter().map(|(_, a, _, b)| (a, b)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn join_matches_nested_loop() {
        let (ta, ra) = tree(0.0, 400, 8);
        let (tb, rb) = tree(50.0, 300, 16); // different fanout => different height
        for pred in [JoinPredicate::Intersects, JoinPredicate::WithinDistance(3.0)] {
            let mut cursor = JoinCursor::new(&ta, &tb, pred);
            let got = sorted_pairs(cursor.collect_all());
            let want = brute_force(&ra, &rb, pred);
            assert_eq!(got, want, "{pred:?}");
        }
    }

    #[test]
    fn self_join_includes_identity_pairs() {
        let (t, r) = tree(0.0, 200, 8);
        let mut cursor = JoinCursor::new(&t, &t, JoinPredicate::Intersects);
        let got = sorted_pairs(cursor.collect_all());
        let want = brute_force(&r, &r, JoinPredicate::Intersects);
        assert_eq!(got, want);
        // identity pairs present
        for i in 0..200 {
            assert!(got.binary_search(&(i, i)).is_ok());
        }
    }

    #[test]
    fn batched_fetches_equal_single_drain() {
        let (ta, _) = tree(0.0, 300, 8);
        let (tb, _) = tree(20.0, 300, 8);
        let mut all = JoinCursor::new(&ta, &tb, JoinPredicate::Intersects);
        let want = sorted_pairs(all.collect_all());
        for batch_size in [1usize, 7, 64, 1000] {
            let mut cursor = JoinCursor::new(&ta, &tb, JoinPredicate::Intersects);
            let mut got = Vec::new();
            loop {
                let b = cursor.next_batch(batch_size);
                if b.is_empty() {
                    break;
                }
                assert!(b.len() <= batch_size);
                got.extend(b);
            }
            assert!(cursor.is_exhausted());
            assert_eq!(sorted_pairs(got), want, "batch_size={batch_size}");
        }
    }

    #[test]
    fn subtree_pairs_cover_full_join() {
        let (ta, ra) = tree(0.0, 500, 8);
        let (tb, rb) = tree(10.0, 500, 8);
        let want = brute_force(&ra, &rb, JoinPredicate::Intersects);
        for levels_down in 0..3 {
            let pairs = subtree_pair_tasks(&ta, &tb, JoinPredicate::Intersects, levels_down);
            let mut got = Vec::new();
            // Emulate slaves: one cursor per pair.
            for (l, r) in pairs {
                let mut c =
                    JoinCursor::from_pairs(&ta, &tb, JoinPredicate::Intersects, vec![(l, r)]);
                got.extend(c.collect_all());
            }
            assert_eq!(sorted_pairs(got), want, "levels_down={levels_down}");
        }
    }

    #[test]
    fn empty_tree_joins_produce_nothing() {
        let (ta, _) = tree(0.0, 50, 8);
        let empty: RTree<usize> = RTree::new(RTreeParams::with_fanout(8));
        let mut c = JoinCursor::new(&ta, &empty, JoinPredicate::Intersects);
        assert!(c.collect_all().is_empty());
        let mut c = JoinCursor::new(&empty, &ta, JoinPredicate::Intersects);
        assert!(c.collect_all().is_empty());
        assert!(subtree_pair_tasks(&empty, &ta, JoinPredicate::Intersects, 1).is_empty());
    }

    #[test]
    fn distance_join_widens_result() {
        let (ta, _) = tree(0.0, 200, 8);
        let (tb, _) = tree(30.0, 200, 8);
        let count = |d: f64| {
            JoinCursor::new(&ta, &tb, JoinPredicate::WithinDistance(d)).collect_all().len()
        };
        let c0 = count(0.0);
        let c5 = count(5.0);
        let c50 = count(50.0);
        assert!(c0 <= c5 && c5 <= c50);
        assert!(c50 > c0, "distance expansion must add pairs on this data");
    }

    #[test]
    fn split_pair_preserves_candidates() {
        let (ta, _) = tree(0.0, 400, 8);
        let (tb, _) = tree(10.0, 300, 16); // unequal heights exercised too
        let pred = JoinPredicate::Intersects;
        let root = (ta.root_id(), tb.root_id());
        let mut whole = JoinCursor::from_pairs(&ta, &tb, pred, vec![root]);
        let want = sorted_pairs(whole.collect_all());

        // Recursively split down to leaf/leaf tasks, then run those.
        let mut atomic = Vec::new();
        let mut todo = vec![root];
        while let Some((l, r)) = todo.pop() {
            match split_pair(&ta, &tb, pred, l, r) {
                None => atomic.push((l, r)),
                Some(children) => todo.extend(children),
            }
        }
        assert!(atomic.len() > 1, "splitting must produce several atomic tasks");
        let mut c = JoinCursor::from_pairs(&ta, &tb, pred, atomic);
        assert_eq!(sorted_pairs(c.collect_all()), want);
    }

    #[test]
    fn work_estimate_shrinks_under_splitting() {
        let (ta, _) = tree(0.0, 600, 8);
        let (tb, _) = tree(5.0, 600, 8);
        let root = (ta.root_id(), tb.root_id());
        let whole = estimate_pair_work(&ta, &tb, root.0, root.1);
        assert!(whole >= 600 * 600 / 4, "estimate must reflect subtree sizes");
        let children = split_pair(&ta, &tb, JoinPredicate::Intersects, root.0, root.1).unwrap();
        for (l, r) in children {
            assert!(estimate_pair_work(&ta, &tb, l, r) < whole);
        }
    }

    #[test]
    fn batch_kernel_matches_scalar_kernel() {
        // Fanout 32 makes leaf pairs cross SWEEP_THRESHOLD, so both
        // the plane-sweep and the scan fallback paths run.
        let (ta, _) = tree(0.0, 500, 32);
        let (tb, _) = tree(25.0, 400, 32);
        for pred in [JoinPredicate::Intersects, JoinPredicate::WithinDistance(4.0)] {
            let mut scalar = JoinCursor::new(&ta, &tb, pred).with_kernel(KernelMode::Scalar);
            let want = sorted_pairs(scalar.collect_all());
            assert_eq!(scalar.kernel_stats(), KernelStats::default());
            let mut batch = JoinCursor::new(&ta, &tb, pred).with_kernel(KernelMode::Batch);
            let got = sorted_pairs(batch.collect_all());
            assert_eq!(got, want, "{pred:?}");
            let stats = batch.kernel_stats();
            assert!(stats.sweeps > 0, "{pred:?}: expected plane-sweep invocations");
            assert!(stats.tests > 0);
        }
    }

    #[test]
    fn small_nodes_use_scan_fallback() {
        let (ta, ra) = tree(0.0, 60, 4); // 4*4 pairs stay below SWEEP_THRESHOLD
        let (tb, rb) = tree(10.0, 60, 4);
        let mut c = JoinCursor::new(&ta, &tb, JoinPredicate::Intersects);
        let got = sorted_pairs(c.collect_all());
        assert_eq!(got, brute_force(&ra, &rb, JoinPredicate::Intersects));
        let stats = c.kernel_stats();
        assert!(stats.scans > 0 && stats.sweeps == 0);
    }

    #[test]
    fn sweep_threshold_zero_forces_sweep_and_max_forces_scan() {
        let (ta, ra) = tree(0.0, 200, 8); // 8*8 pairs sit below the default cutoff
        let (tb, rb) = tree(10.0, 200, 8);
        let want = brute_force(&ra, &rb, JoinPredicate::Intersects);

        let mut sweep_all =
            JoinCursor::new(&ta, &tb, JoinPredicate::Intersects).with_sweep_threshold(0);
        assert_eq!(sorted_pairs(sweep_all.collect_all()), want);
        let stats = sweep_all.kernel_stats();
        assert!(stats.sweeps > 0 && stats.scans == 0, "threshold 0 must sweep every pair");

        // Fanout 32 crosses the default cutoff, yet MAX must still scan.
        let (ta, ra) = tree(0.0, 500, 32);
        let (tb, rb) = tree(25.0, 400, 32);
        let want = brute_force(&ra, &rb, JoinPredicate::Intersects);
        let mut scan_all =
            JoinCursor::new(&ta, &tb, JoinPredicate::Intersects).with_sweep_threshold(usize::MAX);
        assert_eq!(sorted_pairs(scan_all.collect_all()), want);
        let stats = scan_all.kernel_stats();
        assert!(stats.scans > 0 && stats.sweeps == 0, "threshold MAX must never sweep");
    }

    #[test]
    fn simd_kernel_matches_scalar_kernel() {
        // Fanout 32 exercises the vectorized sweep; fanout 4 below
        // keeps pairs under SWEEP_THRESHOLD for the quantized scans.
        for (fa, fb) in [(32, 32), (4, 4)] {
            let (ta, _) = tree(0.0, 500, fa);
            let (tb, _) = tree(25.0, 400, fb);
            for pred in [JoinPredicate::Intersects, JoinPredicate::WithinDistance(4.0)] {
                let mut scalar = JoinCursor::new(&ta, &tb, pred).with_kernel(KernelMode::Scalar);
                let want = sorted_pairs(scalar.collect_all());
                let mut simd = JoinCursor::new(&ta, &tb, pred).with_kernel(KernelMode::Simd);
                let got = sorted_pairs(simd.collect_all());
                assert_eq!(got, want, "fanout=({fa},{fb}) {pred:?}");
                let stats = simd.kernel_stats();
                assert!(stats.tests > 0);
                if fa == 4 {
                    // Quantized scans run at every level, so the funnel
                    // passes at least one hit per emitted result pair
                    // (conservative: no true hit is ever rejected).
                    assert!(
                        stats.quantized_hits - stats.exact_rejects >= want.len() as u64,
                        "quantized funnel must pass every true hit"
                    );
                    assert!(stats.exact_rejects > 0, "u16 rounding must cause some rejects");
                }
            }
        }
    }

    #[test]
    fn simd_packet_path_matches_scalar_on_unequal_heights() {
        // A single-leaf right tree against a tall left tree: the whole
        // join is one leaf of probes descending an internal subtree,
        // which is exactly the packet case.
        let (ta, ra) = tree(0.0, 600, 4);
        let (tb, rb) = tree(10.0, 24, 32);
        for pred in [JoinPredicate::Intersects, JoinPredicate::WithinDistance(3.0)] {
            let want = brute_force(&ra, &rb, pred);
            let mut simd = JoinCursor::new(&ta, &tb, pred).with_kernel(KernelMode::Simd);
            let got = sorted_pairs(simd.collect_all());
            assert_eq!(got, want, "{pred:?}");
            assert!(
                simd.kernel_stats().packet_descents > 0,
                "{pred:?}: unequal-height leaf pairs must take the packet path"
            );
        }
    }

    #[test]
    fn kernel_mode_parses_all_values() {
        assert_eq!(KernelMode::parse("scalar"), Some(KernelMode::Scalar));
        assert_eq!(KernelMode::parse("Batch"), Some(KernelMode::Batch));
        assert_eq!(KernelMode::parse("SIMD"), Some(KernelMode::Simd));
        assert_eq!(KernelMode::parse("avx2"), None);
    }

    #[test]
    fn kernel_stats_merge_covers_all_fields() {
        let mut a = KernelStats {
            sweeps: 1,
            scans: 2,
            tests: 3,
            quantized_hits: 4,
            exact_rejects: 5,
            packet_descents: 6,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            KernelStats {
                sweeps: 2,
                scans: 4,
                tests: 6,
                quantized_hits: 8,
                exact_rejects: 10,
                packet_descents: 12,
            }
        );
    }

    #[test]
    fn counters_record_mbr_tests() {
        let c = Arc::new(Counters::new());
        let (ta, _) = tree(0.0, 100, 8);
        let (tb, _) = tree(5.0, 100, 8);
        let mut cursor =
            JoinCursor::new(&ta, &tb, JoinPredicate::Intersects).with_counters(Arc::clone(&c));
        cursor.collect_all();
        assert!(Counters::get(&c.mbr_tests) > 0);
    }
}
