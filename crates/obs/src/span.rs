//! RAII span timers recording into registry histograms.

use crate::metrics::{global, Histogram, MetricsRegistry};
use std::sync::Arc;
use std::time::Instant;

/// Live span; records elapsed wall time into its histogram on drop.
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Elapsed time so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}

/// Start a span recording into the [`global`] registry:
///
/// ```
/// let _guard = sdo_obs::span("rtree.join.fetch");
/// // ... timed work ...
/// ```
pub fn span(name: &str) -> Span {
    span_in(global(), name)
}

/// Start a span recording into a specific registry.
pub fn span_in(registry: &MetricsRegistry, name: &str) -> Span {
    Span { histogram: registry.histogram(name), start: Instant::now() }
}

/// Time a closure into a pre-resolved histogram handle — the zero-
/// lookup variant for hot loops.
pub fn timed_into<T>(histogram: &Histogram, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    histogram.record_duration(start.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = MetricsRegistry::new();
        {
            let _s = span_in(&registry, "unit.test.span");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let h = registry.histogram("unit.test.span");
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1_000_000, "recorded {} ns", h.max());
        let v = timed_into(&h, || 7);
        assert_eq!(v, 7);
        assert_eq!(h.count(), 2);
    }
}
