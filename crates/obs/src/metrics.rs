//! Lock-cheap metrics: counters, gauges, and fixed-bucket histograms.
//!
//! All mutation is relaxed-atomic; the registry's `HashMap` is behind
//! an `RwLock` but hot paths hold an `Arc` handle to their instrument
//! and never touch the map again.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (queue depths, cache sizes, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared high-water-mark gauge for resident-row accounting.
///
/// Operators in a query pipeline clone one gauge and charge the rows
/// they hold resident; the gauge tracks both the instantaneous total
/// and the peak across the whole statement, which the executor reports
/// as the `peak_resident_rows` metric in `EXPLAIN ANALYZE`. Cloning is
/// cheap (`Arc`); mutation is relaxed-atomic, with the peak maintained
/// by `fetch_max` so concurrent operators (e.g. parallel slaves) stay
/// correct without locks.
#[derive(Debug, Clone, Default)]
pub struct MemoryGauge {
    inner: Arc<MemoryGaugeInner>,
}

#[derive(Debug, Default)]
struct MemoryGaugeInner {
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemoryGauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` units, returning the new instantaneous total.
    pub fn add(&self, n: u64) -> u64 {
        let now = self.inner.current.fetch_add(n, Ordering::Relaxed) + n;
        self.inner.peak.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Release `n` units (saturating at zero).
    pub fn sub(&self, n: u64) {
        // fetch_update to saturate rather than wrap on over-release.
        let _ = self
            .inner
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| Some(cur.saturating_sub(n)));
    }

    /// Instantaneous total.
    pub fn current(&self) -> u64 {
        self.inner.current.load(Ordering::Relaxed)
    }

    /// High-water mark since creation.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Open an RAII charge account against this gauge.
    ///
    /// Parallel workers each hold their own [`GaugeCharge`]; whatever a
    /// worker has charged when it unwinds — an error mid-morsel, a
    /// receiver that hung up, a panic — is released by `Drop`, so the
    /// gauge always returns to zero no matter which side of a channel
    /// failed first.
    pub fn charge(&self) -> GaugeCharge {
        GaugeCharge { gauge: self.clone(), held: 0 }
    }
}

/// RAII balance of units charged to a [`MemoryGauge`].
///
/// The owning side (typically one worker, or one buffered result in a
/// merge queue) adjusts its balance with [`add`](GaugeCharge::add) /
/// [`set`](GaugeCharge::set); dropping the charge releases whatever is
/// still held. Transferring the struct transfers the liability — an
/// exchange worker charges its morsel output, sends the charge along
/// with the rows, and the consumer's drop releases it after the rows
/// flow downstream.
#[derive(Debug)]
pub struct GaugeCharge {
    gauge: MemoryGauge,
    held: u64,
}

impl GaugeCharge {
    /// Charge `n` more units, returning the gauge's new total.
    pub fn add(&mut self, n: u64) -> u64 {
        self.held += n;
        self.gauge.add(n)
    }

    /// Adjust the balance to exactly `n` units, returning the gauge's
    /// new total.
    pub fn set(&mut self, n: u64) -> u64 {
        if n >= self.held {
            self.add(n - self.held)
        } else {
            self.gauge.sub(self.held - n);
            self.held = n;
            self.gauge.current()
        }
    }

    /// Units currently held by this account.
    pub fn held(&self) -> u64 {
        self.held
    }
}

impl Drop for GaugeCharge {
    fn drop(&mut self) {
        self.gauge.sub(self.held);
    }
}

/// Fixed-bucket histogram of `u64` samples (typically nanoseconds).
///
/// Buckets are cumulative-friendly: `counts[i]` holds samples `<=
/// bounds[i]`, with one implicit overflow bucket at the end. Recording
/// is a binary search plus one relaxed `fetch_add`; histograms with
/// identical bounds merge across threads losslessly.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Histogram with explicit ascending upper-bound edges.
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Default latency bounds: powers of two from 256 ns to ~17 s.
    pub fn latency() -> Self {
        Self::with_bounds((8..35).map(|i| 1u64 << i).collect())
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a wall-time sample in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket containing it. Returns 0 for an empty
    /// histogram; the overflow bucket reports `max`.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            let in_bucket = c.load(Ordering::Relaxed);
            if cumulative + in_bucket >= rank {
                if idx >= self.bounds.len() {
                    return self.max();
                }
                let lo = if idx == 0 { 0 } else { self.bounds[idx - 1] };
                let hi = self.bounds[idx];
                let frac = if in_bucket == 0 {
                    0.0
                } else {
                    (rank - cumulative) as f64 / in_bucket as f64
                };
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            cumulative += in_bucket;
        }
        self.max()
    }

    /// Merge `other` into `self`.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "cannot merge histograms with different bounds");
        for (mine, theirs) in self.counts.iter().zip(&other.counts) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }
}

/// Registry of named instruments. Lookup is get-or-create; handles are
/// `Arc`s, so hot code resolves its instrument once and keeps it.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T, F: FnOnce() -> T>(
    map: &RwLock<HashMap<String, Arc<T>>>,
    name: &str,
    make: F,
) -> Arc<T> {
    if let Some(v) = map.read().expect("metrics registry poisoned").get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().expect("metrics registry poisoned");
    Arc::clone(w.entry(name.to_string()).or_insert_with(|| Arc::new(make())))
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Named counter (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, Counter::new)
    }

    /// Named gauge (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, Gauge::new)
    }

    /// Named latency histogram (created on first use with the default
    /// power-of-two nanosecond bounds).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, Histogram::latency)
    }

    /// Consistent point-in-time copy of every instrument, sorted by
    /// name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, HistogramSummary)> = self
            .histograms
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSummary {
                        count: v.count(),
                        sum: v.sum(),
                        max: v.max(),
                        p50: v.percentile(0.50),
                        p95: v.percentile(0.95),
                        p99: v.percentile(0.99),
                    },
                )
            })
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        RegistrySnapshot { counters, gauges, histograms }
    }
}

/// Point-in-time percentile summary of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// Point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// The process-wide registry used by [`crate::span`] and the engine's
/// built-in hooks.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let r = MetricsRegistry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("c").get(), 5);
        let g = r.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(r.gauge("g").get(), 7);
    }

    #[test]
    fn memory_gauge_tracks_peak_across_clones() {
        let g = MemoryGauge::new();
        let g2 = g.clone();
        g.add(100);
        g2.add(50);
        assert_eq!(g.current(), 150);
        g.sub(120);
        assert_eq!(g2.current(), 30);
        assert_eq!(g2.peak(), 150);
        // Over-release saturates instead of wrapping.
        g.sub(1000);
        assert_eq!(g.current(), 0);
        assert_eq!(g.peak(), 150);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::with_bounds(vec![10, 100, 1000]);
        // On-boundary samples land in the bucket they bound.
        h.record(10);
        h.record(11);
        h.record(100);
        h.record(5000); // overflow bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.sum(), 10 + 11 + 100 + 5000);
        let raw: Vec<u64> = h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(raw, vec![1, 2, 0, 1]);
    }

    #[test]
    fn histogram_percentiles() {
        let h = Histogram::with_bounds(vec![100, 200, 300, 400]);
        for v in (1..=100).map(|i| i * 4) {
            h.record(v); // uniform over (0, 400]
        }
        assert_eq!(h.percentile(0.0), 4); // rank clamps to the first sample's bucket
        let p50 = h.percentile(0.50);
        assert!((150..=250).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(0.99);
        assert!((350..=400).contains(&p99), "p99 = {p99}");
        assert_eq!(h.percentile(1.0), 400);
        // Empty histogram is all zeros.
        assert_eq!(Histogram::latency().percentile(0.99), 0);
    }

    #[test]
    fn histogram_concurrent_merge() {
        let shared = Arc::new(Histogram::with_bounds((0..16).map(|i| 1 << i).collect()));
        let merged = Histogram::with_bounds((0..16).map(|i| 1 << i).collect());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let local = Histogram::with_bounds((0..16).map(|i| 1 << i).collect());
                    for i in 0..1000u64 {
                        shared.record(t * 1000 + i);
                        local.record(t * 1000 + i);
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            merged.merge(&h.join().unwrap());
        }
        assert_eq!(merged.count(), 8000);
        assert_eq!(merged.count(), shared.count());
        assert_eq!(merged.sum(), shared.sum());
        assert_eq!(merged.max(), shared.max());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged.percentile(q), shared.percentile(q));
        }
    }

    #[test]
    fn registry_snapshot_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b").inc();
        r.counter("a").add(2);
        r.histogram("h").record(512);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a".into(), 2), ("b".into(), 1)]);
        assert_eq!(snap.histograms[0].1.count, 1);
    }
}
