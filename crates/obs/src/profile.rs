//! Structured per-operator query profiles.
//!
//! A profile is a tree of [`ProfileNode`]s, one per operator (scan,
//! join, filter, ...). Executors create a [`ProfileSession`] around a
//! statement; operators discover the active node through a thread
//! local ([`current`]) or have one attached explicitly (parallel
//! table-function slaves get per-slave child nodes and [`enter`] the
//! tree from their own thread).
//!
//! The global [`profiling`] flag is a single relaxed atomic: when no
//! session is active anywhere in the process, instrumented code paths
//! skip all bookkeeping.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Debug, Default)]
struct NodeInner {
    name: String,
    rows: AtomicU64,
    batches: AtomicU64,
    wall_ns: AtomicU64,
    metrics: Mutex<BTreeMap<String, u64>>,
    attrs: Mutex<BTreeMap<String, String>>,
    children: Mutex<Vec<Arc<NodeInner>>>,
}

/// Handle to one operator's slot in a profile tree. Cloning shares the
/// slot; all mutation is thread-safe.
#[derive(Debug, Clone)]
pub struct ProfileNode(Arc<NodeInner>);

impl ProfileNode {
    fn new(name: impl Into<String>) -> Self {
        ProfileNode(Arc::new(NodeInner { name: name.into(), ..NodeInner::default() }))
    }

    /// Append a child operator node and return its handle.
    pub fn child(&self, name: impl Into<String>) -> ProfileNode {
        let node = ProfileNode::new(name);
        self.0.children.lock().expect("profile poisoned").push(Arc::clone(&node.0));
        node
    }

    /// Add produced rows.
    pub fn add_rows(&self, n: u64) {
        self.0.rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Add fetched batches.
    pub fn add_batches(&self, n: u64) {
        self.0.batches.fetch_add(n, Ordering::Relaxed);
    }

    /// Add wall time spent in this operator.
    pub fn add_wall(&self, d: Duration) {
        self.0.wall_ns.fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Accumulate a named work metric (counter delta, cache hits, ...).
    pub fn add_metric(&self, name: &str, value: u64) {
        if value == 0 {
            return;
        }
        *self.0.metrics.lock().expect("profile poisoned").entry(name.to_string()).or_insert(0) +=
            value;
    }

    /// Set a named metric to an absolute value, recording it even when
    /// zero. `add_metric` drops zeros because an absent delta carries
    /// no information; for state flushed once at close — a parallel
    /// slave's `tasks_executed`, say — zero IS the information (it
    /// means the slave starved), so it must render.
    pub fn set_metric(&self, name: &str, value: u64) {
        self.0.metrics.lock().expect("profile poisoned").insert(name.to_string(), value);
    }

    /// Record every non-zero `(name, delta)` pair as a metric.
    pub fn add_metric_deltas(&self, deltas: &[(&str, u64)]) {
        for (name, delta) in deltas {
            self.add_metric(name, *delta);
        }
    }

    /// Set a descriptive attribute (strategy name, DOP, ...).
    pub fn set_attr(&self, name: &str, value: impl Into<String>) {
        self.0.attrs.lock().expect("profile poisoned").insert(name.to_string(), value.into());
    }

    /// Immutable deep copy of this subtree.
    pub fn snapshot(&self) -> OpProfile {
        let inner = &self.0;
        OpProfile {
            name: inner.name.clone(),
            rows: inner.rows.load(Ordering::Relaxed),
            batches: inner.batches.load(Ordering::Relaxed),
            wall: Duration::from_nanos(inner.wall_ns.load(Ordering::Relaxed)),
            metrics: inner
                .metrics
                .lock()
                .expect("profile poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            attrs: inner
                .attrs
                .lock()
                .expect("profile poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            children: inner
                .children
                .lock()
                .expect("profile poisoned")
                .iter()
                .map(|c| ProfileNode(Arc::clone(c)).snapshot())
                .collect(),
        }
    }
}

/// Immutable snapshot of one operator's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Operator display name.
    pub name: String,
    /// Rows produced by this operator.
    pub rows: u64,
    /// Batches fetched from this operator.
    pub batches: u64,
    /// Wall time attributed to this operator.
    pub wall: Duration,
    /// Named work metrics (sorted by name).
    pub metrics: Vec<(String, u64)>,
    /// Descriptive attributes (sorted by name).
    pub attrs: Vec<(String, String)>,
    /// Child operators in creation order.
    pub children: Vec<OpProfile>,
}

impl OpProfile {
    /// Depth-first iteration over this subtree (self first).
    pub fn walk(&self) -> Vec<(usize, &OpProfile)> {
        fn push<'a>(node: &'a OpProfile, depth: usize, out: &mut Vec<(usize, &'a OpProfile)>) {
            out.push((depth, node));
            for c in &node.children {
                push(c, depth + 1, out);
            }
        }
        let mut out = Vec::new();
        push(self, 0, &mut out);
        out
    }

    /// Find the first node (depth-first) whose name contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&OpProfile> {
        self.walk().into_iter().map(|(_, n)| n).find(|n| n.name.contains(needle))
    }

    /// Value of a named metric on this node, if recorded.
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Sum of a named metric over this whole subtree — e.g. total
    /// `tasks_stolen` across every parallel slave under an operator.
    pub fn metric_sum(&self, name: &str) -> u64 {
        self.walk().into_iter().filter_map(|(_, n)| n.metric(name)).sum()
    }
}

/// Completed profile for one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// Root operator (the statement itself).
    pub root: OpProfile,
}

impl QueryProfile {
    /// Multi-line indented text rendering (one line per operator).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (depth, node) in self.root.walk() {
            let mut line = format!(
                "{:indent$}{} rows={} batches={} wall={:.3}ms",
                "",
                node.name,
                node.rows,
                node.batches,
                node.wall.as_secs_f64() * 1e3,
                indent = depth * 2
            );
            for (k, v) in &node.attrs {
                line.push_str(&format!(" {k}={v}"));
            }
            for (k, v) in &node.metrics {
                line.push_str(&format!(" {k}={v}"));
            }
            line.push('\n');
            out.push_str(&line);
        }
        out
    }
}

/// Count of live [`ProfileSession`]s across all threads.
static ACTIVE_SESSIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Vec<ProfileNode>> = const { RefCell::new(Vec::new()) };
}

/// `true` when any profile session is active in the process. One
/// relaxed load — this is the fast-path gate for all instrumentation.
#[inline]
pub fn profiling() -> bool {
    ACTIVE_SESSIONS.load(Ordering::Relaxed) > 0
}

/// The innermost profile node entered on this thread, if profiling.
#[inline]
pub fn current() -> Option<ProfileNode> {
    if !profiling() {
        return None;
    }
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

/// Make `node` the thread's current profile node until the guard
/// drops. Used by operators scoping their children and by parallel
/// slaves joining a profile from a new thread.
pub fn enter(node: ProfileNode) -> EnterGuard {
    CURRENT.with(|stack| stack.borrow_mut().push(node));
    EnterGuard { _private: () }
}

/// RAII guard returned by [`enter`]; pops the node on drop.
pub struct EnterGuard {
    _private: (),
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Active profile collection for one statement. Creating a session
/// turns the global [`profiling`] flag on and pushes the root node on
/// this thread; [`ProfileSession::finish`] yields the immutable
/// [`QueryProfile`].
pub struct ProfileSession {
    root: ProfileNode,
    guard: Option<EnterGuard>,
}

impl ProfileSession {
    /// Begin profiling with a root operator named `name`.
    pub fn begin(name: impl Into<String>) -> Self {
        ACTIVE_SESSIONS.fetch_add(1, Ordering::Relaxed);
        let root = ProfileNode::new(name);
        let guard = enter(root.clone());
        ProfileSession { root, guard: Some(guard) }
    }

    /// The root node, for attaching operator children.
    pub fn root(&self) -> &ProfileNode {
        &self.root
    }

    /// End the session and return the collected profile.
    pub fn finish(mut self) -> QueryProfile {
        self.guard.take();
        QueryProfile { root: self.root.snapshot() }
    }
}

impl Drop for ProfileSession {
    fn drop(&mut self) {
        self.guard.take();
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_gates_profiling() {
        assert!(!profiling() || ACTIVE_SESSIONS.load(Ordering::Relaxed) > 0);
        let session = ProfileSession::begin("q");
        assert!(profiling());
        assert!(current().is_some());
        let profile = session.finish();
        assert_eq!(profile.root.name, "q");
        assert!(current().is_none());
    }

    #[test]
    fn tree_accumulates() {
        let session = ProfileSession::begin("SELECT");
        let scan = current().unwrap().child("SCAN t");
        scan.add_rows(10);
        scan.add_batches(2);
        scan.add_wall(Duration::from_millis(1));
        scan.add_metric("row_fetches", 10);
        scan.add_metric("row_fetches", 5);
        scan.set_attr("dop", "2");
        let profile = session.finish();
        let scan = profile.root.find("SCAN").unwrap();
        assert_eq!((scan.rows, scan.batches), (10, 2));
        assert_eq!(scan.metric("row_fetches"), Some(15));
        assert_eq!(scan.attrs, vec![("dop".to_string(), "2".to_string())]);
        let text = profile.root.walk();
        assert_eq!(text.len(), 2);
        assert!(QueryProfile { root: profile.root.clone() }
            .render_text()
            .contains("SCAN t rows=10"));
    }

    #[test]
    fn cross_thread_children() {
        let session = ProfileSession::begin("parallel");
        let root = session.root().clone();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let slave = root.child(format!("slave {i}"));
                std::thread::spawn(move || {
                    let _g = enter(slave.clone());
                    current().unwrap().add_rows(100);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let profile = session.finish();
        assert_eq!(profile.root.children.len(), 4);
        let total: u64 = profile.root.children.iter().map(|c| c.rows).sum();
        assert_eq!(total, 400);
    }
}
