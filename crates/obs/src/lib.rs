#![warn(missing_docs)]
//! # sdo-obs — observability for the spatial engine
//!
//! Three complementary instruments, all cheap enough to leave compiled
//! into release builds:
//!
//! * **Metrics registry** ([`metrics`]) — named monotone [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket latency [`Histogram`]s with
//!   percentile estimation and cross-thread merge. One global registry
//!   ([`global`]) plus constructible private ones.
//! * **Span timers** ([`span`]) — RAII guards that record elapsed wall
//!   time into a registry histogram:
//!   `let _s = obs::span("rtree.join.fetch");`
//! * **Query profiles** ([`profile`]) — a structured tree recording,
//!   per operator, rows produced, batches fetched, wall time, and
//!   arbitrary named work metrics (e.g. `Counters` deltas from
//!   `sdo-storage`). Profiles propagate across threads explicitly
//!   (parallel table-function slaves attach per-slave child nodes),
//!   and `sdo-dbms` renders them for `EXPLAIN ANALYZE`.
//!
//! When no profile session is active ([`profiling`] is `false`) the
//! per-operator hooks reduce to one relaxed atomic load, so plain
//! query execution pays essentially nothing.

pub mod export;
pub mod metrics;
pub mod profile;
pub mod span;

pub use metrics::{
    global, Counter, Gauge, GaugeCharge, Histogram, MemoryGauge, MetricsRegistry, RegistrySnapshot,
};
pub use profile::{
    current, enter, profiling, EnterGuard, OpProfile, ProfileNode, ProfileSession, QueryProfile,
};
pub use span::{span, span_in, Span};
