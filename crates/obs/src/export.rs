//! Text / JSON exporters for profiles and registry snapshots, used by
//! the bench binaries to dump machine-independent work profiles next
//! to wall-clock numbers.

use crate::metrics::RegistrySnapshot;
use crate::profile::{OpProfile, QueryProfile};

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn op_to_json(node: &OpProfile, out: &mut String) {
    out.push_str("{\"name\":\"");
    escape_into(&node.name, out);
    out.push_str(&format!(
        "\",\"rows\":{},\"batches\":{},\"wall_ns\":{}",
        node.rows,
        node.batches,
        node.wall.as_nanos()
    ));
    if !node.attrs.is_empty() {
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in node.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(k, out);
            out.push_str("\":\"");
            escape_into(v, out);
            out.push('"');
        }
        out.push('}');
    }
    if !node.metrics.is_empty() {
        out.push_str(",\"metrics\":{");
        for (i, (k, v)) in node.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(k, out);
            out.push_str(&format!("\":{v}"));
        }
        out.push('}');
    }
    if !node.children.is_empty() {
        out.push_str(",\"children\":[");
        for (i, c) in node.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            op_to_json(c, out);
        }
        out.push(']');
    }
    out.push('}');
}

/// Render a profile as a single JSON object.
pub fn profile_to_json(profile: &QueryProfile) -> String {
    let mut out = String::new();
    op_to_json(&profile.root, &mut out);
    out
}

/// Render a registry snapshot as a JSON object with `counters`,
/// `gauges`, and `histograms` sections.
pub fn registry_to_json(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (k, v)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(k, &mut out);
        out.push_str(&format!("\":{v}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(k, &mut out);
        out.push_str(&format!("\":{v}"));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(k, &mut out);
        out.push_str(&format!(
            "\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.count, h.sum, h.max, h.p50, h.p95, h.p99
        ));
    }
    out.push_str("}}");
    out
}

/// Sanitize a metric name for Prometheus exposition: `[a-zA-Z0-9_:]`
/// survive, everything else becomes `_` (so `sql.exec.wall_ns` →
/// `sql_exec_wall_ns`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Render a registry snapshot in the Prometheus text exposition
/// format (version 0.0.4), suitable for a `/metrics` endpoint.
///
/// Counters export as `counter`, gauges as `gauge`, and each
/// histogram as a `summary`: `{name}{quantile="0.5|0.95|0.99"}`,
/// plus `{name}_sum`, `{name}_count`, and a `{name}_max` gauge.
pub fn registry_to_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (k, v) in &snapshot.counters {
        let name = prom_name(k);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (k, v) in &snapshot.gauges {
        let name = prom_name(k);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (k, h) in &snapshot.histograms {
        let name = prom_name(k);
        out.push_str(&format!("# TYPE {name} summary\n"));
        out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", h.p50));
        out.push_str(&format!("{name}{{quantile=\"0.95\"}} {}\n", h.p95));
        out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", h.p99));
        out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        out.push_str(&format!("# TYPE {name}_max gauge\n{name}_max {}\n", h.max));
    }
    out
}

/// Render a registry snapshot as aligned human-readable text.
pub fn registry_to_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (k, v) in &snapshot.counters {
        out.push_str(&format!("counter   {k:40} {v}\n"));
    }
    for (k, v) in &snapshot.gauges {
        out.push_str(&format!("gauge     {k:40} {v}\n"));
    }
    for (k, h) in &snapshot.histograms {
        out.push_str(&format!(
            "histogram {k:40} count={} mean={:.0}ns p50={} p95={} p99={} max={}\n",
            h.count,
            if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 },
            h.p50,
            h.p95,
            h.p99,
            h.max
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::profile::ProfileSession;

    #[test]
    fn json_exports_are_well_formed() {
        let session = ProfileSession::begin("SELECT \"x\"");
        let scan = session.root().child("SCAN t");
        scan.add_rows(3);
        scan.add_metric("row_fetches", 3);
        scan.set_attr("strategy", "full");
        let profile = session.finish();
        let json = profile_to_json(&profile);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"SELECT \\\"x\\\"\""));
        assert!(json.contains("\"rows\":3"));
        assert!(json.contains("\"row_fetches\":3"));
        assert!(json.contains("\"strategy\":\"full\""));

        let registry = MetricsRegistry::new();
        registry.counter("events").add(9);
        registry.histogram("lat").record(100);
        let snap = registry.snapshot();
        let json = registry_to_json(&snap);
        assert!(json.contains("\"events\":9"));
        assert!(json.contains("\"count\":1"));
        assert!(registry_to_text(&snap).contains("counter"));
    }

    #[test]
    fn prometheus_export_sanitizes_and_summarizes() {
        let registry = MetricsRegistry::new();
        registry.counter("server.stmt.executed").add(7);
        registry.gauge("server.sessions.active").set(3);
        registry.histogram("server.stmt.wall_ns").record(1000);
        let text = registry_to_prometheus(&registry.snapshot());
        assert!(text.contains("# TYPE server_stmt_executed counter\nserver_stmt_executed 7\n"));
        assert!(text.contains("# TYPE server_sessions_active gauge\nserver_sessions_active 3\n"));
        assert!(text.contains("# TYPE server_stmt_wall_ns summary\n"));
        assert!(text.contains("server_stmt_wall_ns{quantile=\"0.99\"}"));
        assert!(text.contains("server_stmt_wall_ns_count 1\n"));
        assert!(text.contains("server_stmt_wall_ns_max 1000\n"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }
}
