//! Multi-session isolation: concurrent connections must never
//! observe each other's `ALTER SESSION` options, explicit
//! transactions, `EXPLAIN ANALYZE` profiles, or prepared statements —
//! all of which used to live in Database-global slots.

use sdo_dbms::{Database, Durability};
use sdo_storage::Value;
use std::sync::{Arc, Barrier};

fn db_with_table() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (id NUMBER, name VARCHAR)").unwrap();
    for i in 0..5 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')")).unwrap();
    }
    db
}

#[test]
fn session_options_do_not_leak_between_sessions() {
    let db = db_with_table();
    let s1 = db.session();
    let s2 = db.session();
    assert_ne!(s1.id(), s2.id());

    s1.execute("ALTER SESSION SET materialize = on").unwrap();
    s1.execute("ALTER SESSION SET durability = buffered").unwrap();
    assert!(s1.options().materialize);
    assert_eq!(s1.options().durability, Durability::Buffered);

    // s2 and the embedded default session keep their defaults.
    assert!(!s2.options().materialize);
    assert_eq!(s2.options().durability, Durability::Fsync);
    assert!(!db.options().materialize);

    // Engine-level defaults seed *new* sessions without touching
    // existing ones.
    db.set_default_option("materialize", "on").unwrap();
    assert!(!s2.options().materialize, "existing session must not change");
    assert!(db.session().options().materialize, "new session inherits the default");
}

#[test]
fn max_resident_rows_accepts_full_u64_range() {
    let db = Arc::new(Database::new());
    let s = db.session();
    // Above i64::MAX: the old i64 parse rejected this legal value.
    let big = (i64::MAX as u64) + 7;
    s.set_option("max_resident_rows", &big.to_string()).unwrap();
    assert_eq!(s.options().max_resident_rows, big);
    // SQL numeric literals are i64-bounded in the lexer; the string
    // form carries the full u64 range through ALTER SESSION.
    s.execute(&format!("ALTER SESSION SET max_resident_rows = '{}'", u64::MAX)).unwrap();
    assert_eq!(s.options().max_resident_rows, u64::MAX);
    s.execute("ALTER SESSION SET max_resident_rows = 123456").unwrap();
    assert_eq!(s.options().max_resident_rows, 123_456);
    // Zero and garbage still fail.
    assert!(s.set_option("max_resident_rows", "0").is_err());
    assert!(s.set_option("max_resident_rows", "-1").is_err());
    assert!(s.set_option("max_resident_rows", "lots").is_err());
}

#[test]
fn sessions_hold_independent_explicit_transactions() {
    let db = db_with_table();
    let s1 = db.session();
    let s2 = db.session();

    // Two BEGINs at once — the old engine had one global slot and
    // would refuse the second.
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    assert!(s1.in_txn() && s2.in_txn());

    s1.execute("INSERT INTO t VALUES (100, 'from s1')").unwrap();
    s2.execute("INSERT INTO t VALUES (200, 'from s2')").unwrap();

    // Neither sees the other's uncommitted row; each sees its own.
    let count =
        |s: &sdo_dbms::Session| s.execute("SELECT COUNT(*) FROM t").unwrap().count().unwrap();
    assert_eq!(count(&s1), 6);
    assert_eq!(count(&s2), 6);

    s1.execute("COMMIT").unwrap();
    // s2's snapshot is still its transaction-begin view.
    assert_eq!(count(&s2), 6);
    s2.execute("COMMIT").unwrap();
    assert_eq!(count(&s2), 7);
    assert_eq!(db.execute("SELECT COUNT(*) FROM t").unwrap().count(), Some(7));
}

#[test]
fn rollback_and_drop_are_per_session() {
    let db = db_with_table();
    let s1 = db.session();
    let s2 = db.session();
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("INSERT INTO t VALUES (100, 'doomed')").unwrap();
    s2.execute("INSERT INTO t VALUES (200, 'kept')").unwrap();
    s1.execute("ROLLBACK").unwrap();
    s2.execute("COMMIT").unwrap();
    assert_eq!(db.execute("SELECT COUNT(*) FROM t").unwrap().count(), Some(6));
    assert_eq!(db.execute("SELECT COUNT(*) FROM t WHERE id = 200").unwrap().count(), Some(1));

    // Dropping a session mid-transaction rolls it back.
    let s3 = db.session();
    s3.execute("BEGIN").unwrap();
    s3.execute("INSERT INTO t VALUES (300, 'dropped')").unwrap();
    drop(s3);
    assert_eq!(db.execute("SELECT COUNT(*) FROM t").unwrap().count(), Some(6));
}

#[test]
fn concurrent_explain_analyze_keeps_profiles_apart() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t1 (id NUMBER)").unwrap();
    db.execute("CREATE TABLE t2 (id NUMBER)").unwrap();
    for i in 0..20 {
        db.execute(&format!("INSERT INTO t1 VALUES ({i})")).unwrap();
        db.execute(&format!("INSERT INTO t2 VALUES ({i})")).unwrap();
    }
    // Two sessions hammer EXPLAIN ANALYZE on different tables at the
    // same time; each must always read back its *own* statement's
    // profile. The old engine kept one global last_profile slot, so
    // this raced.
    let barrier = Arc::new(Barrier::new(2));
    let threads: Vec<_> = [("T1", 1i64), ("T2", 2i64)]
        .into_iter()
        .map(|(table, _)| {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let s = db.session();
                barrier.wait();
                for _ in 0..50 {
                    s.execute(&format!("EXPLAIN ANALYZE SELECT COUNT(*) FROM {table}")).unwrap();
                    let profile = s.last_profile().expect("profile recorded");
                    let scan = format!("TABLE SCAN {table}");
                    assert!(
                        profile.root.find(&scan).is_some(),
                        "session saw a foreign profile: wanted {scan}, got\n{}",
                        profile.render_text()
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // The embedded default session never ran a statement here... but
    // the loading INSERTs above did, so it reports those, not the
    // sessions' EXPLAIN ANALYZE.
    let default_profile = db.last_profile().expect("default session profile");
    assert!(default_profile.root.find("INSERT").is_some());
}

#[test]
fn prepared_statements_are_session_private() {
    let db = db_with_table();
    let s1 = db.session();
    let s2 = db.session();
    let n = s1.prepare("pick", "SELECT name FROM t WHERE id = ?").unwrap();
    assert_eq!(n, 1);
    let r = s1.execute_prepared("pick", &[Value::Integer(2)]).unwrap();
    assert_eq!(r.rows, vec![vec![Value::text("row2")]]);

    // s2 has no such statement — and SQL-level EXECUTE agrees.
    assert!(s2.execute_prepared("pick", &[Value::Integer(2)]).is_err());
    assert!(s2.execute("EXECUTE pick (2)").is_err());

    // SQL PREPARE/EXECUTE/DEALLOCATE round-trips within a session.
    s2.execute("PREPARE mine AS SELECT COUNT(*) FROM t WHERE id < ?").unwrap();
    let r = s2.execute("EXECUTE mine (3)").unwrap();
    assert_eq!(r.count(), Some(3));
    s2.execute("DEALLOCATE mine").unwrap();
    assert!(s2.execute("EXECUTE mine (3)").is_err());
    // s1's statement survived s2's deallocate of its own.
    s1.execute_prepared("pick", &[Value::Integer(1)]).unwrap();
}

#[test]
fn recursive_prepared_statements_error_instead_of_overflowing() {
    let db = db_with_table();
    let s = db.session();

    // Direct self-reference: PREPARE a AS EXECUTE a.
    s.execute("PREPARE a AS EXECUTE a").unwrap();
    let err = s.execute("EXECUTE a").unwrap_err().to_string();
    assert!(err.contains("depth"), "expected a depth-limit error, got: {err}");

    // Mutual recursion across two statements.
    s.execute("PREPARE b AS EXECUTE c").unwrap();
    s.execute("PREPARE c AS EXECUTE b").unwrap();
    assert!(s.execute("EXECUTE b").unwrap_err().to_string().contains("depth"));

    // The depth counter unwinds fully: bounded chains still work and
    // the session stays usable after the rejections.
    s.execute("PREPARE leaf AS SELECT COUNT(*) FROM t").unwrap();
    s.execute("PREPARE mid AS EXECUTE leaf").unwrap();
    assert_eq!(s.execute("EXECUTE mid").unwrap().count(), Some(5));
    assert_eq!(s.execute("SELECT COUNT(*) FROM t").unwrap().count(), Some(5));
}

#[test]
fn durability_is_captured_at_transaction_begin() {
    let db = db_with_table();
    let s = db.session();
    s.execute("ALTER SESSION SET durability = buffered").unwrap();
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO t VALUES (100, 'x')").unwrap();
    // Changing the option mid-transaction must not affect the open
    // transaction's commit policy (it was captured at BEGIN); this
    // just asserts the commit still succeeds and lands.
    s.execute("ALTER SESSION SET durability = fsync").unwrap();
    s.execute("COMMIT").unwrap();
    assert_eq!(db.execute("SELECT COUNT(*) FROM t").unwrap().count(), Some(6));
}

#[test]
fn session_count_tracks_attach_and_drop() {
    let db = Arc::new(Database::new());
    assert_eq!(db.session_count(), 0);
    let s1 = db.session();
    let s2 = db.session();
    assert_eq!(db.session_count(), 2);
    drop(s1);
    assert_eq!(db.session_count(), 1);
    drop(s2);
    assert_eq!(db.session_count(), 0);
}
