//! End-to-end SQL tests against the mini engine, using a toy
//! MBR-list domain index to exercise the extensible-indexing seam
//! without depending on the spatial crates above this one.

use parking_lot::RwLock;
use sdo_dbms::{Database, DbError, DomainIndex, IndexType, OperatorCall};
use sdo_geom::Rect;
use sdo_storage::{IndexKind, RowId, Value};
use sdo_tablefunc::table_function::BufferedFn;
use std::sync::Arc;

use sdo_storage::catalog::IndexMetadata;

/// A trivially simple domain index: a list of (rowid, mbr) pairs with
/// exact secondary filtering against stored geometries.
struct MbrListIndex {
    name: String,
    table: Arc<RwLock<sdo_storage::Table>>,
    column: usize,
    entries: Vec<(RowId, Rect)>,
}

impl DomainIndex for MbrListIndex {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_insert(&mut self, rid: RowId, row: &[Value]) -> Result<(), DbError> {
        if let Some(g) = row[self.column].as_geometry() {
            self.entries.push((rid, g.bbox()));
        }
        Ok(())
    }

    fn on_delete(&mut self, rid: RowId, _row: &[Value]) -> Result<(), DbError> {
        self.entries.retain(|(r, _)| *r != rid);
        Ok(())
    }

    fn evaluate(&self, call: &OperatorCall) -> Result<Vec<RowId>, DbError> {
        let q = call.args[0]
            .as_geometry()
            .ok_or_else(|| DbError::Index("expected query geometry".into()))?;
        let mut qbb = q.bbox();
        if call.name.eq_ignore_ascii_case("SDO_WITHIN_DISTANCE") {
            qbb = qbb.expanded(sdo_dbms::exec::parse_distance(&call.args[1..])?);
        }
        let mut out = Vec::new();
        let table = self.table.read();
        for (rid, mbr) in &self.entries {
            if !mbr.intersects(&qbb) {
                continue;
            }
            let row = table.get(*rid).map_err(DbError::from)?;
            let Some(g) = row[self.column].as_geometry() else { continue };
            let extra: Vec<Value> = call.args[1..].to_vec();
            if sdo_dbms::exec::eval_spatial_fn(&call.name, g, q, &extra)? {
                out.push(*rid);
            }
        }
        Ok(out)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

struct MbrListType;

impl IndexType for MbrListType {
    fn create_index(
        &self,
        db: &Database,
        index_name: &str,
        table: &str,
        column: &str,
        _params: &str,
        dop: usize,
    ) -> Result<Box<dyn DomainIndex>, DbError> {
        let t = db.table(table)?;
        let col = t
            .read()
            .schema()
            .column_index(column)
            .ok_or_else(|| DbError::Plan(format!("no column {column}")))?;
        let mut entries = Vec::new();
        for (rid, row) in t.read().scan() {
            if let Some(g) = row[col].as_geometry() {
                entries.push((rid, g.bbox()));
            }
        }
        db.catalog().register_index(IndexMetadata {
            index_name: index_name.to_string(),
            table_name: table.to_ascii_uppercase(),
            column_name: column.to_ascii_uppercase(),
            kind: IndexKind::RTree,
            dimensions: 2,
            fanout: None,
            tiling_level: None,
            create_dop: dop,
            parameters: String::new(),
        })?;
        Ok(Box::new(MbrListIndex {
            name: index_name.to_string(),
            table: Arc::clone(&t),
            column: col,
            entries,
        }))
    }

    fn operators(&self) -> &[&'static str] {
        &["SDO_RELATE", "SDO_WITHIN_DISTANCE", "SDO_FILTER"]
    }
}

fn setup() -> Database {
    let db = Database::new();
    db.register_indextype("SPATIAL_INDEX", Arc::new(MbrListType));
    db.execute("CREATE TABLE squares (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    // 5x5 grid of 2x2 squares spaced 3 apart: neighbours don't touch
    for i in 0..25 {
        let (gx, gy) = ((i % 5) * 3, (i / 5) * 3);
        let wkt = format!(
            "POLYGON (({gx} {gy}, {x1} {gy}, {x1} {y1}, {gx} {y1}, {gx} {gy}))",
            x1 = gx + 2,
            y1 = gy + 2
        );
        db.execute(&format!("INSERT INTO squares VALUES ({i}, SDO_GEOMETRY('{wkt}'))")).unwrap();
    }
    db
}

#[test]
fn create_insert_select_star() {
    let db = setup();
    let r = db.execute("SELECT * FROM squares").unwrap();
    assert_eq!(r.columns, vec!["ID", "GEOM"]);
    assert_eq!(r.rows.len(), 25);
}

#[test]
fn count_star_and_residual_filters() {
    let db = setup();
    assert_eq!(db.execute("SELECT COUNT(*) FROM squares").unwrap().count(), Some(25));
    assert_eq!(db.execute("SELECT COUNT(*) FROM squares WHERE id < 10").unwrap().count(), Some(10));
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM squares WHERE id >= 10 AND id != 12").unwrap().count(),
        Some(14)
    );
}

#[test]
fn window_query_without_index_uses_functional_path() {
    let db = setup();
    let r = db
        .execute(
            "SELECT id FROM squares WHERE \
             SDO_RELATE(geom, SDO_GEOMETRY('POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))'), \
             'ANYINTERACT') = 'TRUE'",
        )
        .unwrap();
    // squares 0, 1, 5, 6 intersect the window [0,4]^2
    let mut ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_integer().unwrap()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 5, 6]);
}

#[test]
fn window_query_with_index_matches_functional() {
    let db = setup();
    let sql = "SELECT COUNT(*) FROM squares WHERE \
               SDO_RELATE(geom, SDO_GEOMETRY('POLYGON ((1 1, 7 1, 7 7, 1 7, 1 1))'), \
               'ANYINTERACT') = 'TRUE'";
    let before = db.execute(sql).unwrap().count();
    db.execute("CREATE INDEX squares_sidx ON squares(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let after = db.execute(sql).unwrap().count();
    assert_eq!(before, after);
    assert!(after.unwrap() > 0);
}

#[test]
fn nested_loop_self_join() {
    let db = setup();
    db.execute("CREATE INDEX squares_sidx ON squares(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    db.execute("CREATE TABLE probes (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    // one probe overlapping squares 0 and 1
    db.execute(
        "INSERT INTO probes VALUES (100, SDO_GEOMETRY('POLYGON ((1 0, 4 0, 4 2, 1 2, 1 0))'))",
    )
    .unwrap();
    let r = db
        .execute(
            "SELECT COUNT(*) FROM probes a, squares b \
             WHERE SDO_RELATE(a.geom, b.geom, 'ANYINTERACT') = 'TRUE'",
        )
        .unwrap();
    assert_eq!(r.count(), Some(2));
    // projecting both sides works too
    let r = db
        .execute(
            "SELECT a.id, b.id FROM probes a, squares b \
             WHERE SDO_RELATE(a.geom, b.geom, 'ANYINTERACT') = 'TRUE' AND b.id = 1",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0].as_integer(), Some(100));
    assert_eq!(r.rows[0][1].as_integer(), Some(1));
}

#[test]
fn within_distance_join() {
    let db = setup();
    db.execute("CREATE INDEX squares_sidx ON squares(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    // neighbours are 1 apart; diagonal neighbours sqrt(2) apart
    let r = db
        .execute(
            "SELECT COUNT(*) FROM squares a, squares b \
             WHERE SDO_WITHIN_DISTANCE(a.geom, b.geom, 1) = 'TRUE'",
        )
        .unwrap();
    // each square matches itself + up to 4 orthogonal neighbours:
    // interior squares have 5, edges 4, corners 3.
    // 5x5 grid: 9 interior * 5 + 12 edge * 4 + 4 corner * 3 = 105
    assert_eq!(r.count(), Some(105));
}

#[test]
fn table_function_scan_and_rowid_pair_join() {
    let db = setup();
    // a table function returning all (rowid, rowid) identity pairs of
    // the squares table
    db.register_table_function("ID_PAIRS", |db, args| {
        let table = args[0].text()?.to_string();
        let t = db.table(&table)?;
        let rids: Vec<RowId> = t.read().scan().map(|(r, _)| r).collect();
        Ok(sdo_dbms::db::TfInstance {
            func: Box::new(BufferedFn::new(move || {
                Ok(rids.iter().map(|r| vec![Value::RowId(*r), Value::RowId(*r)]).collect())
            })),
            columns: vec!["RID1".into(), "RID2".into()],
        })
    });
    let r = db.execute("SELECT rid1, rid2 FROM TABLE(ID_PAIRS('squares'))").unwrap();
    assert_eq!(r.columns, vec!["RID1", "RID2"]);
    assert_eq!(r.rows.len(), 25);
    // drive a two-table semijoin from the pairs
    let r = db
        .execute(
            "SELECT COUNT(*) FROM squares a, squares b WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE(ID_PAIRS('squares')))",
        )
        .unwrap();
    assert_eq!(r.count(), Some(25));
    // and with an extra residual filter
    let r = db
        .execute(
            "SELECT a.id FROM squares a, squares b WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE(ID_PAIRS('squares'))) AND a.id < 3",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn cursor_arguments_materialize_subqueries() {
    let db = setup();
    db.register_table_function("COUNT_CURSOR", |_db, args| {
        let n = args[0].cursor()?.len() as i64;
        Ok(sdo_dbms::db::TfInstance {
            func: Box::new(BufferedFn::new(move || Ok(vec![vec![Value::Integer(n)]]))),
            columns: vec!["N".into()],
        })
    });
    let r = db
        .execute("SELECT n FROM TABLE(COUNT_CURSOR(CURSOR(SELECT id FROM squares WHERE id < 7)))")
        .unwrap();
    assert_eq!(r.rows[0][0].as_integer(), Some(7));
}

#[test]
fn dml_maintains_domain_indexes() {
    let db = setup();
    db.execute("CREATE INDEX squares_sidx ON squares(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let window_sql = "SELECT COUNT(*) FROM squares WHERE \
        SDO_RELATE(geom, SDO_GEOMETRY('POLYGON ((100 100, 104 100, 104 104, 100 104, 100 100))'), \
        'ANYINTERACT') = 'TRUE'";
    assert_eq!(db.execute(window_sql).unwrap().count(), Some(0));
    db.execute(
        "INSERT INTO squares VALUES (99, \
         SDO_GEOMETRY('POLYGON ((101 101, 102 101, 102 102, 101 102, 101 101))'))",
    )
    .unwrap();
    assert_eq!(db.execute(window_sql).unwrap().count(), Some(1));
    db.execute("DELETE FROM squares WHERE id = 99").unwrap();
    assert_eq!(db.execute(window_sql).unwrap().count(), Some(0));
}

#[test]
fn drop_table_and_index() {
    let db = setup();
    db.execute("CREATE INDEX squares_sidx ON squares(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    db.execute("DROP INDEX squares_sidx").unwrap();
    assert!(db.execute("DROP INDEX squares_sidx").is_err());
    db.execute("DROP TABLE squares").unwrap();
    assert!(db.execute("SELECT * FROM squares").is_err());
}

#[test]
fn errors_are_reported() {
    let db = setup();
    assert!(matches!(db.execute("SELECT * FROM missing"), Err(DbError::Storage(_))));
    assert!(matches!(db.execute("SELECT ^"), Err(DbError::Parse { .. })));
    assert!(matches!(db.execute("SELECT nope FROM squares"), Err(DbError::Plan(_))));
    assert!(matches!(
        db.execute("INSERT INTO squares VALUES (1, SDO_GEOMETRY('POINT (bad)'))"),
        Err(DbError::Geometry(_))
    ));
    assert!(db.execute("CREATE INDEX i ON squares(geom) INDEXTYPE IS NOT_REGISTERED").is_err());
}

#[test]
fn rowid_projection() {
    let db = setup();
    let r = db.execute("SELECT rowid, id FROM squares WHERE id = 3").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(r.rows[0][0].as_rowid().is_some());
}

#[test]
fn order_by_and_limit() {
    let db = setup();
    let r = db.execute("SELECT id FROM squares ORDER BY id DESC LIMIT 3").unwrap();
    let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_integer().unwrap()).collect();
    assert_eq!(ids, vec![24, 23, 22]);
    // ascending is the default; keys may be unprojected expressions
    let r = db.execute("SELECT id FROM squares WHERE id >= 20 ORDER BY id ASC").unwrap();
    let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_integer().unwrap()).collect();
    assert_eq!(ids, vec![20, 21, 22, 23, 24]);
    // LIMIT 0
    assert!(db.execute("SELECT id FROM squares LIMIT 0").unwrap().rows.is_empty());
}

#[test]
fn scalar_geometry_functions() {
    let db = setup();
    // every square is 2x2 => area 4
    let r = db.execute("SELECT SDO_AREA(geom) a FROM squares WHERE id = 0").unwrap();
    assert_eq!(r.columns, vec!["A"]);
    assert_eq!(r.rows[0][0].as_double(), Some(4.0));

    let r = db.execute("SELECT SDO_NUM_POINTS(geom) FROM squares WHERE id = 0").unwrap();
    assert_eq!(r.rows[0][0].as_integer(), Some(4));

    // distance from each square to a fixed point, ordered
    let r = db
        .execute(
            "SELECT id, SDO_DISTANCE(geom, SDO_POINT(0, 0)) d FROM squares \
             ORDER BY SDO_DISTANCE(geom, SDO_POINT(0, 0)) LIMIT 2",
        )
        .unwrap();
    assert_eq!(r.rows[0][0].as_integer(), Some(0)); // square at origin
    assert_eq!(r.rows[0][1].as_double(), Some(0.0));
    assert!(r.rows[1][1].as_double().unwrap() > 0.0);

    // centroid + wkt round trip through SQL
    let r = db.execute("SELECT SDO_WKT(SDO_CENTROID(geom)) FROM squares WHERE id = 0").unwrap();
    assert_eq!(r.rows[0][0].as_text(), Some("POINT (1 1)"));

    // MBR of a geometry is a polygon
    let r = db.execute("SELECT SDO_MBR(geom) FROM squares WHERE id = 0").unwrap();
    assert!(r.rows[0][0].as_geometry().is_some());
}

#[test]
fn order_by_rejects_bad_keys() {
    let db = setup();
    assert!(db.execute("SELECT id FROM squares ORDER BY nope").is_err());
    assert!(db.execute("SELECT id FROM squares LIMIT -1").is_err());
    assert!(db.execute("SELECT id FROM squares ORDER id").is_err());
}

#[test]
fn length_and_validate_functions() {
    let db = setup();
    // 2x2 square: perimeter 8
    let r = db.execute("SELECT SDO_LENGTH(geom) FROM squares WHERE id = 0").unwrap();
    assert_eq!(r.rows[0][0].as_double(), Some(8.0));
    let r = db.execute("SELECT SDO_VALIDATE(geom) FROM squares WHERE id = 0").unwrap();
    assert_eq!(r.rows[0][0].as_text(), Some("TRUE"));
    // a bowtie fails validation with a reason
    db.execute(
        "INSERT INTO squares VALUES (500, \
         SDO_GEOMETRY('POLYGON ((0 0, 2 2, 2 0, 0 2, 0 0))'))",
    )
    .unwrap();
    let r = db.execute("SELECT SDO_VALIDATE(geom) FROM squares WHERE id = 500").unwrap();
    assert!(r.rows[0][0].as_text().unwrap().contains("self-intersect"));
}

#[test]
fn update_statement() {
    let db = setup();
    let r = db.execute("UPDATE squares SET id = 100 WHERE id = 5").unwrap();
    assert_eq!(r.rows[0][0].as_integer(), Some(1));
    assert_eq!(db.execute("SELECT COUNT(*) FROM squares WHERE id = 5").unwrap().count(), Some(0));
    assert_eq!(db.execute("SELECT COUNT(*) FROM squares WHERE id = 100").unwrap().count(), Some(1));
    // multiple assignments, expression referencing the row
    let r = db
        .execute("UPDATE squares SET id = 200, geom = SDO_GEOMETRY('POINT (1 1)') WHERE id = 100")
        .unwrap();
    assert_eq!(r.rows[0][0].as_integer(), Some(1));
    let g = db.execute("SELECT SDO_WKT(geom) FROM squares WHERE id = 200").unwrap();
    assert_eq!(g.rows[0][0].as_text(), Some("POINT (1 1)"));
    // no-match update
    let r = db.execute("UPDATE squares SET id = 1 WHERE id = 99999").unwrap();
    assert_eq!(r.rows[0][0].as_integer(), Some(0));
    // unknown column errors
    assert!(db.execute("UPDATE squares SET nope = 1").is_err());
}
