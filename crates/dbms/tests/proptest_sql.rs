//! Fuzzing the SQL front end: the lexer/parser must reject garbage with
//! errors (never panic), and valid statement shapes must round-trip
//! through parse without loss of the pieces the executor needs.

use proptest::prelude::*;
use sdo_dbms::sql::{parse, Statement};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC*") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_sql_shaped_input(
        s in "(SELECT|INSERT|CREATE|DROP|DELETE|UPDATE|EXPLAIN)[ a-zA-Z0-9_'(),.*=<>]*",
    ) {
        let _ = parse(&s);
    }

    #[test]
    fn valid_selects_parse(
        table in "[a-z][a-z0-9_]{0,10}",
        col in "[a-z][a-z0-9_]{0,10}",
        n in 0i64..1000,
        limit in 0usize..50,
    ) {
        let sql = format!(
            "SELECT {col} FROM {table} WHERE {col} >= {n} ORDER BY {col} DESC LIMIT {limit}"
        );
        let stmt = parse(&sql).unwrap();
        let Statement::Select(sel) = stmt else { panic!("not a select") };
        prop_assert_eq!(sel.from.len(), 1);
        prop_assert_eq!(sel.where_clause.len(), 1);
        prop_assert_eq!(sel.order_by.len(), 1);
        prop_assert!(sel.order_by[0].descending);
        prop_assert_eq!(sel.limit, Some(limit));
    }

    #[test]
    fn string_literals_roundtrip(body in "[a-zA-Z0-9 +=_,.-]*") {
        // any text that needs no escaping flows through VALUES intact
        let sql = format!("INSERT INTO t VALUES ('{body}')");
        match parse(&sql).unwrap() {
            Statement::Insert { values, .. } => {
                match &values[0] {
                    sdo_dbms::sql::Expr::Literal(v) => {
                        prop_assert_eq!(v.as_text(), Some(body.as_str()));
                    }
                    other => prop_assert!(false, "unexpected expr {:?}", other),
                }
            }
            other => prop_assert!(false, "unexpected statement {:?}", other),
        }
    }
}
