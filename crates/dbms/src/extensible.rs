//! The extensible indexing framework.
//!
//! Oracle's ODCI framework lets a cartridge define an *indextype*
//! providing index creation, DML maintenance, and operator evaluation
//! routines that the kernel invokes (paper §3). This module is the
//! equivalent seam: `sdo-core` registers a `SPATIAL_INDEX` indextype
//! here, and `CREATE INDEX ... INDEXTYPE IS SPATIAL_INDEX` plus
//! `WHERE SDO_RELATE(...) = 'TRUE'` route through these traits.
//!
//! The framework's key (faithful) limitation: an operator is evaluated
//! against **one** indexed table and returns rowids of that table only.
//! Joins over two domain indexes don't fit — which is exactly why the
//! paper implements spatial joins as table functions instead.

use crate::error::DbError;
use sdo_storage::{RowId, Value};

/// A parsed spatial (or other domain) operator occurrence:
/// `NAME(col, args...) = 'TRUE'`.
#[derive(Debug, Clone)]
pub struct OperatorCall {
    /// Operator name, uppercased (`SDO_RELATE`, `SDO_WITHIN_DISTANCE`,
    /// `SDO_FILTER`).
    pub name: String,
    /// Evaluated non-column arguments (query geometry, mask string,
    /// distance...).
    pub args: Vec<Value>,
    /// The calling statement's MVCC read view. An index's internal
    /// structure may hold entries for versions this snapshot cannot
    /// see (eager maintenance of in-flight transactions); any heap
    /// fetch the index performs while evaluating must use this
    /// snapshot so the answer matches what the statement reads.
    pub snap: sdo_storage::Snapshot,
}

/// A live domain index instance attached to one `(table, column)`.
pub trait DomainIndex: Send + Sync {
    /// The index's registered name.
    fn name(&self) -> &str;

    /// Maintain the index after a row insert.
    fn on_insert(&mut self, rid: RowId, row: &[Value]) -> Result<(), DbError>;

    /// Maintain the index before a row delete.
    fn on_delete(&mut self, rid: RowId, row: &[Value]) -> Result<(), DbError>;

    /// Evaluate an operator against the index, returning the rowids of
    /// the indexed table that satisfy it **exactly** (the index runs
    /// both filter stages internally, like Oracle's operator
    /// evaluation with `query_type = FILTER + EXACT`).
    fn evaluate(&self, call: &OperatorCall) -> Result<Vec<RowId>, DbError>;

    /// Implementation-specific statistics line for `EXPLAIN`-style
    /// output and experiment logs.
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Incremental nearest-neighbor support: return up to `k` rowids
    /// ordered by ascending exact distance to `query` (ties broken by
    /// rowid), visiting as little of the index as possible. `Ok(None)`
    /// means the index has no kNN capability and the caller must fall
    /// back to a full sort — the default for index types without a
    /// distance-ordered traversal.
    fn nearest(
        &self,
        query: &sdo_geom::Geometry,
        k: usize,
        snap: &sdo_storage::Snapshot,
    ) -> Result<Option<Vec<(f64, RowId)>>, DbError> {
        let (_, _, _) = (query, k, snap);
        Ok(None)
    }

    /// Downcast support so privileged callers (the spatial join table
    /// function) can reach the concrete index structure.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// A factory for domain indexes — the *indextype*. Registered under a
/// name (`SPATIAL_INDEX`) and invoked by
/// `CREATE INDEX ... INDEXTYPE IS <name> PARAMETERS ('...') PARALLEL n`.
pub trait IndexType: Send + Sync {
    /// Build an index over `table.column`.
    ///
    /// `params` is the raw `PARAMETERS` string (e.g.
    /// `"sdo_level=8"` or `"tree_fanout=32"`), `dop` the requested
    /// degree of parallelism for creation.
    fn create_index(
        &self,
        db: &crate::db::Database,
        index_name: &str,
        table: &str,
        column: &str,
        params: &str,
        dop: usize,
    ) -> Result<Box<dyn DomainIndex>, DbError>;

    /// Operators this indextype implements (uppercase names).
    fn operators(&self) -> &[&'static str];
}

/// Parse an Oracle-style `PARAMETERS` string: whitespace/comma
/// separated `key=value` pairs, case-insensitive keys.
pub fn parse_params(params: &str) -> Vec<(String, String)> {
    params
        .split([',', ' ', '\t', '\n'])
        .filter(|s| !s.is_empty())
        .filter_map(|kv| {
            kv.split_once('=').map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect()
}

/// Look up a parameter value by key.
pub fn param<'a>(params: &'a [(String, String)], key: &str) -> Option<&'a str> {
    params.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_parse_oracle_style() {
        let p = parse_params("sdo_level=8, tree_fanout=32  memory=64000");
        assert_eq!(param(&p, "sdo_level"), Some("8"));
        assert_eq!(param(&p, "tree_fanout"), Some("32"));
        assert_eq!(param(&p, "memory"), Some("64000"));
        assert_eq!(param(&p, "missing"), None);
    }

    #[test]
    fn params_keys_case_insensitive() {
        let p = parse_params("SDO_LEVEL=6");
        assert_eq!(param(&p, "sdo_level"), Some("6"));
    }

    #[test]
    fn empty_params() {
        assert!(parse_params("").is_empty());
        assert!(parse_params("  ,, ").is_empty());
    }
}
