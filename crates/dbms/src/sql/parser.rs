//! Recursive-descent parser for the mini SQL dialect.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement   := create_table | drop_table | insert | delete
//!              | create_index | drop_index | select
//! create_table:= CREATE TABLE ident '(' ident type (',' ident type)* ')'
//! insert      := INSERT INTO ident VALUES '(' expr (',' expr)* ')'
//! delete      := DELETE FROM ident [WHERE conjuncts]
//! create_index:= CREATE INDEX ident ON ident '(' ident ')'
//!                INDEXTYPE IS ident [PARAMETERS '(' string ')']
//!                [PARALLEL integer]
//! select      := SELECT items FROM from_item (',' from_item)*
//!                [WHERE conjuncts]
//! items       := '*' | COUNT '(' '*' ')' | expr [AS ident] (',' ...)*
//! from_item   := ident [ident] | TABLE '(' ident '(' tf_args ')' ')' [ident]
//! tf_args     := (expr | CURSOR '(' select ')') (',' ...)*
//! conjuncts   := predicate (AND predicate)*
//! predicate   := '(' colref ',' colref ')' IN '(' select ')'
//!              | expr cmp expr
//! expr        := literal | colref | ident '(' expr (',' expr)* ')' | '?'
//! prepare     := PREPARE ident AS statement
//! execute     := EXECUTE ident ['(' expr (',' expr)* ')']
//! deallocate  := DEALLOCATE [PREPARE] ident
//! ```
//!
//! `?` placeholders are numbered left to right in source order and only
//! make sense inside `PREPARE`; direct execution of a statement with
//! parameters fails at plan time.

use crate::error::DbError;
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token, TokenKind};
use sdo_storage::{DataType, Value};

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement, DbError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let stmt = p.statement()?;
    p.eat_if(&TokenKind::Semicolon);
    p.expect_kind(&TokenKind::Eof, "end of statement")?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` placeholders seen so far (assigns ordinals).
    params: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, message: impl Into<String>) -> DbError {
        DbError::Parse { offset: self.offset(), message: message.into() }
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<(), DbError> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    /// True when the next token is the given keyword.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, DbError> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(DbError::Parse {
                offset: self.tokens[self.pos - 1].offset,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, DbError> {
        match self.advance() {
            TokenKind::Str(s) => Ok(s),
            other => Err(DbError::Parse {
                offset: self.tokens[self.pos - 1].offset,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    // -- statements --------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, DbError> {
        if self.at_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("EXPLAIN") {
            if self.eat_kw("ANALYZE") {
                return Ok(Statement::ExplainAnalyze(Box::new(self.statement()?)));
            }
            return Ok(Statement::Explain(self.select()?));
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            if self.eat_kw("INDEX") {
                return self.create_index();
            }
            return Err(self.err("expected TABLE or INDEX after CREATE"));
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") {
                return Ok(Statement::DropTable { name: self.ident("table name")? });
            }
            if self.eat_kw("INDEX") {
                return Ok(Statement::DropIndex { name: self.ident("index name")? });
            }
            return Err(self.err("expected TABLE or INDEX after DROP"));
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident("table name")?;
            self.expect_kw("VALUES")?;
            self.expect_kind(&TokenKind::LParen, "(")?;
            let mut values = vec![self.expr()?];
            while self.eat_if(&TokenKind::Comma) {
                values.push(self.expr()?);
            }
            self.expect_kind(&TokenKind::RParen, ")")?;
            return Ok(Statement::Insert { table, values });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident("table name")?;
            self.expect_kw("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.ident("column name")?;
                self.expect_kind(&TokenKind::Eq, "=")?;
                assignments.push((col, self.expr()?));
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            let where_clause = if self.eat_kw("WHERE") { self.conjuncts()? } else { Vec::new() };
            return Ok(Statement::Update { table, assignments, where_clause });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident("table name")?;
            let where_clause = if self.eat_kw("WHERE") { self.conjuncts()? } else { Vec::new() };
            return Ok(Statement::Delete { table, where_clause });
        }
        if self.eat_kw("BEGIN") {
            // Optional noise words, Oracle/ANSI style.
            let _ = self.eat_kw("TRANSACTION") || self.eat_kw("WORK");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            let _ = self.eat_kw("WORK");
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            let _ = self.eat_kw("WORK");
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("PREPARE") {
            let name = self.ident("prepared statement name")?;
            self.expect_kw("AS")?;
            let stmt = self.statement()?;
            return Ok(Statement::Prepare { name, stmt: Box::new(stmt) });
        }
        if self.eat_kw("EXECUTE") {
            let name = self.ident("prepared statement name")?;
            let mut args = Vec::new();
            if self.eat_if(&TokenKind::LParen) {
                if *self.peek() != TokenKind::RParen {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_if(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect_kind(&TokenKind::RParen, ")")?;
            }
            return Ok(Statement::ExecutePrepared { name, args });
        }
        if self.eat_kw("DEALLOCATE") {
            let _ = self.eat_kw("PREPARE");
            let name = self.ident("prepared statement name")?;
            return Ok(Statement::Deallocate { name });
        }
        if self.eat_kw("ANALYZE") {
            let _ = self.eat_kw("TABLE");
            let table = self.ident("table name")?;
            return Ok(Statement::Analyze { table });
        }
        if self.eat_kw("ALTER") {
            self.expect_kw("SESSION")?;
            self.expect_kw("SET")?;
            let name = self.ident("session option name")?;
            self.expect_kind(&TokenKind::Eq, "=")?;
            let value = match self.advance() {
                TokenKind::Ident(s) => s,
                TokenKind::Str(s) => s,
                TokenKind::Integer(n) => n.to_string(),
                TokenKind::Float(f) => f.to_string(),
                _ => return Err(self.err("expected a session option value")),
            };
            return Ok(Statement::AlterSession { name, value });
        }
        Err(self.err("expected a statement"))
    }

    fn create_table(&mut self) -> Result<Statement, DbError> {
        let name = self.ident("table name")?;
        self.expect_kind(&TokenKind::LParen, "(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident("column name")?;
            let ty_name = self.ident("column type")?;
            let ty = DataType::parse(&ty_name)
                .ok_or_else(|| self.err(format!("unknown type {ty_name}")))?;
            columns.push((col, ty));
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen, ")")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> Result<Statement, DbError> {
        let name = self.ident("index name")?;
        self.expect_kw("ON")?;
        let table = self.ident("table name")?;
        self.expect_kind(&TokenKind::LParen, "(")?;
        let column = self.ident("column name")?;
        self.expect_kind(&TokenKind::RParen, ")")?;
        self.expect_kw("INDEXTYPE")?;
        self.expect_kw("IS")?;
        let indextype = self.ident("indextype name")?;
        let mut parameters = String::new();
        if self.eat_kw("PARAMETERS") {
            self.expect_kind(&TokenKind::LParen, "(")?;
            parameters = self.string("parameters string")?;
            self.expect_kind(&TokenKind::RParen, ")")?;
        }
        let mut parallel = 1;
        if self.eat_kw("PARALLEL") {
            match self.advance() {
                TokenKind::Integer(n) if n >= 1 => parallel = n as usize,
                other => {
                    return Err(DbError::Parse {
                        offset: self.tokens[self.pos - 1].offset,
                        message: format!(
                            "expected positive degree of parallelism, found {other:?}"
                        ),
                    })
                }
            }
        }
        Ok(Statement::CreateIndex { name, table, column, indextype, parameters, parallel })
    }

    // -- select ------------------------------------------------------------

    fn select(&mut self) -> Result<Select, DbError> {
        self.expect_kw("SELECT")?;
        let projection = self.select_items()?;
        self.expect_kw("FROM")?;
        let mut from = vec![self.parse_from_item()?];
        while self.eat_if(&TokenKind::Comma) {
            from.push(self.parse_from_item()?);
        }
        let where_clause = if self.eat_kw("WHERE") { self.conjuncts()? } else { Vec::new() };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, descending });
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_kw("LIMIT") {
            match self.advance() {
                TokenKind::Integer(n) if n >= 0 => limit = Some(n as usize),
                other => {
                    return Err(DbError::Parse {
                        offset: self.tokens[self.pos - 1].offset,
                        message: format!("expected LIMIT count, found {other:?}"),
                    })
                }
            }
        }
        Ok(Select { projection, from, where_clause, order_by, limit })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, DbError> {
        if self.eat_if(&TokenKind::Star) {
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = Vec::new();
        loop {
            if self.at_kw("COUNT") && *self.peek2() == TokenKind::LParen {
                self.advance();
                self.advance();
                self.expect_kind(&TokenKind::Star, "*")?;
                self.expect_kind(&TokenKind::RParen, ")")?;
                items.push(SelectItem::CountStar);
            } else {
                let expr = self.expr()?;
                let explicit = self.eat_kw("AS");
                let alias =
                    if explicit || matches!(self.peek(), TokenKind::Ident(s) if !is_reserved(s)) {
                        Some(self.ident("alias")?)
                    } else {
                        None
                    };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_from_item(&mut self) -> Result<FromItem, DbError> {
        if self.at_kw("TABLE") && *self.peek2() == TokenKind::LParen {
            self.advance(); // TABLE
            self.advance(); // (
            let name = self.ident("table function name")?;
            self.expect_kind(&TokenKind::LParen, "(")?;
            let mut args = Vec::new();
            if *self.peek() != TokenKind::RParen {
                loop {
                    if self.at_kw("CURSOR") {
                        self.advance();
                        self.expect_kind(&TokenKind::LParen, "(")?;
                        let sub = self.select()?;
                        self.expect_kind(&TokenKind::RParen, ")")?;
                        args.push(TfArgAst::Cursor(sub));
                    } else {
                        args.push(TfArgAst::Expr(self.expr()?));
                    }
                    if !self.eat_if(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect_kind(&TokenKind::RParen, ")")?;
            self.expect_kind(&TokenKind::RParen, ")")?;
            let alias = self.optional_alias();
            return Ok(FromItem::TableFunction { name, args, alias });
        }
        let name = self.ident("table name")?;
        let alias = self.optional_alias();
        Ok(FromItem::Table { name, alias })
    }

    fn optional_alias(&mut self) -> Option<String> {
        if matches!(self.peek(), TokenKind::Ident(s) if !is_reserved(s)) {
            match self.advance() {
                TokenKind::Ident(s) => Some(s),
                _ => unreachable!(),
            }
        } else {
            None
        }
    }

    // -- predicates ----------------------------------------------------------

    fn conjuncts(&mut self) -> Result<Vec<Predicate>, DbError> {
        let mut out = vec![self.predicate()?];
        while self.eat_kw("AND") {
            out.push(self.predicate()?);
        }
        Ok(out)
    }

    fn predicate(&mut self) -> Result<Predicate, DbError> {
        // Rowid-pair IN: '(' colref ',' colref ')' IN '(' select ')'
        if *self.peek() == TokenKind::LParen && self.looks_like_rowid_pair() {
            self.advance(); // (
            let left = self.column_ref()?;
            self.expect_kind(&TokenKind::Comma, ",")?;
            let right = self.column_ref()?;
            self.expect_kind(&TokenKind::RParen, ")")?;
            self.expect_kw("IN")?;
            self.expect_kind(&TokenKind::LParen, "(")?;
            let subquery = self.select()?;
            self.expect_kind(&TokenKind::RParen, ")")?;
            return Ok(Predicate::RowidPairIn { left, right, subquery });
        }
        let left = self.expr()?;
        let op = match self.advance() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(DbError::Parse {
                    offset: self.tokens[self.pos - 1].offset,
                    message: format!("expected comparison operator, found {other:?}"),
                })
            }
        };
        let right = self.expr()?;
        Ok(Predicate::Compare { left, op, right })
    }

    /// Lookahead for `'(' ident [. ident] ','` — distinguishes a rowid
    /// pair from a parenthesized expression (which we don't support
    /// anyway).
    fn looks_like_rowid_pair(&self) -> bool {
        let mut i = self.pos + 1;
        let at = |i: usize| &self.tokens[i.min(self.tokens.len() - 1)].kind;
        if !matches!(at(i), TokenKind::Ident(_)) {
            return false;
        }
        i += 1;
        if *at(i) == TokenKind::Dot {
            i += 2;
        }
        *at(i) == TokenKind::Comma
    }

    // -- expressions -----------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, DbError> {
        match self.peek().clone() {
            TokenKind::Integer(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Integer(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Double(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::text(s)))
            }
            TokenKind::Question => {
                self.advance();
                let ordinal = self.params;
                self.params += 1;
                Ok(Expr::Param(ordinal))
            }
            TokenKind::Ident(name) => {
                if *self.peek2() == TokenKind::LParen {
                    // function call
                    self.advance();
                    self.advance();
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_if(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_kind(&TokenKind::RParen, ")")?;
                    return Ok(Expr::FnCall { name, args });
                }
                let cr = self.column_ref()?;
                Ok(Expr::Column(cr))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, DbError> {
        let first = self.ident("column reference")?;
        if self.eat_if(&TokenKind::Dot) {
            let col = self.ident("column name")?;
            Ok(ColumnRef { qualifier: Some(first), column: col })
        } else {
            Ok(ColumnRef { qualifier: None, column: first })
        }
    }
}

fn is_reserved(kw: &str) -> bool {
    matches!(
        kw,
        "SELECT"
            | "FROM"
            | "WHERE"
            | "AND"
            | "IN"
            | "AS"
            | "TABLE"
            | "CURSOR"
            | "VALUES"
            | "ON"
            | "INDEXTYPE"
            | "IS"
            | "PARAMETERS"
            | "PARALLEL"
            | "COUNT"
            | "INSERT"
            | "INTO"
            | "CREATE"
            | "DROP"
            | "DELETE"
            | "EXPLAIN"
            | "UPDATE"
            | "SET"
            | "INDEX"
            | "ORDER"
            | "BY"
            | "ASC"
            | "DESC"
            | "LIMIT"
            | "GROUP"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse("CREATE TABLE cities (id NUMBER, name VARCHAR2, geom SDO_GEOMETRY)").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "CITIES");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[2], ("GEOM".to_string(), DataType::Geometry));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_with_geometry_fn() {
        let s = parse("INSERT INTO t VALUES (1, SDO_GEOMETRY('POINT (1 2)'))").unwrap();
        match s {
            Statement::Insert { table, values } => {
                assert_eq!(table, "T");
                assert_eq!(values.len(), 2);
                assert!(matches!(&values[1], Expr::FnCall { name, .. } if name == "SDO_GEOMETRY"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_index_full_form() {
        let s = parse(
            "CREATE INDEX cities_sidx ON cities(geom) INDEXTYPE IS SPATIAL_INDEX \
             PARAMETERS ('sdo_level=8') PARALLEL 4",
        )
        .unwrap();
        match s {
            Statement::CreateIndex { name, table, column, indextype, parameters, parallel } => {
                assert_eq!(name, "CITIES_SIDX");
                assert_eq!(table, "CITIES");
                assert_eq!(column, "GEOM");
                assert_eq!(indextype, "SPATIAL_INDEX");
                assert_eq!(parameters, "sdo_level=8");
                assert_eq!(parallel, 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_count_with_operator() {
        let s = parse(
            "SELECT COUNT(*) FROM city_table a, river_table b \
             WHERE SDO_RELATE(a.city_geom, b.river_geom, 'intersect') = 'TRUE'",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.projection, vec![SelectItem::CountStar]);
                assert_eq!(sel.from.len(), 2);
                assert_eq!(sel.from[0].binding(), "A");
                assert_eq!(sel.where_clause.len(), 1);
                match &sel.where_clause[0] {
                    Predicate::Compare { left: Expr::FnCall { name, args }, op, right } => {
                        assert_eq!(name, "SDO_RELATE");
                        assert_eq!(args.len(), 3);
                        assert_eq!(*op, CmpOp::Eq);
                        assert_eq!(*right, Expr::Literal(Value::text("TRUE")));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_join_query_shape() {
        // The paper's §4 rewritten join query, verbatim shape.
        let s = parse(
            "SELECT COUNT(*) FROM city_table a, river_table b \
             WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
              'city_table', 'city_geom', 'river_table', 'river_geom', 'intersect')))",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => match &sel.where_clause[0] {
                Predicate::RowidPairIn { left, right, subquery } => {
                    assert_eq!(left.qualifier.as_deref(), Some("A"));
                    assert!(left.is_rowid());
                    assert!(right.is_rowid());
                    assert_eq!(subquery.from.len(), 1);
                    match &subquery.from[0] {
                        FromItem::TableFunction { name, args, .. } => {
                            assert_eq!(name, "SPATIAL_JOIN");
                            assert_eq!(args.len(), 5);
                        }
                        other => panic!("{other:?}"),
                    }
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cursor_argument() {
        let s =
            parse("SELECT * FROM TABLE(F(CURSOR(SELECT * FROM TABLE(SUBTREE_ROOT('idx', 1))), 2))")
                .unwrap();
        match s {
            Statement::Select(sel) => match &sel.from[0] {
                FromItem::TableFunction { args, .. } => {
                    assert!(matches!(args[0], TfArgAst::Cursor(_)));
                    assert!(matches!(args[1], TfArgAst::Expr(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn delete_with_predicate() {
        let s = parse("DELETE FROM t WHERE id = 3").unwrap();
        assert!(matches!(s, Statement::Delete { ref table, ref where_clause }
            if table == "T" && where_clause.len() == 1));
        let s = parse("DELETE FROM t").unwrap();
        assert!(matches!(s, Statement::Delete { ref where_clause, .. } if where_clause.is_empty()));
    }

    #[test]
    fn aliases() {
        let s = parse("SELECT a.name nm, b.id FROM t1 a, t2 b WHERE a.id = b.id").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.projection.len(), 2);
                match &sel.projection[0] {
                    SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("NM")),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_have_offsets() {
        for bad in [
            "SELECT",
            "CREATE VIEW v",
            "SELECT * FROM t WHERE",
            "INSERT INTO t VALUES 1",
            "CREATE INDEX i ON t(c)",
            "SELECT * FROM t WHERE a ==",
        ] {
            match parse(bad) {
                Err(DbError::Parse { .. }) => {}
                other => panic!("expected parse error for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn prepare_execute_deallocate() {
        let s = parse("PREPARE q1 AS SELECT * FROM t WHERE id = ? AND score > ?").unwrap();
        match s {
            Statement::Prepare { name, stmt } => {
                assert_eq!(name, "Q1");
                match *stmt {
                    Statement::Select(sel) => {
                        assert!(matches!(
                            &sel.where_clause[0],
                            Predicate::Compare { right: Expr::Param(0), .. }
                        ));
                        assert!(matches!(
                            &sel.where_clause[1],
                            Predicate::Compare { right: Expr::Param(1), .. }
                        ));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        let s = parse("EXECUTE q1 (3, 'x')").unwrap();
        match s {
            Statement::ExecutePrepared { name, args } => {
                assert_eq!(name, "Q1");
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(parse("EXECUTE q1").unwrap(),
            Statement::ExecutePrepared { ref args, .. } if args.is_empty()));
        assert!(matches!(parse("DEALLOCATE PREPARE q1").unwrap(),
            Statement::Deallocate { ref name } if name == "Q1"));
        assert!(matches!(parse("DEALLOCATE q1").unwrap(),
            Statement::Deallocate { ref name } if name == "Q1"));
        assert!(parse("PREPARE q1").is_err());
        assert!(parse("EXECUTE").is_err());
    }

    #[test]
    fn trailing_semicolon_and_garbage() {
        assert!(parse("SELECT * FROM t;").is_ok());
        assert!(parse("SELECT * FROM t; SELECT").is_err());
    }
}
