//! The mini SQL dialect: lexer, AST, parser.
//!
//! Covers the statement shapes appearing in the paper (its §§2–5 SQL
//! listings), not full SQL. See [`parser::parse`] for the grammar.

pub mod ast;
pub mod lexer;
pub mod params;
pub mod parser;

pub use ast::*;
pub use params::{bind_statement, param_count};
pub use parser::parse;
