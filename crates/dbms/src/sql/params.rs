//! Bind-parameter substitution for prepared statements.
//!
//! A prepared statement keeps its parsed AST with [`Expr::Param`]
//! placeholders in place. At `EXECUTE` time the session clones the AST
//! and replaces every placeholder with the corresponding constant via
//! [`bind_statement`] — the executor itself never sees a parameter, so
//! binding composes with every statement shape (including `CURSOR`
//! subqueries and rowid-pair semijoins) without touching the operators.

use crate::error::DbError;
use crate::sql::ast::*;
use sdo_storage::Value;

/// Number of distinct `?` placeholders in a statement (max ordinal + 1).
pub fn param_count(stmt: &Statement) -> usize {
    let mut max = 0usize;
    walk_statement(stmt, &mut |ordinal| max = max.max(ordinal + 1));
    max
}

/// Clone `stmt` with every `?` placeholder replaced by the value at its
/// ordinal. Errors when a placeholder has no matching value; surplus
/// values are rejected by the caller (which knows the statement name).
pub fn bind_statement(stmt: &Statement, params: &[Value]) -> Result<Statement, DbError> {
    let mut bound = stmt.clone();
    let mut missing = None;
    rewrite_statement(&mut bound, &mut |ordinal| {
        if let Some(v) = params.get(ordinal) {
            Some(Expr::Literal(v.clone()))
        } else {
            missing = Some(ordinal);
            None
        }
    });
    match missing {
        Some(ordinal) => Err(DbError::Plan(format!(
            "bind parameter ?{} has no value ({} supplied)",
            ordinal + 1,
            params.len()
        ))),
        None => Ok(bound),
    }
}

// -- read-only walk --------------------------------------------------------

fn walk_statement(stmt: &Statement, f: &mut impl FnMut(usize)) {
    match stmt {
        Statement::Insert { values, .. } => values.iter().for_each(|e| walk_expr(e, f)),
        Statement::Delete { where_clause, .. } => where_clause.iter().for_each(|p| walk_pred(p, f)),
        Statement::Update { assignments, where_clause, .. } => {
            assignments.iter().for_each(|(_, e)| walk_expr(e, f));
            where_clause.iter().for_each(|p| walk_pred(p, f));
        }
        Statement::Select(sel) | Statement::Explain(sel) => walk_select(sel, f),
        Statement::ExplainAnalyze(inner) | Statement::Prepare { stmt: inner, .. } => {
            walk_statement(inner, f)
        }
        Statement::ExecutePrepared { args, .. } => args.iter().for_each(|e| walk_expr(e, f)),
        Statement::CreateTable { .. }
        | Statement::DropTable { .. }
        | Statement::CreateIndex { .. }
        | Statement::DropIndex { .. }
        | Statement::Begin
        | Statement::Commit
        | Statement::Rollback
        | Statement::AlterSession { .. }
        | Statement::Deallocate { .. }
        | Statement::Analyze { .. } => {}
    }
}

fn walk_select(sel: &Select, f: &mut impl FnMut(usize)) {
    for item in &sel.projection {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, f);
        }
    }
    for from in &sel.from {
        if let FromItem::TableFunction { args, .. } = from {
            for arg in args {
                match arg {
                    TfArgAst::Expr(e) => walk_expr(e, f),
                    TfArgAst::Cursor(sub) => walk_select(sub, f),
                }
            }
        }
    }
    sel.where_clause.iter().for_each(|p| walk_pred(p, f));
    sel.order_by.iter().for_each(|k| walk_expr(&k.expr, f));
}

fn walk_pred(pred: &Predicate, f: &mut impl FnMut(usize)) {
    match pred {
        Predicate::Compare { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        Predicate::RowidPairIn { subquery, .. } => walk_select(subquery, f),
    }
}

fn walk_expr(expr: &Expr, f: &mut impl FnMut(usize)) {
    match expr {
        Expr::Param(ordinal) => f(*ordinal),
        Expr::FnCall { args, .. } => args.iter().for_each(|e| walk_expr(e, f)),
        Expr::Literal(_) | Expr::Column(_) => {}
    }
}

// -- in-place rewrite ------------------------------------------------------

fn rewrite_statement(stmt: &mut Statement, f: &mut impl FnMut(usize) -> Option<Expr>) {
    match stmt {
        Statement::Insert { values, .. } => values.iter_mut().for_each(|e| rewrite_expr(e, f)),
        Statement::Delete { where_clause, .. } => {
            where_clause.iter_mut().for_each(|p| rewrite_pred(p, f))
        }
        Statement::Update { assignments, where_clause, .. } => {
            assignments.iter_mut().for_each(|(_, e)| rewrite_expr(e, f));
            where_clause.iter_mut().for_each(|p| rewrite_pred(p, f));
        }
        Statement::Select(sel) | Statement::Explain(sel) => rewrite_select(sel, f),
        Statement::ExplainAnalyze(inner) | Statement::Prepare { stmt: inner, .. } => {
            rewrite_statement(inner, f)
        }
        Statement::ExecutePrepared { args, .. } => args.iter_mut().for_each(|e| rewrite_expr(e, f)),
        Statement::CreateTable { .. }
        | Statement::DropTable { .. }
        | Statement::CreateIndex { .. }
        | Statement::DropIndex { .. }
        | Statement::Begin
        | Statement::Commit
        | Statement::Rollback
        | Statement::AlterSession { .. }
        | Statement::Deallocate { .. }
        | Statement::Analyze { .. } => {}
    }
}

fn rewrite_select(sel: &mut Select, f: &mut impl FnMut(usize) -> Option<Expr>) {
    for item in &mut sel.projection {
        if let SelectItem::Expr { expr, .. } = item {
            rewrite_expr(expr, f);
        }
    }
    for from in &mut sel.from {
        if let FromItem::TableFunction { args, .. } = from {
            for arg in args {
                match arg {
                    TfArgAst::Expr(e) => rewrite_expr(e, f),
                    TfArgAst::Cursor(sub) => rewrite_select(sub, f),
                }
            }
        }
    }
    sel.where_clause.iter_mut().for_each(|p| rewrite_pred(p, f));
    sel.order_by.iter_mut().for_each(|k| rewrite_expr(&mut k.expr, f));
}

fn rewrite_pred(pred: &mut Predicate, f: &mut impl FnMut(usize) -> Option<Expr>) {
    match pred {
        Predicate::Compare { left, right, .. } => {
            rewrite_expr(left, f);
            rewrite_expr(right, f);
        }
        Predicate::RowidPairIn { subquery, .. } => rewrite_select(subquery, f),
    }
}

fn rewrite_expr(expr: &mut Expr, f: &mut impl FnMut(usize) -> Option<Expr>) {
    match expr {
        Expr::Param(ordinal) => {
            if let Some(replacement) = f(*ordinal) {
                *expr = replacement;
            }
        }
        Expr::FnCall { args, .. } => args.iter_mut().for_each(|e| rewrite_expr(e, f)),
        Expr::Literal(_) | Expr::Column(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;

    #[test]
    fn counts_and_binds_across_statement_shapes() {
        let stmt = parse(
            "SELECT * FROM t WHERE id = ? AND SDO_WITHIN_DISTANCE(t.geom, SDO_GEOMETRY(?), ?) \
             = 'TRUE' ORDER BY id LIMIT 5",
        )
        .unwrap();
        assert_eq!(param_count(&stmt), 3);
        let bound = bind_statement(
            &stmt,
            &[Value::Integer(7), Value::text("POINT (1 2)"), Value::Double(0.5)],
        )
        .unwrap();
        assert_eq!(param_count(&bound), 0);
    }

    #[test]
    fn binds_inside_cursor_subqueries_and_semijoins() {
        let stmt = parse(
            "SELECT COUNT(*) FROM a, b WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('a', 'g', 'b', 'g', 'FILTER', ?, -1)))",
        )
        .unwrap();
        assert_eq!(param_count(&stmt), 1);
        let bound = bind_statement(&stmt, &[Value::Integer(4)]).unwrap();
        assert_eq!(param_count(&bound), 0);
    }

    #[test]
    fn missing_value_is_an_error() {
        let stmt = parse("INSERT INTO t VALUES (?, ?)").unwrap();
        assert_eq!(param_count(&stmt), 2);
        let err = bind_statement(&stmt, &[Value::Integer(1)]).unwrap_err();
        assert!(err.to_string().contains("?2"), "{err}");
    }
}
