//! SQL tokenizer.

use crate::error::DbError;

/// A lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is, with its payload.
    pub kind: TokenKind,
    /// Byte offset in the source string.
    pub offset: usize,
}

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier/keyword, uppercased.
    Ident(String),
    /// Integer literal.
    Integer(i64),
    /// Floating point literal.
    Float(f64),
    /// Single-quoted string, with `''` unescaped.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
    /// `?` — positional bind-parameter placeholder.
    Question,
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, DbError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let offset = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
                continue;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, offset });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, offset });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, offset });
                i += 1;
            }
            '.' if !matches!(bytes.get(i + 1), Some(b) if b.is_ascii_digit()) => {
                out.push(Token { kind: TokenKind::Dot, offset });
                i += 1;
            }
            '*' => {
                out.push(Token { kind: TokenKind::Star, offset });
                i += 1;
            }
            ';' => {
                out.push(Token { kind: TokenKind::Semicolon, offset });
                i += 1;
            }
            '?' => {
                out.push(Token { kind: TokenKind::Question, offset });
                i += 1;
            }
            '=' => {
                out.push(Token { kind: TokenKind::Eq, offset });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token { kind: TokenKind::Ne, offset });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::Le, offset });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token { kind: TokenKind::Ne, offset });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Lt, offset });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::Ge, offset });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Gt, offset });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => {
                            return Err(DbError::Parse {
                                offset,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                out.push(Token { kind: TokenKind::Str(s), offset });
            }
            c if c.is_ascii_digit()
                || (c == '-' && matches!(bytes.get(i + 1), Some(b) if b.is_ascii_digit()))
                || (c == '.' && matches!(bytes.get(i + 1), Some(b) if b.is_ascii_digit())) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                let mut is_float = false;
                while i < bytes.len() {
                    let b = bytes[i];
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == b'.' && !is_float {
                        is_float = true;
                        i += 1;
                    } else if (b == b'e' || b == b'E')
                        && matches!(bytes.get(i + 1), Some(n) if n.is_ascii_digit() || *n == b'-' || *n == b'+')
                    {
                        is_float = true;
                        i += 2;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| DbError::Parse {
                        offset,
                        message: format!("bad number '{text}'"),
                    })?)
                } else {
                    TokenKind::Integer(text.parse().map_err(|_| DbError::Parse {
                        offset,
                        message: format!("bad number '{text}'"),
                    })?)
                };
                out.push(Token { kind, offset });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // quoted identifier: preserve case
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j] != b'"' {
                        j += 1;
                    }
                    if j == bytes.len() {
                        return Err(DbError::Parse {
                            offset,
                            message: "unterminated quoted identifier".into(),
                        });
                    }
                    out.push(Token { kind: TokenKind::Ident(input[start..j].to_string()), offset });
                    i = j + 1;
                } else {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric()
                            || bytes[i] == b'_'
                            || bytes[i] == b'$')
                    {
                        i += 1;
                    }
                    out.push(Token {
                        kind: TokenKind::Ident(input[start..i].to_ascii_uppercase()),
                        offset,
                    });
                }
            }
            other => {
                return Err(DbError::Parse {
                    offset,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, offset: input.len() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("SELECT * FROM t WHERE a.x >= 1.5;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("T".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("A".into()),
                TokenKind::Dot,
                TokenKind::Ident("X".into()),
                TokenKind::Ge,
                TokenKind::Float(1.5),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into()), TokenKind::Eof]);
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Integer(42), TokenKind::Eof]);
        assert_eq!(kinds("-7"), vec![TokenKind::Integer(-7), TokenKind::Eof]);
        assert_eq!(kinds("2.5e2"), vec![TokenKind::Float(250.0), TokenKind::Eof]);
        assert_eq!(kinds(".5"), vec![TokenKind::Float(0.5), TokenKind::Eof]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT -- comment\n1"),
            vec![TokenKind::Ident("SELECT".into()), TokenKind::Integer(1), TokenKind::Eof]
        );
    }

    #[test]
    fn identifiers_uppercased_quoted_preserved() {
        assert_eq!(
            kinds("abc \"MixedCase\""),
            vec![
                TokenKind::Ident("ABC".into()),
                TokenKind::Ident("MixedCase".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= != <>"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Eof
            ]
        );
    }
}
