//! Abstract syntax for the mini SQL dialect.

use sdo_storage::{DataType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// `(column name, type)` pairs in declaration order.
        columns: Vec<(String, DataType)>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// Single-row `INSERT INTO t VALUES (...)`.
    Insert {
        /// Target table.
        table: String,
        /// One expression per column, in schema order.
        values: Vec<Expr>,
    },
    /// `DELETE FROM t WHERE <conjuncts>` (predicates optional).
    Delete {
        /// Target table.
        table: String,
        /// AND-ed row filter; empty deletes every row.
        where_clause: Vec<Predicate>,
    },
    /// `UPDATE t SET col = expr [, ...] WHERE <conjuncts>`.
    Update {
        /// Target table.
        table: String,
        /// `(column, new value expression)` pairs.
        assignments: Vec<(String, Expr)>,
        /// AND-ed row filter; empty updates every row.
        where_clause: Vec<Predicate>,
    },
    /// `CREATE INDEX name ON t(col) INDEXTYPE IS type
    ///  [PARAMETERS('...')] [PARALLEL n]`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
        /// Registered indextype name (e.g. `SPATIAL_INDEX`).
        indextype: String,
        /// Raw `PARAMETERS` string (empty when omitted).
        parameters: String,
        /// Requested creation degree of parallelism (1 when omitted).
        parallel: usize,
    },
    /// `DROP INDEX name`.
    DropIndex {
        /// Index name.
        name: String,
    },
    /// A `SELECT` query.
    Select(Select),
    /// `EXPLAIN SELECT ...` — describe the chosen strategy instead of
    /// executing the query.
    Explain(Select),
    /// `EXPLAIN ANALYZE <statement>` — execute the statement with a
    /// profile session attached and return the per-operator profile
    /// tree (rows, batches, wall time, work-counter deltas) instead of
    /// the statement's own result.
    ExplainAnalyze(Box<Statement>),
    /// `BEGIN [TRANSACTION | WORK]` — open an explicit transaction on
    /// the session. DML until `COMMIT`/`ROLLBACK` shares one snapshot
    /// and becomes visible atomically.
    Begin,
    /// `COMMIT [WORK]` — durably commit the session's open transaction.
    Commit,
    /// `ROLLBACK [WORK]` — abort the session's open transaction.
    Rollback,
    /// `ALTER SESSION SET name = value` — set a session option
    /// (`materialize`, `max_resident_rows`, `durability`).
    AlterSession {
        /// Option name (case-insensitive).
        name: String,
        /// Raw option value (identifier, number, or string literal).
        value: String,
    },
    /// `PREPARE name AS <statement>` — parse once, cache under `name`
    /// on the session. The statement may contain `?` placeholders,
    /// bound positionally at `EXECUTE` time.
    Prepare {
        /// Statement name (case-insensitive, session-scoped).
        name: String,
        /// The prepared statement body.
        stmt: Box<Statement>,
    },
    /// `EXECUTE name [(expr, ...)]` — run a prepared statement with
    /// the given bind-parameter values.
    ExecutePrepared {
        /// Prepared-statement name.
        name: String,
        /// Constant bind values, one per `?` placeholder.
        args: Vec<Expr>,
    },
    /// `DEALLOCATE [PREPARE] name` — drop a prepared statement.
    Deallocate {
        /// Prepared-statement name.
        name: String,
    },
    /// `ANALYZE [TABLE] name` — sample the table, build per-column
    /// NDV/min-max statistics plus spatial histograms, and persist
    /// them (WAL + snapshot) for the cost-based planner.
    Analyze {
        /// Table to analyze.
        table: String,
    },
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// The select list.
    pub projection: Vec<SelectItem>,
    /// FROM items, in order (tables and `TABLE(...)` scans).
    pub from: Vec<FromItem>,
    /// AND-ed conjuncts.
    pub where_clause: Vec<Predicate>,
    /// `ORDER BY expr [DESC]` keys, applied before projection.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT n`.
    pub limit: Option<usize>,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Key expression, evaluated per joined row.
    pub expr: Expr,
    /// `DESC` when true; `ASC` otherwise.
    pub descending: bool,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `COUNT(*)`
    CountStar,
    /// An expression with an optional alias.
    Expr {
        /// Projected expression.
        expr: Expr,
        /// Output column alias, when given.
        alias: Option<String>,
    },
}

/// One item of a FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// A base table, optionally aliased.
    Table {
        /// Table name.
        name: String,
        /// Binding alias, when given.
        alias: Option<String>,
    },
    /// `TABLE(f(arg, ..., CURSOR(SELECT ...)))`
    TableFunction {
        /// Registered table-function name.
        name: String,
        /// Scalar and cursor arguments, in order.
        args: Vec<TfArgAst>,
        /// Binding alias, when given.
        alias: Option<String>,
    },
}

impl FromItem {
    /// The name this item binds in the query's scope.
    pub fn binding(&self) -> &str {
        match self {
            FromItem::Table { name, alias } => alias.as_deref().unwrap_or(name),
            FromItem::TableFunction { name, alias, .. } => alias.as_deref().unwrap_or(name),
        }
    }
}

/// A table-function argument: scalar expression or nested cursor.
#[derive(Debug, Clone, PartialEq)]
pub enum TfArgAst {
    /// A scalar argument expression.
    Expr(Expr),
    /// A `CURSOR(SELECT ...)` argument, materialized before the call.
    Cursor(Select),
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant value.
    Literal(Value),
    /// A (possibly qualified) column reference.
    Column(ColumnRef),
    /// Function call, e.g. `SDO_GEOMETRY('POINT (1 2)')` or a spatial
    /// operator like `SDO_RELATE(a.geom, b.geom, 'mask=ANYINTERACT')`.
    FnCall {
        /// Function name, uppercased by the lexer.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A `?` bind-parameter placeholder, numbered left to right from
    /// zero. Only valid inside a prepared statement; executing a
    /// statement with unbound parameters is a plan error.
    Param(usize),
}

/// `qualifier.column` or bare `column`; `column` may be the pseudo
/// column `ROWID`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Binding qualifier (`a` in `a.geom`), when given.
    pub qualifier: Option<String>,
    /// Column name (or the pseudo column `ROWID`).
    pub column: String,
}

impl ColumnRef {
    /// Build a reference from an optional qualifier and a column name.
    pub fn new(qualifier: Option<&str>, column: &str) -> Self {
        ColumnRef { qualifier: qualifier.map(|s| s.to_string()), column: column.to_string() }
    }

    /// True when this references the `ROWID` pseudo column.
    pub fn is_rowid(&self) -> bool {
        self.column.eq_ignore_ascii_case("ROWID")
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are their own documentation
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply the operator to a comparison result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// One conjunct of a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `left <op> right`.
    Compare {
        /// Left operand.
        left: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Expr,
    },
    /// `(a.ROWID, b.ROWID) IN (SELECT ... FROM TABLE(...))` — the
    /// rowid-pair semijoin the paper uses to connect a spatial-join
    /// table function back to the base tables.
    RowidPairIn {
        /// Rowid reference into the first table.
        left: ColumnRef,
        /// Rowid reference into the second table.
        right: ColumnRef,
        /// The pair-producing subquery (typically a `TABLE(...)` scan).
        subquery: Select,
    },
}
