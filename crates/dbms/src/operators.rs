//! Pull-based batch operators for the streaming SELECT executor.
//!
//! The paper's pipelining contract (§2: start / iterative fetch /
//! close) ends at the table-function boundary unless the SQL layer
//! above it also streams. This module provides that layer: a tree of
//! operators that exchange batches of joined rows ([`BATCH_ROWS`] rows
//! per batch) and pull from each other on demand, so a
//! `TABLE(SPATIAL_JOIN(...))` semijoin never materializes its result
//! and a satisfied `LIMIT` propagates `close()` down the tree, stopping
//! the R-tree traversal mid-join.
//!
//! Operators:
//!
//! * [`TableScanExec`] — snapshot cursor over a base table (per-batch
//!   locking, high-water-mark bound at open),
//! * [`TableFunctionScanExec`] — wraps an open pipelined table function
//!   and forwards its `fetch(max_rows)` batches directly,
//! * [`FilterExec`] — per-batch predicate evaluation with the
//!   index-assisted fast paths (window prefilter, SDO_NN ranking) as
//!   open-time rewrites,
//! * [`RowidSemiJoinExec`] — streams rowid pairs from a subquery and
//!   fetches the paired base rows batch-by-batch,
//! * [`NestedLoopJoinExec`] — streamed outer side, index-probed (or
//!   batched build) inner side,
//! * [`CrossJoinExec`] — streamed first relation, materialized rest,
//! * [`SortExec`] — blocking sort (ORDER BY),
//! * [`LimitExec`] — early termination with close propagation.
//!
//! Every operator owns a [`ProfileNode`] when profiling is active and a
//! share of the statement's [`MemoryGauge`]; buffered rows are charged
//! through [`Resident`] so `EXPLAIN ANALYZE` can report
//! `peak_resident_rows` and the `max_resident_rows` session option has
//! a single enforcement point that names the offending operator.

use crate::db::{Database, IndexHandle, QueryResult, TfArg};
use crate::error::DbError;
use crate::exec::{
    classify_spatial, eval_predicate, eval_spatial_fn, project_row, projection_columns,
    resolve_column_meta, run_subselect, RelMeta, RelRow, SpatialOperand, SpatialPred,
};
use crate::extensible::OperatorCall;
use crate::sql::ast::{FromItem, OrderKey, Predicate, Select, SelectItem, TfArgAst};
use parking_lot::RwLock;
use sdo_obs::{MemoryGauge, ProfileNode};
use sdo_storage::{RowId, Snapshot, Table, Value};
use sdo_tablefunc::source::TableCursor;
use sdo_tablefunc::{Row, RowSource, TableFunction};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Target rows per batch through the operator tree. Large enough to
/// amortize per-batch locking and virtual dispatch, small enough that
/// pipeline memory stays O(batch × depth).
pub(crate) const BATCH_ROWS: usize = 1024;

/// Per-statement execution context: the database handle plus the
/// shared resident-row gauge and its session-configured budget.
pub(crate) struct ExecCtx<'a> {
    /// Session database.
    pub db: &'a Database,
    /// Shared resident-row gauge; its peak becomes the statement's
    /// `peak_resident_rows` metric.
    pub gauge: MemoryGauge,
    /// Resident-row budget from `ALTER SESSION SET max_resident_rows`.
    pub max_resident_rows: u64,
    /// Route SELECTs through the legacy materializing executor.
    pub materialize: bool,
    /// Intra-query parallelism ceiling from `ALTER SESSION SET
    /// parallel_dop`; read at execution time, so prepared statements
    /// re-resolve it on every EXECUTE.
    pub parallel_dop: usize,
    /// MVCC read view pinned at statement start: the session
    /// transaction's snapshot when one is open, else latest-committed.
    pub snap: Snapshot,
}

impl<'a> ExecCtx<'a> {
    pub(crate) fn new(db: &'a Database, sess: &'a crate::session::SessionState) -> Self {
        let opts = sess.options.read().clone();
        ExecCtx {
            db,
            gauge: MemoryGauge::new(),
            max_resident_rows: opts.max_resident_rows,
            materialize: opts.materialize,
            parallel_dop: opts.parallel_dop,
            snap: db.read_snapshot_in(sess),
        }
    }

    /// A resident-row account for one operator, enforcing the budget.
    pub(crate) fn resident(&self, operator: impl Into<String>) -> Resident {
        Resident {
            gauge: self.gauge.clone(),
            limit: self.max_resident_rows,
            operator: operator.into(),
            held: 0,
        }
    }
}

/// RAII account of rows an operator holds resident. Charges go to the
/// statement's shared [`MemoryGauge`]; exceeding the session budget
/// fails the query with the operator's name. Dropping releases the
/// balance, so an abandoned pipeline cannot leak charge.
pub(crate) struct Resident {
    gauge: MemoryGauge,
    limit: u64,
    operator: String,
    held: u64,
}

impl Resident {
    /// Charge `n` more rows.
    pub(crate) fn add(&mut self, n: u64) -> Result<(), DbError> {
        self.held += n;
        let now = self.gauge.add(n);
        if now > self.limit {
            return Err(DbError::Plan(format!(
                "resident rows ({now}) exceed MAX_RESIDENT_ROWS ({}) in operator {}; \
                 raise it with ALTER SESSION SET max_resident_rows = <n>",
                self.limit, self.operator
            )));
        }
        Ok(())
    }

    /// Adjust the balance to exactly `n` rows.
    pub(crate) fn set(&mut self, n: u64) -> Result<(), DbError> {
        if n >= self.held {
            let delta = n - self.held;
            self.held = n - delta; // keep held consistent if add errors
            self.add(delta)
        } else {
            self.gauge.sub(self.held - n);
            self.held = n;
            Ok(())
        }
    }
}

impl Drop for Resident {
    fn drop(&mut self) {
        self.gauge.sub(self.held);
    }
}

/// A batch of joined rows: each row has one [`RelRow`] slot per FROM
/// item (unfilled slots hold empty values).
pub(crate) type JoinedBatch = Vec<Vec<RelRow>>;

/// A pull-based operator. `next_batch` returns up to [`BATCH_ROWS`]
/// joined rows; an empty batch signals exhaustion. `close` releases
/// resources (propagating to children) and must be idempotent — it is
/// also called early, e.g. by a satisfied [`LimitExec`].
pub(crate) trait BatchOp {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError>;
    fn close(&mut self);
}

pub(crate) fn empty_joined(width: usize) -> Vec<RelRow> {
    vec![RelRow { rid: None, values: Vec::new() }; width]
}

/// Record one produced batch on an operator's profile node.
pub(crate) fn note_batch(node: &Option<ProfileNode>, rows: usize, t0: Option<Instant>) {
    if let Some(n) = node {
        n.add_batches(1);
        n.add_rows(rows as u64);
        if let Some(t0) = t0 {
            n.add_wall(t0.elapsed());
        }
    }
}

// ---------------------------------------------------------------------------
// Leaf scans
// ---------------------------------------------------------------------------

/// Snapshot cursor scan over a base table. Slot bounds are fixed at
/// open (high-water mark), the table lock is taken per batch.
pub(crate) struct TableScanExec<'a> {
    db: &'a Database,
    cursor: TableCursor,
    slot: usize,
    width: usize,
    node: Option<ProfileNode>,
}

impl<'a> TableScanExec<'a> {
    pub(crate) fn new(
        ctx: &ExecCtx<'a>,
        table: Arc<RwLock<Table>>,
        name: &str,
        slot: usize,
        width: usize,
        parent: Option<&ProfileNode>,
    ) -> Self {
        let node = parent.map(|p| p.child(format!("TABLE SCAN {}", name.to_ascii_uppercase())));
        TableScanExec {
            db: ctx.db,
            cursor: TableCursor::full(table).at_snapshot(ctx.snap),
            slot,
            width,
            node,
        }
    }
}

impl BatchOp for TableScanExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        let t0 = self.node.as_ref().map(|_| Instant::now());
        let before = self.node.as_ref().map(|_| self.db.counters().snapshot());
        let rows = self.cursor.next_batch(BATCH_ROWS);
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            // TableCursor prepends the rowid.
            let mut it = row.into_iter();
            let rid = it.next().and_then(|v| v.as_rowid());
            let mut jr = empty_joined(self.width);
            jr[self.slot] = RelRow { rid, values: it.collect() };
            out.push(jr);
        }
        note_batch(&self.node, out.len(), t0);
        if let (Some(n), Some(b)) = (&self.node, &before) {
            n.add_metric_deltas(&self.db.counters().diff(b).pairs());
        }
        Ok(out)
    }

    fn close(&mut self) {}
}

enum TfState {
    Fresh,
    Running,
    Closed,
}

/// Wraps an open pipelined table function, forwarding its
/// `fetch(max_rows)` batches with no intermediate collection — the
/// direct streaming path the paper's interface was designed for.
pub(crate) struct TableFunctionScanExec<'a> {
    db: &'a Database,
    func: Box<dyn TableFunction>,
    state: TfState,
    slot: usize,
    width: usize,
    node: Option<ProfileNode>,
    resident: Resident,
}

impl<'a> TableFunctionScanExec<'a> {
    pub(crate) fn new(
        ctx: &ExecCtx<'a>,
        mut func: Box<dyn TableFunction>,
        name: &str,
        slot: usize,
        width: usize,
        parent: Option<&ProfileNode>,
    ) -> Self {
        let node =
            parent.map(|p| p.child(format!("TABLE FUNCTION SCAN {}", name.to_ascii_uppercase())));
        if let Some(n) = &node {
            func.attach_profile(n);
        }
        let resident = ctx.resident(format!("TABLE FUNCTION SCAN {name}"));
        TableFunctionScanExec {
            db: ctx.db,
            func,
            state: TfState::Fresh,
            slot,
            width,
            node,
            resident,
        }
    }
}

impl BatchOp for TableFunctionScanExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        if matches!(self.state, TfState::Closed) {
            return Ok(Vec::new());
        }
        let t0 = self.node.as_ref().map(|_| Instant::now());
        let before = self.node.as_ref().map(|_| self.db.counters().snapshot());
        if matches!(self.state, TfState::Fresh) {
            self.state = TfState::Running;
            if let Err(e) = self.func.start() {
                // Release anything start() acquired before failing (a
                // parallel executor may have launched slaves already).
                self.close();
                return Err(e.into());
            }
        }
        let rows = match self.func.fetch(BATCH_ROWS) {
            Ok(b) => b,
            Err(e) => {
                self.close();
                return Err(e.into());
            }
        };
        if rows.is_empty() {
            self.close();
            return Ok(Vec::new());
        }
        // The batch in flight is the scan's only resident state.
        self.resident.set(rows.len() as u64)?;
        let mut out = Vec::with_capacity(rows.len());
        for values in rows {
            let mut jr = empty_joined(self.width);
            jr[self.slot] = RelRow { rid: None, values };
            out.push(jr);
        }
        note_batch(&self.node, out.len(), t0);
        if let (Some(n), Some(b)) = (&self.node, &before) {
            n.add_metric_deltas(&self.db.counters().diff(b).pairs());
        }
        Ok(out)
    }

    fn close(&mut self) {
        if !matches!(self.state, TfState::Closed) {
            self.func.close();
            self.state = TfState::Closed;
            let _ = self.resident.set(0);
        }
    }
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

pub(crate) enum Prefilter {
    /// Evaluate the predicate functionally per row.
    Functional,
    /// Keep rows of relation `rel` whose rowid is in the set (computed
    /// once at open from a domain-index evaluation or SDO_NN ranking).
    RowidSet { rel: usize, keep: HashSet<RowId> },
}

/// A database-free predicate evaluator: the classified spatial
/// predicates, residual conjuncts, and prebuilt index prefilters,
/// packaged so exchange workers on pool threads (which cannot borrow
/// `&Database`) evaluate rows exactly like the serial [`FilterExec`].
/// Built once per statement (index probes need the database), then
/// shared via `Arc` across workers.
pub(crate) struct FilterEval {
    metas: Arc<Vec<RelMeta>>,
    spatial: Vec<SpatialPred>,
    residual: Vec<Predicate>,
    prefilters: Vec<Prefilter>,
}

impl FilterEval {
    /// Build the evaluator, resolving index prefilters now.
    pub(crate) fn build(
        db: &Database,
        metas: Arc<Vec<RelMeta>>,
        spatial: Vec<SpatialPred>,
        residual: Vec<Predicate>,
        index_hints: Option<&[bool]>,
        snap: Snapshot,
    ) -> Result<Self, DbError> {
        let prefilters = build_prefilters(db, &metas, &spatial, index_hints, snap)?;
        Ok(FilterEval { metas, spatial, residual, prefilters })
    }

    /// True when there is nothing to evaluate (rows always pass).
    pub(crate) fn is_empty(&self) -> bool {
        self.spatial.is_empty() && self.residual.is_empty()
    }

    /// Does one joined row satisfy every conjunct?
    pub(crate) fn row_passes(&self, jr: &[RelRow]) -> Result<bool, DbError> {
        for (p, f) in self.spatial.iter().zip(&self.prefilters) {
            let pass = match f {
                Prefilter::RowidSet { rel, keep } => {
                    jr[*rel].rid.map(|r| keep.contains(&r)).unwrap_or(false)
                }
                Prefilter::Functional => match &p.other {
                    SpatialOperand::Column(ir, ic) => {
                        let (or, oc) = p.target;
                        match (jr[or].values.get(oc), jr[*ir].values.get(*ic)) {
                            (Some(a), Some(b)) => match (a.as_geometry(), b.as_geometry()) {
                                (Some(ga), Some(gb)) => {
                                    eval_spatial_fn(&p.name, ga, gb, &p.extra).unwrap_or(false)
                                }
                                _ => false,
                            },
                            _ => false,
                        }
                    }
                    SpatialOperand::Const(qg) => {
                        let (ri, ci) = p.target;
                        jr[ri].values.get(ci).and_then(|v| v.as_geometry()).is_some_and(|g| {
                            eval_spatial_fn(&p.name, g, qg, &p.extra).unwrap_or(false)
                        })
                    }
                },
            };
            if !pass {
                return Ok(false);
            }
        }
        for r in &self.residual {
            if !eval_predicate(&self.metas, jr, r)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Resolve each spatial predicate to its open-time fast path: a rowid
/// keep-set from a domain-index evaluation (or functional SDO_NN
/// ranking), else per-row functional evaluation.
fn build_prefilters(
    db: &Database,
    metas: &[RelMeta],
    spatial: &[SpatialPred],
    index_hints: Option<&[bool]>,
    snap: Snapshot,
) -> Result<Vec<Prefilter>, DbError> {
    let mut out = Vec::with_capacity(spatial.len());
    for (pi, p) in spatial.iter().enumerate() {
        let SpatialOperand::Const(qg) = &p.other else {
            out.push(Prefilter::Functional);
            continue;
        };
        let (ri, ci) = p.target;
        let m = &metas[ri];
        let allow_index = index_hints.and_then(|h| h.get(pi)).copied().unwrap_or(true);
        let index = m
            .table_name
            .as_deref()
            .and_then(|t| db.index_on(t, &m.columns[ci]))
            // SDO_NN must keep its index path regardless of the
            // window-cost hint: the functional fallback below is a
            // full ranking, never cheaper than the index.
            .filter(|_| allow_index || p.name.eq_ignore_ascii_case("SDO_NN"));
        if let Some((_, inst)) = index {
            let mut args = vec![Value::Geometry(Arc::clone(qg))];
            args.extend(p.extra.iter().cloned());
            let call = OperatorCall { name: p.name.clone(), args, snap };
            let keep: HashSet<RowId> = inst.read().evaluate(&call)?.into_iter().collect();
            out.push(Prefilter::RowidSet { rel: ri, keep });
        } else if p.name.eq_ignore_ascii_case("SDO_NN") {
            // Functional k-NN without an index: rank the relation's
            // rows by exact distance and keep the top k.
            let table = m.table.clone().ok_or_else(|| {
                DbError::Plan("SDO_NN needs a base table or a domain index".into())
            })?;
            let k = p
                .extra
                .first()
                .and_then(|v| v.as_integer())
                .filter(|&k| k >= 1)
                .ok_or_else(|| DbError::Plan("SDO_NN needs a result count".into()))?
                as usize;
            let mut ranked: Vec<(f64, RowId)> = Vec::new();
            let mut cursor = TableCursor::full(table).at_snapshot(snap);
            loop {
                let rows = cursor.next_batch(BATCH_ROWS);
                if rows.is_empty() {
                    break;
                }
                for row in rows {
                    let Some(rid) = row[0].as_rowid() else { continue };
                    if let Some(g) = row.get(ci + 1).and_then(|v| v.as_geometry()) {
                        ranked.push((sdo_geom::distance(g, qg), rid));
                    }
                }
            }
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let keep: HashSet<RowId> = ranked.into_iter().take(k).map(|(_, r)| r).collect();
            out.push(Prefilter::RowidSet { rel: ri, keep });
        } else {
            out.push(Prefilter::Functional);
        }
    }
    Ok(out)
}

/// Incremental nearest-neighbor scan: the planner's rewrite of
/// `ORDER BY SDO_DISTANCE(col, const) LIMIT k` over an R-tree-indexed
/// table. Asks the domain index for the k nearest rowids in
/// `(distance, rowid)` order — exactly the order a stable full sort
/// over a rowid-ordered scan produces — and fetches just those rows,
/// so only k rows are ever resident instead of the whole table.
pub(crate) struct KnnScanExec<'a> {
    db: &'a Database,
    table: Arc<RwLock<Table>>,
    index: IndexHandle,
    query: Arc<sdo_geom::Geometry>,
    k: usize,
    col: usize,
    slot: usize,
    width: usize,
    results: Option<VecDeque<(f64, RowId)>>,
    node: Option<ProfileNode>,
    resident: Resident,
    snap: Snapshot,
}

impl<'a> KnnScanExec<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ctx: &ExecCtx<'a>,
        table: Arc<RwLock<Table>>,
        index: IndexHandle,
        query: Arc<sdo_geom::Geometry>,
        k: usize,
        col: usize,
        slot: usize,
        width: usize,
        node: Option<ProfileNode>,
    ) -> Self {
        let resident = ctx.resident("KNN SCAN");
        KnnScanExec {
            db: ctx.db,
            table,
            index,
            query,
            k,
            col,
            slot,
            width,
            results: None,
            node,
            resident,
            snap: ctx.snap,
        }
    }

    fn ensure_ranked(&mut self) -> Result<(), DbError> {
        if self.results.is_some() {
            return Ok(());
        }
        let ranked = match self.index.read().nearest(&self.query, self.k, &self.snap)? {
            Some(v) => {
                if let Some(n) = &self.node {
                    n.set_attr("knn_path", "index best-first");
                }
                v
            }
            None => {
                // The index declared no kNN capability after all (the
                // planner checks the index kind, but custom indextypes
                // may not implement `nearest`): rank functionally, same
                // (distance, rowid) order.
                if let Some(n) = &self.node {
                    n.set_attr("knn_path", "functional ranking fallback");
                }
                let mut ranked: Vec<(f64, RowId)> = Vec::new();
                let mut cursor = TableCursor::full(Arc::clone(&self.table)).at_snapshot(self.snap);
                loop {
                    let rows = cursor.next_batch(BATCH_ROWS);
                    if rows.is_empty() {
                        break;
                    }
                    for row in rows {
                        let Some(rid) = row[0].as_rowid() else { continue };
                        if let Some(g) = row.get(self.col + 1).and_then(|v| v.as_geometry()) {
                            ranked.push((sdo_geom::distance(g, &self.query), rid));
                        }
                    }
                }
                ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                ranked.truncate(self.k);
                ranked
            }
        };
        self.resident.add(ranked.len() as u64)?;
        self.results = Some(ranked.into_iter().collect());
        Ok(())
    }
}

impl BatchOp for KnnScanExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        let t0 = self.node.as_ref().map(|_| Instant::now());
        let before = self.node.as_ref().map(|_| self.db.counters().snapshot());
        self.ensure_ranked()?;
        let buf = self.results.as_mut().expect("ranked");
        let mut out = Vec::new();
        while out.len() < BATCH_ROWS {
            let Some((_, rid)) = buf.pop_front() else { break };
            // `nearest` already ranked under this snapshot; the fetch
            // re-check only guards a concurrent vacuum.
            let vals = match self.table.read().get_at(rid, &self.snap) {
                Ok(v) => v,
                Err(_) => continue,
            };
            let mut jr = empty_joined(self.width);
            jr[self.slot] = RelRow { rid: Some(rid), values: vals.to_vec() };
            out.push(jr);
        }
        self.resident.set(buf.len() as u64)?;
        if !out.is_empty() {
            note_batch(&self.node, out.len(), t0);
        }
        if let (Some(n), Some(b)) = (&self.node, &before) {
            n.add_metric_deltas(&self.db.counters().diff(b).pairs());
        }
        Ok(out)
    }

    fn close(&mut self) {
        self.results = None;
        let _ = self.resident.set(0);
    }
}

/// The deferred filter-construction bundle shared by [`FilterExec`]
/// and the parallel exchanges: relation metadata, spatial and
/// residual predicates, and the planner's per-predicate index hints.
pub(crate) type FilterInputs =
    (Arc<Vec<RelMeta>>, Vec<SpatialPred>, Vec<Predicate>, Option<Vec<bool>>);

/// Per-batch predicate evaluation. Index-assisted paths (window-query
/// prefilter, SDO_NN top-k ranking) run once at open as a
/// `FilterExec`-level rewrite into rowid keep-sets; everything else
/// evaluates functionally per row.
pub(crate) struct FilterExec<'a> {
    db: &'a Database,
    child: Box<dyn BatchOp + 'a>,
    /// Filter inputs, consumed when the evaluator is built at first
    /// `next_batch` (index prefilters probe the domain index then).
    inputs: Option<FilterInputs>,
    eval: Option<FilterEval>,
    node: Option<ProfileNode>,
    snap: Snapshot,
}

impl<'a> FilterExec<'a> {
    pub(crate) fn new(
        child: Box<dyn BatchOp + 'a>,
        ctx: &ExecCtx<'a>,
        metas: Arc<Vec<RelMeta>>,
        spatial: Vec<SpatialPred>,
        residual: Vec<Predicate>,
        index_hints: Option<Vec<bool>>,
        node: Option<ProfileNode>,
    ) -> Self {
        FilterExec {
            db: ctx.db,
            child,
            inputs: Some((metas, spatial, residual, index_hints)),
            eval: None,
            node,
            snap: ctx.snap,
        }
    }
}

impl BatchOp for FilterExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        if let Some((metas, spatial, residual, hints)) = self.inputs.take() {
            let t0 = self.node.as_ref().map(|_| Instant::now());
            let before = self.node.as_ref().map(|_| self.db.counters().snapshot());
            self.eval = Some(FilterEval::build(
                self.db,
                metas,
                spatial,
                residual,
                hints.as_deref(),
                self.snap,
            )?);
            if let (Some(n), Some(b)) = (&self.node, &before) {
                n.add_metric_deltas(&self.db.counters().diff(b).pairs());
                if let Some(t0) = t0 {
                    n.add_wall(t0.elapsed());
                }
            }
        }
        let eval = self.eval.as_ref().expect("filter evaluator built");
        loop {
            let batch = self.child.next_batch()?;
            if batch.is_empty() {
                return Ok(Vec::new());
            }
            let t0 = self.node.as_ref().map(|_| Instant::now());
            let before = self.node.as_ref().map(|_| self.db.counters().snapshot());
            let mut out = Vec::with_capacity(batch.len());
            for jr in batch {
                if eval.row_passes(&jr)? {
                    out.push(jr);
                }
            }
            note_batch(&self.node, out.len(), t0);
            if let (Some(n), Some(b)) = (&self.node, &before) {
                n.add_metric_deltas(&self.db.counters().diff(b).pairs());
            }
            if !out.is_empty() {
                return Ok(out);
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// The paper's table-function join, streaming: pulls rowid pairs from
/// the subquery pipeline (typically a `TABLE(SPATIAL_JOIN(...))` scan)
/// batch-by-batch and fetches the paired base rows as they arrive, so
/// the pair stream is never materialized.
pub(crate) struct RowidSemiJoinExec<'a> {
    db: &'a Database,
    sub: SelectStream<'a>,
    l_rel: usize,
    r_rel: usize,
    lt: Arc<RwLock<Table>>,
    rt: Arc<RwLock<Table>>,
    seen: HashSet<(RowId, RowId)>,
    width: usize,
    node: Option<ProfileNode>,
    resident: Resident,
    snap: Snapshot,
}

impl<'a> RowidSemiJoinExec<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ctx: &ExecCtx<'a>,
        sub: SelectStream<'a>,
        l_rel: usize,
        r_rel: usize,
        lt: Arc<RwLock<Table>>,
        rt: Arc<RwLock<Table>>,
        width: usize,
        node: Option<ProfileNode>,
    ) -> Result<Self, DbError> {
        if sub.columns.len() < 2 {
            return Err(DbError::Plan("rowid-pair subquery must project two rowid columns".into()));
        }
        let resident = ctx.resident("ROWID-PAIR SEMIJOIN");
        Ok(RowidSemiJoinExec {
            db: ctx.db,
            sub,
            l_rel,
            r_rel,
            lt,
            rt,
            seen: HashSet::new(),
            width,
            node,
            resident,
            snap: ctx.snap,
        })
    }
}

impl BatchOp for RowidSemiJoinExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        loop {
            let rows = self.sub.next_rows()?;
            if rows.is_empty() {
                return Ok(Vec::new());
            }
            let t0 = self.node.as_ref().map(|_| Instant::now());
            let before = self.node.as_ref().map(|_| self.db.counters().snapshot());
            let mut out = Vec::with_capacity(rows.len());
            for row in &rows {
                let (Some(lrid), Some(rrid)) = (row[0].as_rowid(), row[1].as_rowid()) else {
                    return Err(DbError::Plan(
                        "rowid-pair subquery produced non-rowid values".into(),
                    ));
                };
                if !self.seen.insert((lrid, rrid)) {
                    continue; // IN semantics deduplicate
                }
                // Per-pair fetch deliberately charges the I/O,
                // mirroring the semijoin's real cost profile; the
                // GeomCache inside the join already bounded the working
                // set upstream. Pairs whose rows are not visible under
                // the statement snapshot are skipped, not errors.
                let lvals = match self.lt.read().get_at(lrid, &self.snap) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                let rvals = match self.rt.read().get_at(rrid, &self.snap) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                let mut jr = empty_joined(self.width);
                jr[self.l_rel] = RelRow { rid: Some(lrid), values: lvals.to_vec() };
                jr[self.r_rel] = RelRow { rid: Some(rrid), values: rvals.to_vec() };
                out.push(jr);
            }
            // Only the batch in flight is resident; the seen-set holds
            // rowid pairs, not rows.
            self.resident.set(out.len() as u64)?;
            note_batch(&self.node, out.len(), t0);
            if let (Some(n), Some(b)) = (&self.node, &before) {
                n.add_metric_deltas(&self.db.counters().diff(b).pairs());
            }
            if !out.is_empty() {
                return Ok(out);
            }
        }
    }

    fn close(&mut self) {
        self.sub.close();
        let _ = self.resident.set(0);
    }
}

pub(crate) enum InnerSide<'a> {
    /// Probe the inner table's domain index per outer row.
    Probe { table: Arc<RwLock<Table>>, index: IndexHandle },
    /// No index: materialize the inner side once (charged), then
    /// evaluate the predicate functionally per outer row.
    Build { scan: Option<Box<dyn BatchOp + 'a>>, rows: Vec<(Option<RowId>, Row)>, built: bool },
}

/// Nested-loop spatial join: the outer side streams in batches, the
/// inner side is an index probe (the paper's baseline join strategy) or
/// a batched build when no index exists.
pub(crate) struct NestedLoopJoinExec<'a> {
    db: &'a Database,
    outer: Box<dyn BatchOp + 'a>,
    pred: SpatialPred,
    outer_rel: usize,
    outer_col: usize,
    inner_rel: usize,
    inner_col: usize,
    inner: InnerSide<'a>,
    width: usize,
    queue: VecDeque<Vec<RelRow>>,
    outer_done: bool,
    node: Option<ProfileNode>,
    resident: Resident,
    build_resident: Resident,
    snap: Snapshot,
}

impl<'a> NestedLoopJoinExec<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ctx: &ExecCtx<'a>,
        outer: Box<dyn BatchOp + 'a>,
        pred: SpatialPred,
        inner: InnerSide<'a>,
        width: usize,
        node: Option<ProfileNode>,
    ) -> Result<Self, DbError> {
        let (outer_rel, outer_col) = pred.target;
        let SpatialOperand::Column(inner_rel, inner_col) = pred.other else {
            return Err(DbError::Plan("nested-loop join needs a column-column predicate".into()));
        };
        if outer_rel == inner_rel {
            return Err(DbError::Plan("spatial join requires two distinct tables".into()));
        }
        Ok(NestedLoopJoinExec {
            db: ctx.db,
            outer,
            pred,
            outer_rel,
            outer_col,
            inner_rel,
            inner_col,
            inner,
            width,
            queue: VecDeque::new(),
            outer_done: false,
            node,
            resident: ctx.resident("NESTED LOOP JOIN"),
            build_resident: ctx.resident("NESTED LOOP JOIN build side"),
            snap: ctx.snap,
        })
    }

    /// Open an index-probing inner side.
    pub(crate) fn probe(table: Arc<RwLock<Table>>, index: IndexHandle) -> InnerSide<'a> {
        InnerSide::Probe { table, index }
    }

    /// Open a materializing inner side fed by `scan`.
    pub(crate) fn build(scan: Box<dyn BatchOp + 'a>) -> InnerSide<'a> {
        InnerSide::Build { scan: Some(scan), rows: Vec::new(), built: false }
    }

    fn ensure_built(&mut self) -> Result<(), DbError> {
        let InnerSide::Build { scan, rows, built } = &mut self.inner else { return Ok(()) };
        if *built {
            return Ok(());
        }
        let mut op = scan.take().expect("build scan present before build");
        loop {
            let batch = op.next_batch()?;
            if batch.is_empty() {
                break;
            }
            self.build_resident.add(batch.len() as u64)?;
            for mut jr in batch {
                let r = std::mem::replace(
                    &mut jr[self.inner_rel],
                    RelRow { rid: None, values: Vec::new() },
                );
                rows.push((r.rid, r.values));
            }
        }
        op.close();
        *built = true;
        Ok(())
    }

    fn join_outer_row(&mut self, jr: &[RelRow]) -> Result<(), DbError> {
        let orow = &jr[self.outer_rel];
        let Some(g) = orow.values.get(self.outer_col).and_then(|v| v.as_geometry()) else {
            return Ok(());
        };
        let g = Arc::clone(g);
        match &self.inner {
            InnerSide::Probe { table, index } => {
                // The SQL predicate is OP(outer, inner, extra); the
                // index evaluates OP(inner_data, query, extra), so
                // asymmetric SDO_RELATE masks are transposed.
                let mut args = vec![Value::Geometry(Arc::clone(&g))];
                args.extend(crate::exec::transpose_spatial_extra(
                    &self.pred.name,
                    &self.pred.extra,
                )?);
                let call = OperatorCall { name: self.pred.name.clone(), args, snap: self.snap };
                let rids = index.read().evaluate(&call)?;
                for rid in rids {
                    // The index may hold entries for rows this snapshot
                    // cannot see (uncommitted inserts, pre-commit
                    // deletes): the heap re-check under the statement
                    // snapshot is the visibility filter.
                    let ivals = match table.read().get_at(rid, &self.snap) {
                        Ok(v) => v,
                        Err(_) => continue,
                    };
                    let mut out = empty_joined(self.width);
                    out[self.outer_rel] = orow.clone();
                    out[self.inner_rel] = RelRow { rid: Some(rid), values: ivals.to_vec() };
                    self.queue.push_back(out);
                }
            }
            InnerSide::Build { rows, .. } => {
                for (irid, ivals) in rows {
                    let keep = ivals
                        .get(self.inner_col)
                        .and_then(|v| v.as_geometry())
                        .map(|ig| {
                            eval_spatial_fn(&self.pred.name, &g, ig, &self.pred.extra)
                                .unwrap_or(false)
                        })
                        .unwrap_or(false);
                    if keep {
                        let mut out = empty_joined(self.width);
                        out[self.outer_rel] = orow.clone();
                        out[self.inner_rel] = RelRow { rid: *irid, values: ivals.clone() };
                        self.queue.push_back(out);
                    }
                }
            }
        }
        Ok(())
    }
}

impl BatchOp for NestedLoopJoinExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        loop {
            if !self.queue.is_empty() {
                let n = self.queue.len().min(BATCH_ROWS);
                let out: JoinedBatch = self.queue.drain(..n).collect();
                self.resident.set(self.queue.len() as u64)?;
                note_batch(&self.node, out.len(), None);
                return Ok(out);
            }
            if self.outer_done {
                return Ok(Vec::new());
            }
            let obatch = self.outer.next_batch()?;
            if obatch.is_empty() {
                self.outer_done = true;
                continue;
            }
            let t0 = self.node.as_ref().map(|_| Instant::now());
            let before = self.node.as_ref().map(|_| self.db.counters().snapshot());
            self.ensure_built()?;
            for jr in &obatch {
                self.join_outer_row(jr)?;
            }
            self.resident.set(self.queue.len() as u64)?;
            if let Some(n) = &self.node {
                if let Some(t0) = t0 {
                    n.add_wall(t0.elapsed());
                }
                if let Some(b) = &before {
                    n.add_metric_deltas(&self.db.counters().diff(b).pairs());
                }
            }
        }
    }

    fn close(&mut self) {
        self.outer.close();
        if let InnerSide::Build { scan, rows, .. } = &mut self.inner {
            if let Some(s) = scan {
                s.close();
            }
            rows.clear();
        }
        self.queue.clear();
        let _ = self.resident.set(0);
        let _ = self.build_resident.set(0);
    }
}

/// Guarded cartesian product: the first relation streams, the rest are
/// materialized once (charged to the gauge, so runaway products fail
/// with the `max_resident_rows` budget instead of a hard-coded cap).
pub(crate) struct CrossJoinExec<'a> {
    first: Box<dyn BatchOp + 'a>,
    rest: Vec<(usize, Box<dyn BatchOp + 'a>)>,
    mats: Vec<(usize, Vec<RelRow>)>,
    built: bool,
    queue: VecDeque<Vec<RelRow>>,
    first_done: bool,
    node: Option<ProfileNode>,
    resident: Resident,
    mat_resident: Resident,
}

impl<'a> CrossJoinExec<'a> {
    pub(crate) fn new(
        ctx: &ExecCtx<'a>,
        first: Box<dyn BatchOp + 'a>,
        rest: Vec<(usize, Box<dyn BatchOp + 'a>)>,
        node: Option<ProfileNode>,
    ) -> Self {
        CrossJoinExec {
            first,
            rest,
            mats: Vec::new(),
            built: false,
            queue: VecDeque::new(),
            first_done: false,
            node,
            resident: ctx.resident("CARTESIAN PRODUCT"),
            mat_resident: ctx.resident("CARTESIAN PRODUCT build side"),
        }
    }

    fn ensure_built(&mut self) -> Result<(), DbError> {
        if self.built {
            return Ok(());
        }
        for (slot, mut op) in std::mem::take(&mut self.rest) {
            let mut rows = Vec::new();
            loop {
                let batch = op.next_batch()?;
                if batch.is_empty() {
                    break;
                }
                self.mat_resident.add(batch.len() as u64)?;
                for mut jr in batch {
                    rows.push(std::mem::replace(
                        &mut jr[slot],
                        RelRow { rid: None, values: Vec::new() },
                    ));
                }
            }
            op.close();
            self.mats.push((slot, rows));
        }
        self.built = true;
        Ok(())
    }

    fn expand(&mut self, jr: Vec<RelRow>) -> Result<(), DbError> {
        // Depth-first over the materialized relations, rightmost
        // innermost — the same order the materializing executor
        // produced.
        let mut acc: Vec<Vec<RelRow>> = vec![jr];
        for (slot, rows) in &self.mats {
            let mut next = Vec::with_capacity(acc.len() * rows.len());
            for prefix in &acc {
                for r in rows {
                    let mut row = prefix.clone();
                    row[*slot] = r.clone();
                    next.push(row);
                }
            }
            acc = next;
            self.resident.set((self.queue.len() + acc.len()) as u64)?;
        }
        self.queue.extend(acc);
        Ok(())
    }
}

impl BatchOp for CrossJoinExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        loop {
            if !self.queue.is_empty() {
                let n = self.queue.len().min(BATCH_ROWS);
                let out: JoinedBatch = self.queue.drain(..n).collect();
                self.resident.set(self.queue.len() as u64)?;
                note_batch(&self.node, out.len(), None);
                return Ok(out);
            }
            if self.first_done {
                return Ok(Vec::new());
            }
            let batch = self.first.next_batch()?;
            if batch.is_empty() {
                self.first_done = true;
                continue;
            }
            let t0 = self.node.as_ref().map(|_| Instant::now());
            self.ensure_built()?;
            for jr in batch {
                self.expand(jr)?;
            }
            self.resident.set(self.queue.len() as u64)?;
            if let (Some(n), Some(t0)) = (&self.node, t0) {
                n.add_wall(t0.elapsed());
            }
        }
    }

    fn close(&mut self) {
        self.first.close();
        for (_, op) in &mut self.rest {
            op.close();
        }
        self.mats.clear();
        self.queue.clear();
        let _ = self.resident.set(0);
        let _ = self.mat_resident.set(0);
    }
}

// ---------------------------------------------------------------------------
// Sort / limit
// ---------------------------------------------------------------------------

/// Blocking ORDER BY: drains the child, sorts by the evaluated keys,
/// then re-emits in batches, releasing gauge charge as rows drain.
pub(crate) struct SortExec<'a> {
    child: Box<dyn BatchOp + 'a>,
    metas: Arc<Vec<RelMeta>>,
    keys: Vec<OrderKey>,
    sorted: Option<VecDeque<Vec<RelRow>>>,
    node: Option<ProfileNode>,
    resident: Resident,
}

impl<'a> SortExec<'a> {
    pub(crate) fn new(
        child: Box<dyn BatchOp + 'a>,
        ctx: &ExecCtx<'a>,
        metas: Arc<Vec<RelMeta>>,
        keys: Vec<OrderKey>,
        node: Option<ProfileNode>,
    ) -> Self {
        let resident = ctx.resident("SORT");
        SortExec { child, metas, keys, sorted: None, node, resident }
    }
}

impl BatchOp for SortExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        if self.sorted.is_none() {
            let t0 = self.node.as_ref().map(|_| Instant::now());
            let mut keyed: Vec<(Vec<Value>, Vec<RelRow>)> = Vec::new();
            loop {
                let batch = self.child.next_batch()?;
                if batch.is_empty() {
                    break;
                }
                self.resident.add(batch.len() as u64)?;
                for jr in batch {
                    let ks = self
                        .keys
                        .iter()
                        .map(|k| crate::exec::eval_expr(&self.metas, &jr, &k.expr))
                        .collect::<Result<Vec<_>, _>>()?;
                    keyed.push((ks, jr));
                }
            }
            let keys = &self.keys;
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, key) in keys.iter().enumerate() {
                    let ord = a[i].sql_cmp(&b[i]);
                    let ord = if key.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.sorted = Some(keyed.into_iter().map(|(_, r)| r).collect());
            if let (Some(n), Some(t0)) = (&self.node, t0) {
                n.add_wall(t0.elapsed());
            }
        }
        let buf = self.sorted.as_mut().expect("sorted buffer");
        let n = buf.len().min(BATCH_ROWS);
        let out: JoinedBatch = buf.drain(..n).collect();
        self.resident.set(buf.len() as u64)?;
        if !out.is_empty() {
            note_batch(&self.node, out.len(), None);
        }
        Ok(out)
    }

    fn close(&mut self) {
        self.child.close();
        self.sorted = None;
        let _ = self.resident.set(0);
    }
}

/// `LIMIT n` with genuine early termination: the moment the quota is
/// satisfied the child's `close()` runs, which propagates down the
/// tree — a streaming `TABLE(SPATIAL_JOIN(...))` scan stops its R-tree
/// traversal mid-join instead of computing rows nobody will read.
pub(crate) struct LimitExec<'a> {
    child: Box<dyn BatchOp + 'a>,
    remaining: usize,
    child_closed: bool,
    node: Option<ProfileNode>,
}

impl<'a> LimitExec<'a> {
    pub(crate) fn new(child: Box<dyn BatchOp + 'a>, n: usize, node: Option<ProfileNode>) -> Self {
        LimitExec { child, remaining: n, child_closed: false, node }
    }
}

impl BatchOp for LimitExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        if self.remaining == 0 {
            self.close();
            return Ok(Vec::new());
        }
        let mut batch = self.child.next_batch()?;
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        if batch.len() > self.remaining {
            batch.truncate(self.remaining);
        }
        self.remaining -= batch.len();
        if self.remaining == 0 {
            // Early termination: stop the producers now, not at drop.
            self.close();
        }
        note_batch(&self.node, batch.len(), None);
        Ok(batch)
    }

    fn close(&mut self) {
        if !self.child_closed {
            self.child.close();
            self.child_closed = true;
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline builder and driver
// ---------------------------------------------------------------------------

enum SourceSlot {
    Table { name: String, table: Arc<RwLock<Table>> },
    Tf { name: String, func: Box<dyn TableFunction> },
    Taken,
}

/// A built SELECT pipeline: the operator tree plus the projection that
/// turns joined rows into result rows. Used both as the top-level
/// driver and as the streaming subquery feed of
/// [`RowidSemiJoinExec`].
pub(crate) struct SelectStream<'a> {
    root: Box<dyn BatchOp + 'a>,
    metas: Arc<Vec<RelMeta>>,
    projection: Vec<SelectItem>,
    /// Output column names.
    pub(crate) columns: Vec<String>,
    count_star: bool,
}

impl SelectStream<'_> {
    /// Next batch of projected result rows; empty means exhausted.
    pub(crate) fn next_rows(&mut self) -> Result<Vec<Row>, DbError> {
        let batch = self.root.next_batch()?;
        batch.iter().map(|jr| project_row(&self.metas, jr, &self.projection)).collect()
    }

    /// Close the pipeline (idempotent, propagates to every operator).
    pub(crate) fn close(&mut self) {
        self.root.close();
    }

    /// Drive the pipeline to completion into a [`QueryResult`]. The
    /// result buffer itself is the client's, not the pipeline's, so it
    /// is not charged against `max_resident_rows`.
    pub(crate) fn run(mut self) -> Result<QueryResult, DbError> {
        let res = self.run_inner();
        self.close();
        res
    }

    fn run_inner(&mut self) -> Result<QueryResult, DbError> {
        if self.count_star {
            let mut n: i64 = 0;
            loop {
                let batch = self.root.next_batch()?;
                if batch.is_empty() {
                    break;
                }
                n += batch.len() as i64;
            }
            return Ok(QueryResult {
                columns: self.columns.clone(),
                rows: vec![vec![Value::Integer(n)]],
            });
        }
        let mut rows = Vec::new();
        loop {
            let batch = self.next_rows()?;
            if batch.is_empty() {
                break;
            }
            rows.extend(batch);
        }
        Ok(QueryResult { columns: self.columns.clone(), rows })
    }
}

fn make_scan<'a>(
    ctx: &ExecCtx<'a>,
    sources: &mut [SourceSlot],
    slot: usize,
    width: usize,
    parent: Option<&ProfileNode>,
) -> Result<Box<dyn BatchOp + 'a>, DbError> {
    match std::mem::replace(&mut sources[slot], SourceSlot::Taken) {
        SourceSlot::Table { name, table } => {
            Ok(Box::new(TableScanExec::new(ctx, table, &name, slot, width, parent)))
        }
        SourceSlot::Tf { name, func } => {
            Ok(Box::new(TableFunctionScanExec::new(ctx, func, &name, slot, width, parent)))
        }
        SourceSlot::Taken => Err(DbError::Plan("FROM item used twice in plan".into())),
    }
}

/// Build the streaming operator tree for a SELECT. Profile nodes are
/// created top-down (LIMIT → SORT → FILTER → join → scans) so the
/// `EXPLAIN ANALYZE` tree mirrors the operator tree.
pub(crate) fn build_select_stream<'a>(
    ctx: &ExecCtx<'a>,
    sel: &Select,
    parent: Option<&ProfileNode>,
) -> Result<SelectStream<'a>, DbError> {
    let db = ctx.db;
    let width = sel.from.len();

    // Bind FROM items lazily: resolve schemas and construct (but do not
    // start) table functions. CURSOR(...) arguments are inherently
    // materialized — they are evaluated here, through the streaming
    // executor, sharing this statement's gauge.
    let mut metas_v: Vec<RelMeta> = Vec::with_capacity(width);
    let mut sources: Vec<SourceSlot> = Vec::with_capacity(width);
    for item in &sel.from {
        match item {
            FromItem::Table { name, .. } => {
                let table = db.table(name)?;
                let columns: Vec<String> =
                    table.read().schema().columns().iter().map(|c| c.name.clone()).collect();
                metas_v.push(RelMeta {
                    binding: item.binding().to_ascii_uppercase(),
                    columns,
                    table: Some(Arc::clone(&table)),
                    table_name: Some(name.to_ascii_uppercase()),
                });
                sources.push(SourceSlot::Table { name: name.clone(), table });
            }
            FromItem::TableFunction { name, args, .. } => {
                let mut tf_args = Vec::with_capacity(args.len());
                for a in args {
                    match a {
                        TfArgAst::Expr(e) => {
                            tf_args.push(TfArg::Scalar(crate::exec::eval_const(e)?))
                        }
                        TfArgAst::Cursor(sub) => {
                            tf_args.push(TfArg::Cursor(run_subselect(ctx, sub)?.rows))
                        }
                    }
                }
                let inst = db.make_table_function(name, tf_args)?;
                metas_v.push(RelMeta {
                    binding: item.binding().to_ascii_uppercase(),
                    columns: inst.columns.iter().map(|c| c.to_ascii_uppercase()).collect(),
                    table: None,
                    table_name: None,
                });
                sources.push(SourceSlot::Tf { name: name.clone(), func: inst.func });
            }
        }
    }
    let metas = Arc::new(metas_v);

    // Classify conjuncts.
    let op_names = db.operator_names();
    let mut rowid_pairs: Vec<&Predicate> = Vec::new();
    let mut spatial: Vec<SpatialPred> = Vec::new();
    let mut residual: Vec<Predicate> = Vec::new();
    for p in &sel.where_clause {
        match p {
            Predicate::RowidPairIn { .. } => rowid_pairs.push(p),
            Predicate::Compare {
                left: crate::sql::ast::Expr::FnCall { name, args },
                op,
                right,
            } if *op == crate::sql::ast::CmpOp::Eq
                && op_names.iter().any(|o| o.eq_ignore_ascii_case(name))
                && matches!(right, crate::sql::ast::Expr::Literal(v) if v.as_text() == Some("TRUE")) =>
            {
                spatial.push(classify_spatial(&metas, name, args)?)
            }
            other => residual.push(other.clone()),
        }
    }

    // Validate the projection up front so errors surface before any
    // operator starts.
    let columns = projection_columns(&metas, &sel.projection)?;
    let count_star = sel.projection == [SelectItem::CountStar];

    // Consult the cost-based planner. Planning is advisory: a failure
    // (or a decision the runtime cannot honor) falls back to the
    // default strategy, never fails the query.
    let env = crate::planner::PlanEnv {
        dop_cap: ctx.parallel_dop,
        max_resident_rows: ctx.max_resident_rows,
    };
    let plan = crate::planner::plan_select(db, sel, &env).ok();

    // kNN pushdown applies only to the bare single-table top-k shape
    // the planner detected (no other predicates to interleave).
    let knn = plan.as_ref().and_then(|p| p.knn.as_ref()).filter(|_| {
        width == 1 && rowid_pairs.is_empty() && spatial.is_empty() && residual.is_empty()
    });

    // Exchange placement: honor the planner's parallelization only
    // when the runtime shape matches what it assumed (re-validated
    // here because planning is advisory).
    let exchange = plan.as_ref().and_then(|p| p.exchange.clone());
    let single_base = width == 1
        && matches!(sources[0], SourceSlot::Table { .. })
        && rowid_pairs.is_empty()
        && !spatial.iter().any(|s| s.is_join());
    use crate::planner::ExchangeSite;
    let par_scan = matches!(&exchange, Some(x) if x.site == ExchangeSite::Scan)
        && single_base
        && sel.order_by.is_empty();
    let par_sort = matches!(&exchange, Some(x) if x.site == ExchangeSite::Sort)
        && single_base
        && !sel.order_by.is_empty()
        && knn.is_none();
    let par_probe =
        matches!(&exchange, Some(x) if x.site == ExchangeSite::Probe) && !rowid_pairs.is_empty();

    // Profile nodes, created top-down so the rendered tree mirrors the
    // operator tree: LIMIT → SORT → FILTER → join strategy → scans.
    // A parallel sort replaces the serial SORT node with its EXCHANGE.
    let limit_node = sel.limit.and_then(|n| parent.map(|p| p.child(format!("LIMIT {n}"))));
    let mut anchor: Option<ProfileNode> = limit_node.clone().or_else(|| parent.cloned());
    let sort_node = (!sel.order_by.is_empty() && knn.is_none() && !par_sort)
        .then(|| anchor.as_ref().map(|p| p.child(format!("SORT [{} key(s)]", sel.order_by.len()))))
        .flatten();
    if sort_node.is_some() {
        anchor = sort_node.clone();
    }

    // Join strategy.
    let mut root: Box<dyn BatchOp + 'a>;
    if let Some(kc) = knn {
        // ORDER BY SDO_DISTANCE(col, const) LIMIT k → incremental
        // best-first search in the domain index; replaces scan + sort.
        let m = &metas[0];
        let binding = m.binding.clone();
        let node = anchor.as_ref().map(|p| p.child(format!("KNN SCAN {} (k={})", binding, kc.k)));
        if let Some(n) = &node {
            n.set_attr("plan_reason", kc.reason.clone());
            n.set_attr("est_cost", format!("{:.0}", kc.est_cost));
        }
        let table = m
            .table
            .clone()
            .ok_or_else(|| DbError::Plan("kNN pushdown requires a base table".into()))?;
        let index = m
            .table_name
            .as_deref()
            .and_then(|t| db.index_on(t, &m.columns[kc.col]))
            .map(|(_, inst)| inst)
            .ok_or_else(|| DbError::Plan("kNN pushdown requires a domain index".into()))?;
        // Mark the FROM source consumed so the builder stays coherent.
        sources[0] = SourceSlot::Taken;
        root = Box::new(KnnScanExec::new(
            ctx,
            table,
            index,
            Arc::clone(&kc.query),
            kc.k,
            kc.col,
            0,
            width,
            node,
        ));
    } else if let Some(Predicate::RowidPairIn { left, right, subquery }) = rowid_pairs.first() {
        let has_filter_stage = !spatial.is_empty() || !residual.is_empty();
        let filter_node = (has_filter_stage && !par_probe)
            .then(|| anchor.as_ref().map(|p| p.child("FILTER")))
            .flatten();
        let join_anchor = filter_node.clone().or(anchor.clone());
        if width != 2 {
            return Err(DbError::Plan("rowid-pair IN requires exactly two tables".into()));
        }
        let (l_rel, l_col) = resolve_column_meta(&metas, left)?;
        let (r_rel, r_col) = resolve_column_meta(&metas, right)?;
        if l_col != usize::MAX || r_col != usize::MAX {
            return Err(DbError::Plan("rowid-pair IN requires ROWID references".into()));
        }
        if l_rel == r_rel {
            return Err(DbError::Plan("rowid pair must reference two distinct tables".into()));
        }
        let lt = metas[l_rel]
            .table
            .clone()
            .ok_or_else(|| DbError::Plan("rowid pair over non-table".into()))?;
        let rt = metas[r_rel]
            .table
            .clone()
            .ok_or_else(|| DbError::Plan("rowid pair over non-table".into()))?;
        let hints =
            plan.as_ref().map(|p| p.filter_hints.clone()).filter(|h| h.len() == spatial.len());
        if par_probe {
            // Parallel probe: the pair stream is cut into blocks fanned
            // out to workers, which fetch both base rows (through a
            // private row cache each) and run the secondary filters
            // per-worker. The exchange subsumes the FILTER stage.
            let x = exchange.as_ref().expect("par_probe implies exchange");
            let node = anchor.as_ref().map(|p| p.child("EXCHANGE"));
            if let Some(n) = &node {
                n.set_attr("plan_reason", x.reason.clone());
            }
            let sub = build_select_stream(ctx, subquery, node.as_ref())?;
            root = Box::new(crate::parallel::ParallelSemiJoinExec::new(
                ctx,
                sub,
                l_rel,
                r_rel,
                lt,
                rt,
                width,
                Arc::clone(&metas),
                spatial,
                residual,
                hints,
                x.dop,
                node,
            )?);
        } else {
            let node = join_anchor.as_ref().map(|p| p.child("ROWID-PAIR SEMIJOIN"));
            let sub = build_select_stream(ctx, subquery, node.as_ref())?;
            root = Box::new(RowidSemiJoinExec::new(ctx, sub, l_rel, r_rel, lt, rt, width, node)?);
            if has_filter_stage {
                root = Box::new(FilterExec::new(
                    root,
                    ctx,
                    Arc::clone(&metas),
                    spatial,
                    residual,
                    hints,
                    filter_node,
                ));
            }
        }
    } else if let Some(jpos) = spatial.iter().position(|s| s.is_join()) {
        let mut jp = spatial.remove(jpos);
        let has_filter_stage = !spatial.is_empty() || !residual.is_empty();
        let filter_node =
            has_filter_stage.then(|| anchor.as_ref().map(|p| p.child("FILTER"))).flatten();
        let join_anchor = filter_node.clone().or(anchor.clone());
        // Costed orientation: transpose the predicate when the planner
        // determined the second relation should drive the loop.
        let choice = plan.as_ref().and_then(|p| p.join.as_ref());
        if choice.map(|c| c.swap).unwrap_or(false) {
            jp = crate::planner::transpose_pred(jp)?;
        }
        let node = join_anchor.as_ref().map(|p| p.child(format!("NESTED LOOP JOIN ({})", jp.name)));
        if let (Some(n), Some(c)) = (&node, choice) {
            n.set_attr("plan_reason", c.reason.clone());
            n.set_attr("est_pairs", format!("{:.0}", c.est_pairs));
            n.set_attr("est_cost", format!("{:.0}", c.est_cost));
        }
        let (outer_rel, _) = jp.target;
        let SpatialOperand::Column(inner_rel, inner_col) = jp.other else { unreachable!() };
        let outer = make_scan(ctx, &mut sources, outer_rel, width, node.as_ref())?;
        let im = &metas[inner_rel];
        // Probe only when the planner costed it cheaper (default: probe
        // whenever an index exists, matching the pre-planner behavior).
        let want_probe = choice.map(|c| c.probe).unwrap_or(true);
        let index = im
            .table_name
            .as_deref()
            .and_then(|t| db.index_on(t, &im.columns[inner_col]))
            .filter(|_| want_probe);
        let inner = match (index, im.table.clone()) {
            (Some((_, inst)), Some(table)) => NestedLoopJoinExec::probe(table, inst),
            _ => NestedLoopJoinExec::build(make_scan(
                ctx,
                &mut sources,
                inner_rel,
                width,
                node.as_ref(),
            )?),
        };
        root = Box::new(NestedLoopJoinExec::new(ctx, outer, jp, inner, width, node)?);
        if has_filter_stage {
            let hints =
                plan.as_ref().map(|p| p.filter_hints.clone()).filter(|h| h.len() == spatial.len());
            root = Box::new(FilterExec::new(
                root,
                ctx,
                Arc::clone(&metas),
                spatial,
                residual,
                hints,
                filter_node,
            ));
        }
    } else if par_scan || par_sort {
        // Morsel-driven scan (+filter, + per-worker sort under an
        // ORDER BY): the exchange fans slot-range morsels out to the
        // slave pool and merges per-worker output back into the
        // ordered batch stream.
        let x = exchange.as_ref().expect("parallel path implies exchange");
        let node = anchor.as_ref().map(|p| p.child("EXCHANGE"));
        if let Some(n) = &node {
            n.set_attr("plan_reason", x.reason.clone());
        }
        let table = match std::mem::replace(&mut sources[0], SourceSlot::Taken) {
            SourceSlot::Table { table, .. } => table,
            _ => return Err(DbError::Plan("exchange requires a base table".into())),
        };
        let hints =
            plan.as_ref().map(|p| p.filter_hints.clone()).filter(|h| h.len() == spatial.len());
        if par_sort {
            root = Box::new(crate::parallel::ParallelSortExec::new(
                ctx,
                table,
                Arc::clone(&metas),
                spatial,
                residual,
                hints,
                sel.order_by.clone(),
                sel.limit,
                x.dop,
                node,
            ));
        } else {
            root = Box::new(crate::parallel::ParallelScanFilterExec::new(
                ctx,
                table,
                Arc::clone(&metas),
                spatial,
                residual,
                hints,
                x.dop,
                node,
            ));
        }
    } else {
        let has_filter_stage = !spatial.is_empty() || !residual.is_empty();
        let filter_node =
            has_filter_stage.then(|| anchor.as_ref().map(|p| p.child("FILTER"))).flatten();
        let scan_anchor = filter_node.clone().or(anchor.clone());
        if width == 1 {
            root = make_scan(ctx, &mut sources, 0, width, scan_anchor.as_ref())?;
        } else {
            // The planner picks which relation streams (largest) so the
            // materialized side — the product's resident memory — is as
            // small as the FROM list allows.
            let stream_slot =
                plan.as_ref().map(|p| p.stream_slot).filter(|&s| s < width).unwrap_or(0);
            let node = scan_anchor.as_ref().map(|p| p.child("CARTESIAN PRODUCT"));
            if let (Some(n), Some(p)) = (&node, plan.as_ref()) {
                n.set_attr("plan_reason", format!("streams slot {}", p.stream_slot));
            }
            let first = make_scan(ctx, &mut sources, stream_slot, width, node.as_ref())?;
            let mut rest = Vec::with_capacity(width - 1);
            for slot in (0..width).filter(|&s| s != stream_slot) {
                rest.push((slot, make_scan(ctx, &mut sources, slot, width, node.as_ref())?));
            }
            root = Box::new(CrossJoinExec::new(ctx, first, rest, node));
        }
        if has_filter_stage {
            let hints =
                plan.as_ref().map(|p| p.filter_hints.clone()).filter(|h| h.len() == spatial.len());
            root = Box::new(FilterExec::new(
                root,
                ctx,
                Arc::clone(&metas),
                spatial,
                residual,
                hints,
                filter_node,
            ));
        }
    }

    if !sel.order_by.is_empty() && knn.is_none() && !par_sort {
        root =
            Box::new(SortExec::new(root, ctx, Arc::clone(&metas), sel.order_by.clone(), sort_node));
    }
    if let Some(n) = sel.limit {
        root = Box::new(LimitExec::new(root, n, limit_node));
    }

    Ok(SelectStream { root, metas, projection: sel.projection.clone(), columns, count_star })
}

/// Run a SELECT through the streaming pipeline.
pub(crate) fn run_select_streaming(
    ctx: &ExecCtx<'_>,
    sel: &Select,
) -> Result<QueryResult, DbError> {
    let parent = sdo_obs::current();
    build_select_stream(ctx, sel, parent.as_ref())?.run()
}

/// Scan-and-filter a single table, returning the matching `(rowid,
/// row)` pairs. The DML paths (DELETE / UPDATE) drive their doomed-set
/// collection through the same scan + filter operators as SELECT.
pub(crate) fn collect_matching(
    ctx: &ExecCtx<'_>,
    table_name: &str,
    where_clause: &[Predicate],
) -> Result<Vec<(RowId, Row)>, DbError> {
    let db = ctx.db;
    let table = db.table(table_name)?;
    let columns: Vec<String> =
        table.read().schema().columns().iter().map(|c| c.name.clone()).collect();
    let metas = Arc::new(vec![RelMeta {
        binding: table_name.to_ascii_uppercase(),
        columns,
        table: Some(Arc::clone(&table)),
        table_name: Some(table_name.to_ascii_uppercase()),
    }]);
    let op_names = db.operator_names();
    let mut spatial: Vec<SpatialPred> = Vec::new();
    let mut residual: Vec<Predicate> = Vec::new();
    for p in where_clause {
        match p {
            Predicate::RowidPairIn { .. } => {
                return Err(DbError::Plan(
                    "rowid-pair IN must be the driving predicate of a two-table select".into(),
                ))
            }
            Predicate::Compare {
                left: crate::sql::ast::Expr::FnCall { name, args },
                op,
                right,
            } if *op == crate::sql::ast::CmpOp::Eq
                && op_names.iter().any(|o| o.eq_ignore_ascii_case(name))
                && matches!(right, crate::sql::ast::Expr::Literal(v) if v.as_text() == Some("TRUE")) =>
            {
                spatial.push(classify_spatial(&metas, name, args)?)
            }
            other => residual.push(other.clone()),
        }
    }
    let parent = sdo_obs::current();
    let mut root: Box<dyn BatchOp + '_> =
        Box::new(TableScanExec::new(ctx, table, table_name, 0, 1, parent.as_ref()));
    if !spatial.is_empty() || !residual.is_empty() {
        let node = parent.as_ref().map(|p| p.child("FILTER"));
        root =
            Box::new(FilterExec::new(root, ctx, Arc::clone(&metas), spatial, residual, None, node));
    }
    let mut matched = Vec::new();
    let res = (|| -> Result<(), DbError> {
        loop {
            let batch = root.next_batch()?;
            if batch.is_empty() {
                return Ok(());
            }
            for mut jr in batch {
                let r = std::mem::replace(&mut jr[0], RelRow { rid: None, values: Vec::new() });
                let rid = r.rid.ok_or_else(|| DbError::Plan("table rows have rowids".into()))?;
                matched.push((rid, r.values));
            }
        }
    })();
    root.close();
    res?;
    Ok(matched)
}
