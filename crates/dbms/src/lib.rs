#![warn(missing_docs)]
//! # sdo-dbms — mini relational engine with extensible indexing
//!
//! The slice of the Oracle kernel the paper's techniques live in:
//!
//! * a [`Database`](db::Database) façade over the storage catalog with
//!   DML that maintains registered domain indexes (Oracle: "inserts and
//!   updates ... automatically trigger an update of the corresponding
//!   spatial indexes"),
//! * the **extensible indexing framework** ([`extensible`]): an
//!   indextype registry plus the [`extensible::DomainIndex`] trait with
//!   create/insert/delete hooks and operator evaluation. The framework
//!   deliberately reproduces the constraint the paper works around:
//!   *a domain-index operator returns rows of a single table*, so
//!   two-table spatial joins cannot be answered by an operator and need
//!   table functions,
//! * a registry of **table functions** callable from SQL's
//!   `FROM TABLE(f(...))` clause, with `CURSOR(SELECT ...)` arguments,
//! * a small **SQL dialect** ([`sql`]) covering the paper's statements:
//!   `CREATE TABLE`, `INSERT`, `CREATE INDEX ... INDEXTYPE IS ...
//!   PARAMETERS (...) PARALLEL n`, and `SELECT` with spatial operators
//!   (`SDO_RELATE`, `SDO_WITHIN_DISTANCE`, `SDO_FILTER`), nested-loop
//!   joins, table-function scans and rowid-pair `IN` subqueries,
//! * a row-at-a-time executor ([`exec`]) with the two join strategies
//!   the paper compares: index-probing nested loop vs. table-function
//!   spatial join.

pub mod db;
pub mod error;
pub mod exec;
pub mod extensible;
mod operators;
mod parallel;
mod planner;
pub mod session;
pub mod sql;

pub use db::{Database, Durability, QueryResult, SessionOptions, TfArg, Txn};
pub use error::DbError;
pub use extensible::{DomainIndex, IndexType, OperatorCall};
pub use parallel::set_morsel_rows;
pub use session::Session;
