//! Cost-based planner for SELECT statements.
//!
//! Consumes the statistics `ANALYZE` persists ([`TableStats`]: row
//! counts, per-column NDV, spatial MBR histograms) and produces, for
//! every SELECT, a costed [`PlanNode`] tree plus the concrete physical
//! decisions the executors consult:
//!
//! * **filter path** — domain-index prefilter vs. functional scan per
//!   constant spatial predicate, chosen by estimated output rows (a
//!   window covering most of the table makes the index probe pure
//!   overhead),
//! * **join order and method** — for a column-column spatial predicate,
//!   all four (outer side × probe/build) orientations are costed and
//!   the cheapest picked; for pure cartesian products the largest
//!   relation streams while smaller ones are materialized,
//! * **kNN pushdown** — `ORDER BY SDO_DISTANCE(col, const) LIMIT k`
//!   over a single R-tree-indexed table skips the full sort and runs
//!   the index's incremental best-first search instead.
//!
//! Every decision carries a human-readable reason with the numbers
//! that drove it; `EXPLAIN` renders the tree, and the streaming
//! operators stamp the same reasons onto their profile nodes so
//! `EXPLAIN ANALYZE` shows estimate vs. actual side by side.
//!
//! Statistics are advisory: missing or stale stats (more than
//! `max(64, rows/5)` modifications since `ANALYZE`) degrade to
//! documented defaults, never to errors, and the plan flags the
//! degradation.

use crate::db::Database;
use crate::error::DbError;
use crate::exec::{classify_spatial, eval_const, RelMeta, SpatialOperand, SpatialPred};
use crate::sql::ast::{Expr, FromItem, Predicate, Select, SelectItem, TfArgAst};
use sdo_geom::Geometry;
use sdo_storage::{IndexKind, TableStats};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Cost model constants
// ---------------------------------------------------------------------------
//
// Abstract units: 1.0 = streaming one row through an operator. The
// ratios matter, not the absolute values — they rank alternatives.

/// Emit/consume one row.
const C_ROW: f64 = 1.0;
/// One exact geometry predicate evaluation (refine step).
const C_EXACT: f64 = 4.0;
/// One domain-index probe (descend + candidate collection overhead).
const C_PROBE: f64 = 40.0;
/// Fetch one heap row by rowid.
const C_FETCH: f64 = 2.0;
/// One comparison inside a sort (applied `n·log2 n` times).
const C_CMP: f64 = 0.5;
/// One best-first kNN heap step (node enqueue + exact distance).
const C_KNN: f64 = 12.0;

/// Estimated output rows for a table function FROM item (no stats
/// exist for them; pipelined functions can produce anything).
const DEFAULT_TF_ROWS: f64 = 1_000.0;

/// Default selectivity for a spatial window predicate when no
/// histogram is available.
const DEFAULT_WINDOW_SEL: f64 = 0.1;

// ---------------------------------------------------------------------------
// Planning environment
// ---------------------------------------------------------------------------

/// Session knobs the planner must respect when placing exchanges.
/// Captured from the session options at plan time (`EXPLAIN`) or
/// execution time (the streaming builder), so a prepared statement
/// re-resolves them on every `EXECUTE`.
pub(crate) struct PlanEnv {
    /// `ALTER SESSION SET parallel_dop` ceiling; 1 forces serial plans.
    pub dop_cap: usize,
    /// `max_resident_rows` budget — parallelism is clamped so `dop`
    /// workers' in-flight morsels cannot exceed it on their own.
    pub max_resident_rows: u64,
}

impl PlanEnv {
    /// A serial environment: no exchange is ever placed.
    pub(crate) fn serial() -> Self {
        PlanEnv { dop_cap: 1, max_resident_rows: u64::MAX }
    }

    /// Capture the knobs from session options.
    pub(crate) fn from_options(opts: &crate::db::SessionOptions) -> Self {
        PlanEnv { dop_cap: opts.parallel_dop, max_resident_rows: opts.max_resident_rows }
    }
}

// ---------------------------------------------------------------------------
// Per-relation estimates
// ---------------------------------------------------------------------------

/// What the planner knows about one FROM item.
pub(crate) struct RelEstimate {
    /// Estimated (for base tables: exact live) row count.
    pub rows: f64,
    /// Persisted stats, when `ANALYZE` has run on the table.
    pub stats: Option<Arc<TableStats>>,
    /// True when the table has churned past the staleness budget since
    /// it was analyzed: histograms still exist but are flagged.
    pub stale: bool,
}

impl RelEstimate {
    /// One-line provenance note for plan reasons.
    fn stats_note(&self) -> String {
        match (&self.stats, self.stale) {
            (Some(s), false) => format!("stats: analyzed at {} rows", s.rows),
            (Some(s), true) => {
                format!("stats: STALE (analyzed at {} rows; churn exceeds budget)", s.rows)
            }
            (None, _) => "stats: none (run ANALYZE)".to_string(),
        }
    }

    /// The spatial histogram for `col`, only when trustworthy-ish
    /// (present; staleness is tolerated but reported by the caller).
    fn histogram(&self, col: usize) -> Option<&sdo_storage::SpatialHistogram> {
        self.stats.as_ref().and_then(|s| s.spatial_histogram(col))
    }
}

/// Build the planner's view of the FROM list **without** instantiating
/// table functions (plain `EXPLAIN` must not evaluate `CURSOR(...)`
/// arguments). Table-function relations get empty column lists;
/// predicates referencing them simply fail to classify and are planned
/// as residual filters.
pub(crate) fn plan_relations(
    db: &Database,
    sel: &Select,
) -> Result<(Vec<RelMeta>, Vec<RelEstimate>), DbError> {
    let mut metas = Vec::with_capacity(sel.from.len());
    let mut ests = Vec::with_capacity(sel.from.len());
    for item in &sel.from {
        match item {
            FromItem::Table { name, .. } => {
                let table = db.table(name)?;
                let (columns, rows, mods) = {
                    let t = table.read();
                    let columns: Vec<String> =
                        t.schema().columns().iter().map(|c| c.name.clone()).collect();
                    (columns, t.len() as f64, t.mod_count())
                };
                let stats = db.catalog().table_stats(name);
                let stale = stats.as_ref().map(|s| s.is_stale(mods)).unwrap_or(false);
                metas.push(RelMeta {
                    binding: item.binding().to_ascii_uppercase(),
                    columns,
                    table: Some(table),
                    table_name: Some(name.to_ascii_uppercase()),
                });
                ests.push(RelEstimate { rows, stats, stale });
            }
            FromItem::TableFunction { .. } => {
                metas.push(RelMeta {
                    binding: item.binding().to_ascii_uppercase(),
                    columns: Vec::new(),
                    table: None,
                    table_name: None,
                });
                ests.push(RelEstimate { rows: DEFAULT_TF_ROWS, stats: None, stale: false });
            }
        }
    }
    Ok((metas, ests))
}

// ---------------------------------------------------------------------------
// Plan tree
// ---------------------------------------------------------------------------

/// One operator of the costed plan. Rendered by `EXPLAIN`; the
/// estimates are also stamped onto profile nodes at execution.
pub(crate) struct PlanNode {
    /// Operator label, matching the executor's profile-node name.
    pub label: String,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated cumulative cost (this operator plus its inputs).
    pub est_cost: f64,
    /// Why this operator/path was chosen, with the driving numbers.
    pub reason: String,
    /// Input operators.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    fn new(label: impl Into<String>, est_rows: f64, est_cost: f64, reason: String) -> Self {
        PlanNode { label: label.into(), est_rows, est_cost, reason, children: Vec::new() }
    }

    /// Render as indented text lines, one per operator:
    /// `LABEL (rows=N, cost=N) -- reason`. The format is a stability
    /// contract (CI parses it); change it only with the golden file.
    pub(crate) fn render_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut Vec<String>, depth: usize) {
        let mut line = format!(
            "{:indent$}{} (rows={}, cost={})",
            "",
            self.label,
            fmt_est(self.est_rows),
            fmt_est(self.est_cost),
            indent = depth * 2
        );
        if !self.reason.is_empty() {
            line.push_str(" -- ");
            line.push_str(&self.reason);
        }
        out.push(line);
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// Estimates print as integers (they are estimates; decimals suggest
/// precision that does not exist).
fn fmt_est(v: f64) -> String {
    format!("{:.0}", v.clamp(0.0, 1e15))
}

// ---------------------------------------------------------------------------
// Physical decisions
// ---------------------------------------------------------------------------

/// Outer/inner orientation and inner-side method for a spatial
/// nested-loop join.
pub(crate) struct JoinChoice {
    /// Swap the predicate (the `other` relation becomes the outer)?
    pub swap: bool,
    /// Probe the inner side's domain index (else build/materialize it).
    pub probe: bool,
    /// Estimated join result pairs.
    pub est_pairs: f64,
    /// Cost of the chosen orientation.
    pub est_cost: f64,
    /// The numeric comparison that picked it.
    pub reason: String,
}

/// A detected `ORDER BY SDO_DISTANCE(col, const) LIMIT k` pushdown
/// (always over relation slot 0 — single-table selects only).
pub(crate) struct KnnChoice {
    /// Geometry column index in the table schema.
    pub col: usize,
    /// The constant query geometry.
    pub query: Arc<Geometry>,
    /// Result count.
    pub k: usize,
    /// Cost of the pushdown path.
    pub est_cost: f64,
    /// Cost comparison vs. the full sort it replaces.
    pub reason: String,
}

/// Per-spatial-predicate filter path: `true` = use the domain index
/// prefilter when one exists, `false` = planner determined the
/// functional scan is cheaper (index probe disabled).
pub(crate) type FilterHints = Vec<bool>;

/// Where a morsel-driven exchange is placed in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExchangeSite {
    /// Morsel-parallel table scan + filter over a single base table.
    Scan,
    /// Fused scan + filter + per-worker partial sort, merged at the
    /// exchange (covers ORDER BY and top-k).
    Sort,
    /// Parallel rowid-pair semijoin probe: the pair stream is cut into
    /// probe blocks fanned out to workers.
    Probe,
}

/// The planner's decision to parallelize part of the pipeline.
#[derive(Debug, Clone)]
pub(crate) struct ExchangeChoice {
    /// Which subtree the exchange covers.
    pub site: ExchangeSite,
    /// Degree of parallelism (always ≥ 2; dop 1 plans carry no
    /// exchange at all so point queries pay zero overhead).
    pub dop: usize,
    /// The numbers that picked the dop.
    pub reason: String,
}

/// Pick a dop for `drive_rows` estimated input rows, or `None` when
/// the work is too small to amortize fan-out. The threshold is two
/// morsels per worker-pair: below that, a second worker never gets a
/// full morsel of its own.
fn choose_exchange(env: &PlanEnv, site: ExchangeSite, drive_rows: f64) -> Option<ExchangeChoice> {
    if env.dop_cap <= 1 {
        return None;
    }
    let morsel = crate::parallel::morsel_rows() as f64;
    let threshold = 2.0 * morsel;
    if drive_rows < threshold {
        return None;
    }
    let by_rows = (drive_rows / morsel).floor().max(1.0) as usize;
    let by_mem = ((env.max_resident_rows as f64 / morsel).floor().max(1.0)) as usize;
    let dop = env.dop_cap.min(by_rows).min(by_mem);
    if dop < 2 {
        return None;
    }
    let reason = format!(
        "dop={dop}: est {} input rows >= threshold {} (morsel={}; session cap {}; memory cap {})",
        fmt_est(drive_rows),
        fmt_est(threshold),
        morsel as usize,
        env.dop_cap,
        by_mem,
    );
    Some(ExchangeChoice { site, dop, reason })
}

/// The complete plan for one SELECT.
pub(crate) struct SelectPlan {
    /// Costed operator tree for `EXPLAIN` (and attr stamping).
    pub root: PlanNode,
    /// Spatial nested-loop decision, when the query joins on a spatial
    /// predicate.
    pub join: Option<JoinChoice>,
    /// kNN pushdown, when detected.
    pub knn: Option<KnnChoice>,
    /// Which FROM slot streams in a cartesian product (the rest are
    /// materialized); slot 0 unless reordering pays.
    pub stream_slot: usize,
    /// Index-vs-scan hints for constant spatial predicates, in
    /// classification order (parallel to the executor's `spatial` list
    /// after the join predicate, if any, is removed).
    pub filter_hints: FilterHints,
    /// Morsel-driven exchange placement, when part of the pipeline is
    /// worth parallelizing under the session's dop cap.
    pub exchange: Option<ExchangeChoice>,
}

// ---------------------------------------------------------------------------
// Selectivity
// ---------------------------------------------------------------------------

/// Estimated output rows of one constant-operand spatial predicate
/// against its target relation, plus a provenance tag.
fn filter_rows(est: &RelEstimate, pred: &SpatialPred) -> (f64, &'static str) {
    let SpatialOperand::Const(qg) = &pred.other else {
        return (est.rows, "join predicate");
    };
    let (_, ci) = pred.target;
    let rows_u = est.rows.max(0.0) as u64;
    if pred.name == "SDO_NN" {
        let k = pred.extra.first().and_then(|v| v.as_integer()).unwrap_or(1).max(0) as f64;
        return (k.min(est.rows), "k of SDO_NN");
    }
    if let Some(h) = est.histogram(ci) {
        let window = qg.bbox();
        let out = match pred.name.as_str() {
            "SDO_WITHIN_DISTANCE" => {
                let d = crate::exec::parse_distance(&pred.extra).unwrap_or(0.0);
                h.estimate_within_distance(&window, d, rows_u)
            }
            // SDO_FILTER is exactly the MBR test the histogram models;
            // SDO_RELATE masks refine it (we do not model mask
            // selectivity beyond the window overlap).
            _ => h.estimate_window(&window, rows_u),
        };
        (out, if est.stale { "histogram (STALE)" } else { "histogram" })
    } else {
        (est.rows * DEFAULT_WINDOW_SEL, "default selectivity 0.1 (no histogram)")
    }
}

/// Estimated result pairs of a column-column spatial join. Uses both
/// sides' histograms when available; the fallback assumes roughly one
/// match per row of the larger side.
fn join_pairs(
    target: &RelEstimate,
    tcol: usize,
    other: &RelEstimate,
    ocol: usize,
) -> (f64, &'static str) {
    if let (Some(th), Some(oh)) = (target.histogram(tcol), other.histogram(ocol)) {
        let pairs = th.estimate_join_pairs(target.rows as u64, oh, other.rows as u64);
        let tag = if target.stale || other.stale { "histograms (STALE)" } else { "histograms" };
        (pairs, tag)
    } else {
        (target.rows.max(other.rows), "default: 1 match/row (no histograms)")
    }
}

// ---------------------------------------------------------------------------
// Predicate classification (planning copy)
// ---------------------------------------------------------------------------

/// What the planner extracted from the WHERE clause. Mirrors the
/// executor's classification, but tolerant: anything that fails to
/// classify (e.g. a spatial predicate over a table-function column
/// whose schema is unknown pre-instantiation) is counted as residual.
struct Conjuncts<'a> {
    rowid_pair: Option<&'a Select>,
    spatial: Vec<SpatialPred>,
    residual: usize,
}

fn classify_conjuncts<'a>(db: &Database, metas: &[RelMeta], sel: &'a Select) -> Conjuncts<'a> {
    let op_names = db.operator_names();
    let mut out = Conjuncts { rowid_pair: None, spatial: Vec::new(), residual: 0 };
    for p in &sel.where_clause {
        match p {
            Predicate::RowidPairIn { subquery, .. } => {
                if out.rowid_pair.is_none() {
                    out.rowid_pair = Some(subquery);
                } else {
                    out.residual += 1;
                }
            }
            Predicate::Compare { left: Expr::FnCall { name, args }, op, right }
                if *op == crate::sql::ast::CmpOp::Eq
                    && op_names.iter().any(|o| o.eq_ignore_ascii_case(name))
                    && matches!(right, Expr::Literal(v) if v.as_text() == Some("TRUE")) =>
            {
                match classify_spatial(metas, name, args) {
                    Ok(sp) => out.spatial.push(sp),
                    Err(_) => out.residual += 1,
                }
            }
            _ => out.residual += 1,
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Join planning
// ---------------------------------------------------------------------------

/// True when relation `rel`'s column `col` has a domain index.
fn indexed(db: &Database, metas: &[RelMeta], rel: usize, col: usize) -> Option<String> {
    let m = metas.get(rel)?;
    let t = m.table_name.as_deref()?;
    let name = m.columns.get(col)?;
    db.index_on(t, name).map(|(meta, _)| meta.index_name)
}

/// Cost one nested-loop orientation.
fn nlj_cost(outer_rows: f64, inner_rows: f64, pairs: f64, probe: bool) -> f64 {
    if probe {
        // Stream the outer, one index probe per outer row, fetch+emit
        // each resulting pair (the index refines internally; its exact
        // tests are folded into the pair term).
        outer_rows * (C_ROW + C_PROBE) + pairs * (C_EXACT + C_FETCH + C_ROW)
    } else {
        // Materialize the inner once, then exact-test the full cross
        // space per outer row.
        inner_rows * C_ROW + outer_rows * inner_rows * C_EXACT + pairs * C_ROW
    }
}

/// Choose orientation and inner method for the driving spatial join
/// predicate. `jp.target` is the predicate's first argument; `swap`
/// means the executor should transpose the predicate so the second
/// argument's relation drives the loop.
fn choose_join(
    db: &Database,
    metas: &[RelMeta],
    ests: &[RelEstimate],
    jp: &SpatialPred,
) -> Option<JoinChoice> {
    let (tr, tc) = jp.target;
    let SpatialOperand::Column(or, oc) = jp.other else { return None };
    let (pairs, pairs_src) = join_pairs(&ests[tr], tc, &ests[or], oc);
    let t_rows = ests[tr].rows;
    let o_rows = ests[or].rows;

    // SDO_NN is asymmetric (ranks rows of its first argument) and must
    // not be transposed; SDO_RELATE masks transpose cleanly, distance
    // and filter predicates are symmetric.
    let swappable =
        jp.name != "SDO_NN" && crate::exec::transpose_spatial_extra(&jp.name, &jp.extra).is_ok();

    // Candidates: (swap, probe, outer_rows, inner_rows, inner index).
    type Cand = (bool, bool, f64, f64, Option<String>);
    let mut cands: Vec<Cand> = Vec::new();
    let o_idx = indexed(db, metas, or, oc);
    let t_idx = indexed(db, metas, tr, tc);
    if let Some(ix) = &o_idx {
        cands.push((false, true, t_rows, o_rows, Some(ix.clone())));
    }
    cands.push((false, false, t_rows, o_rows, None));
    if swappable {
        if let Some(ix) = &t_idx {
            cands.push((true, true, o_rows, t_rows, Some(ix.clone())));
        }
        cands.push((true, false, o_rows, t_rows, None));
    }

    let costed: Vec<(f64, &Cand)> =
        cands.iter().map(|c| (nlj_cost(c.2, c.3, pairs, c.1), c)).collect();
    let (best_cost, best) =
        costed.iter().min_by(|a, b| a.0.total_cmp(&b.0)).map(|(c, x)| (*c, *x))?;

    let describe = |c: &Cand| -> String {
        let outer = &metas[if c.0 { or } else { tr }].binding;
        match (&c.4, c.1) {
            (Some(ix), true) => format!("outer {} probe {}", outer, ix),
            _ => format!("outer {} build inner", outer),
        }
    };
    let alternatives: Vec<String> = costed
        .iter()
        .filter(|(_, c)| !std::ptr::eq(*c, best))
        .map(|(cost, c)| format!("{}≈{}", describe(c), fmt_est(*cost)))
        .collect();
    let mut reason = format!(
        "est {} pairs ({pairs_src}); picked {}≈{}",
        fmt_est(pairs),
        describe(best),
        fmt_est(best_cost),
    );
    if !alternatives.is_empty() {
        reason.push_str(&format!("; rejected {}", alternatives.join(", ")));
    }
    if ests[tr].stale || ests[or].stale {
        reason.push_str("; STALE stats — estimates degraded");
    }
    Some(JoinChoice { swap: best.0, probe: best.1, est_pairs: pairs, est_cost: best_cost, reason })
}

// ---------------------------------------------------------------------------
// kNN pushdown detection
// ---------------------------------------------------------------------------

/// Recognize `SELECT ... FROM t ORDER BY SDO_DISTANCE(t.geom, const)
/// [ASC] LIMIT k` with no WHERE clause over an R-tree-indexed geometry
/// column. The R-tree's incremental best-first search produces exactly
/// the `(distance, rowid)`-ascending order a stable full sort would,
/// so the rewrite is result-identical while touching ~k rows instead
/// of all of them.
fn detect_knn(
    db: &Database,
    metas: &[RelMeta],
    ests: &[RelEstimate],
    sel: &Select,
) -> Option<KnnChoice> {
    if sel.from.len() != 1 || !sel.where_clause.is_empty() {
        return None;
    }
    let k = sel.limit?;
    if k == 0 {
        return None;
    }
    let [key] = sel.order_by.as_slice() else { return None };
    if key.descending {
        return None;
    }
    let Expr::FnCall { name, args } = &key.expr else { return None };
    if !name.eq_ignore_ascii_case("SDO_DISTANCE") || args.len() != 2 {
        return None;
    }
    // One argument is the table's geometry column, the other a
    // constant geometry (either order — distance is symmetric).
    let mut col: Option<usize> = None;
    let mut query: Option<Arc<Geometry>> = None;
    for a in args {
        match a {
            Expr::Column(cr) => {
                let (r, c) = crate::exec::resolve_column_meta(metas, cr).ok()?;
                if r != 0 || c == usize::MAX || col.is_some() {
                    return None;
                }
                col = Some(c);
            }
            e => {
                let v = eval_const(e).ok()?;
                query = Some(v.as_geometry().cloned()?);
            }
        }
    }
    let (col, query) = (col?, query?);
    let m = &metas[0];
    let (imeta, _) = db.index_on(m.table_name.as_deref()?, &m.columns[col])?;
    if imeta.kind != IndexKind::RTree {
        return None;
    }
    let n = ests[0].rows.max(1.0);
    let sort_cost = n * (C_ROW + C_EXACT) + n * n.log2().max(1.0) * C_CMP;
    let knn_cost = (k as f64) * C_KNN + n.log2().max(1.0) * C_PROBE;
    Some(KnnChoice {
        col,
        query,
        k,
        est_cost: knn_cost,
        reason: format!(
            "best-first search in {} visits ≈{k} rows (cost≈{}) instead of sorting {} (cost≈{})",
            imeta.index_name,
            fmt_est(knn_cost),
            fmt_est(n),
            fmt_est(sort_cost),
        ),
    })
}

// ---------------------------------------------------------------------------
// plan_select
// ---------------------------------------------------------------------------

/// Plan a SELECT: estimates, path choices, and the costed tree.
/// Never instantiates table functions or evaluates `CURSOR(...)`
/// arguments — safe for plain `EXPLAIN`.
pub(crate) fn plan_select(
    db: &Database,
    sel: &Select,
    env: &PlanEnv,
) -> Result<SelectPlan, DbError> {
    let (metas, ests) = plan_relations(db, sel)?;
    let mut conj = classify_conjuncts(db, &metas, sel);

    // Scan leaves (built on demand per strategy).
    let scan_node = |slot: usize| -> PlanNode {
        match &sel.from[slot] {
            FromItem::Table { name, .. } => PlanNode::new(
                format!("TABLE SCAN {}", name.to_ascii_uppercase()),
                ests[slot].rows,
                ests[slot].rows * C_ROW,
                ests[slot].stats_note(),
            ),
            FromItem::TableFunction { name, args, .. } => {
                let mut n = PlanNode::new(
                    format!("TABLE FUNCTION SCAN {}", name.to_ascii_uppercase()),
                    ests[slot].rows,
                    ests[slot].rows * C_ROW,
                    "pipelined; row estimate is a default (no stats for functions)".to_string(),
                );
                // Show CURSOR(...) argument plans as children — they
                // run through the same executor.
                for a in args {
                    if let TfArgAst::Cursor(sub) = a {
                        if let Ok(subplan) = plan_select(db, sub, env) {
                            let mut c = subplan.root;
                            c.label = format!("CURSOR: {}", c.label);
                            n.children.push(c);
                        }
                    }
                }
                n
            }
        }
    };

    // Pipelined COUNT(*) fast path.
    if sel.projection == [SelectItem::CountStar]
        && sel.where_clause.is_empty()
        && sel.order_by.is_empty()
        && sel.limit.is_none()
        && sel.from.len() == 1
        && matches!(sel.from[0], FromItem::TableFunction { .. })
    {
        let child = scan_node(0);
        let mut root = PlanNode::new(
            "PIPELINED COUNT",
            1.0,
            child.est_cost + child.est_rows * C_ROW,
            "streams batches; no materialization".to_string(),
        );
        root.children.push(child);
        return Ok(SelectPlan {
            root,
            join: None,
            knn: None,
            stream_slot: 0,
            filter_hints: Vec::new(),
            exchange: None,
        });
    }

    let mut join_choice: Option<JoinChoice> = None;
    let mut knn_choice: Option<KnnChoice> = None;
    let mut stream_slot = 0usize;

    // Core strategy node.
    let mut core: PlanNode;
    if let Some(subquery) = conj.rowid_pair {
        // The subquery is its own pipeline (typically a pipelined
        // table-function scan); exchanges never nest inside it.
        let sub = plan_select(db, subquery, &PlanEnv::serial())?;
        let pairs = sub.root.est_rows;
        let mut n = PlanNode::new(
            "ROWID-PAIR SEMIJOIN",
            pairs,
            sub.root.est_cost + pairs * (2.0 * C_FETCH + C_ROW),
            "fetches both base rows per pair from the subquery stream".to_string(),
        );
        n.children.push(sub.root);
        core = n;
    } else if let Some(jpos) = conj.spatial.iter().position(|s| s.is_join()) {
        let jp = conj.spatial.remove(jpos);
        let choice = choose_join(db, &metas, &ests, &jp);
        let (tr, _) = jp.target;
        let SpatialOperand::Column(or, _) = jp.other else { unreachable!() };
        let (outer_slot, inner_slot) = match &choice {
            Some(c) if c.swap => (or, tr),
            _ => (tr, or),
        };
        let (pairs, cost, reason, probe) = match &choice {
            Some(c) => (c.est_pairs, c.est_cost, c.reason.clone(), c.probe),
            None => (
                ests[tr].rows.max(ests[or].rows),
                nlj_cost(ests[tr].rows, ests[or].rows, ests[tr].rows.max(ests[or].rows), false),
                "no costing possible; default orientation".to_string(),
                false,
            ),
        };
        let mut n = PlanNode::new(format!("NESTED LOOP JOIN ({})", jp.name), pairs, cost, reason);
        n.children.push(scan_node(outer_slot));
        if probe {
            let ix = indexed(
                db,
                &metas,
                inner_slot,
                match &choice {
                    Some(c) if c.swap => jp.target.1,
                    _ => match jp.other {
                        SpatialOperand::Column(_, c) => c,
                        _ => unreachable!(),
                    },
                },
            )
            .unwrap_or_default();
            n.children.push(PlanNode::new(
                format!("INDEX PROBE {ix}"),
                pairs,
                0.0,
                "one probe per outer row; cost folded into the join".to_string(),
            ));
        } else {
            n.children.push(scan_node(inner_slot));
        }
        join_choice = choice;
        core = n;
    } else if sel.from.len() > 1 {
        // Cartesian product: stream the largest relation, materialize
        // the smaller ones (resident rows = sum of materialized sizes).
        stream_slot =
            (0..sel.from.len()).max_by(|&a, &b| ests[a].rows.total_cmp(&ests[b].rows)).unwrap_or(0);
        let out_rows: f64 = ests.iter().map(|e| e.rows.max(1.0)).product();
        let mat_rows: f64 =
            (0..sel.from.len()).filter(|&s| s != stream_slot).map(|s| ests[s].rows).sum();
        let mut n = PlanNode::new(
            "CARTESIAN PRODUCT",
            out_rows,
            out_rows * C_ROW + mat_rows * C_ROW,
            format!(
                "streams {} ({} rows, largest); materializes {} rows total",
                metas[stream_slot].binding,
                fmt_est(ests[stream_slot].rows),
                fmt_est(mat_rows)
            ),
        );
        n.children.push(scan_node(stream_slot));
        for s in 0..sel.from.len() {
            if s != stream_slot {
                n.children.push(scan_node(s));
            }
        }
        core = n;
    } else {
        core = scan_node(0);
    }

    // Filter stage: estimate output of the remaining spatial + residual
    // conjuncts; decide index-vs-scan per constant spatial predicate.
    let mut filter_hints: FilterHints = Vec::with_capacity(conj.spatial.len());
    if !conj.spatial.is_empty() || conj.residual > 0 {
        let mut rows = core.est_rows;
        let mut cost = core.est_cost;
        let mut notes: Vec<String> = Vec::new();
        for sp in &conj.spatial {
            let (tr, _) = sp.target;
            let (out, src) = filter_rows(&ests[tr], sp);
            let in_rows = ests[tr].rows.max(1.0);
            let sel_frac = (out / in_rows).clamp(0.0, 1.0);
            let has_index = matches!(sp.other, SpatialOperand::Const(_))
                && indexed(db, &metas, sp.target.0, sp.target.1).is_some();
            // An index prefilter pays one probe plus per-candidate
            // exact tests inside the index; the functional path pays an
            // exact test per input row. When the window keeps most of
            // the table, the probe is overhead on top of the same exact
            // work — scan instead.
            let index_cost = C_PROBE + out * C_EXACT + rows * C_ROW;
            let scan_cost = rows * (C_ROW + C_EXACT);
            let use_index = has_index && index_cost < scan_cost;
            filter_hints.push(use_index);
            let path = if use_index {
                format!(
                    "domain index prefilter (probe≈{} < scan≈{})",
                    fmt_est(index_cost),
                    fmt_est(scan_cost)
                )
            } else if has_index {
                format!(
                    "functional evaluation (scan≈{} <= probe≈{})",
                    fmt_est(scan_cost),
                    fmt_est(index_cost)
                )
            } else {
                "functional evaluation (no index)".to_string()
            };
            notes.push(format!("{} sel={:.3} [{}] via {}", sp.name, sel_frac, src, path));
            cost += if use_index { index_cost } else { scan_cost };
            rows *= sel_frac;
        }
        if conj.residual > 0 {
            // Residual comparisons: the classic 1/3 guess per conjunct.
            for _ in 0..conj.residual {
                cost += rows * C_ROW;
                rows /= 3.0;
            }
            notes.push(format!("{} residual conjunct(s) sel=0.333 each", conj.residual));
        }
        let mut f = PlanNode::new("FILTER", rows, cost, notes.join("; "));
        f.children.push(core);
        core = f;
    }

    // Exchange placement. The kNN pushdown (detected below) touches
    // ~k rows and never parallelizes; everything else is sited by
    // shape: semijoins fan out probe blocks, single-base-table
    // pipelines fan out scan morsels — under a sort, the workers run
    // the sort too and the exchange merges sorted runs. The driving
    // estimate is the *input* row count (base-table rows), because
    // morsels partition the input regardless of filter selectivity.
    let knn_detected =
        if sel.order_by.is_empty() { None } else { detect_knn(db, &metas, &ests, sel) };
    let mut exchange: Option<ExchangeChoice> = None;
    if knn_detected.is_none() {
        if conj.rowid_pair.is_some() {
            // The table-function subquery estimate is a default; the
            // base tables bound the real pair volume better.
            let drive = ests.iter().fold(0.0f64, |m, e| m.max(e.rows));
            exchange = choose_exchange(env, ExchangeSite::Probe, drive);
        } else if sel.from.len() == 1
            && matches!(sel.from[0], FromItem::Table { .. })
            && join_choice.is_none()
        {
            let site =
                if sel.order_by.is_empty() { ExchangeSite::Scan } else { ExchangeSite::Sort };
            exchange = choose_exchange(env, site, ests[0].rows);
        }
    }
    if let Some(x) = &exchange {
        if x.site != ExchangeSite::Sort {
            let mut e = PlanNode::new("EXCHANGE", core.est_rows, core.est_cost, x.reason.clone());
            e.children.push(core);
            core = e;
        }
    }

    // ORDER BY: either the kNN pushdown or a full sort.
    if !sel.order_by.is_empty() {
        if let Some(knn) = knn_detected {
            let mut n = PlanNode::new(
                format!("KNN SCAN {} (k={})", metas[0].binding, knn.k),
                (knn.k as f64).min(ests[0].rows),
                knn.est_cost,
                knn.reason.clone(),
            );
            // The pushdown replaces both the scan and the sort.
            n.children.push(PlanNode::new(
                "INDEX BEST-FIRST SEARCH".to_string(),
                (knn.k as f64).min(ests[0].rows),
                0.0,
                "incremental nearest-neighbor traversal".to_string(),
            ));
            knn_choice = Some(knn);
            core = n;
        } else {
            let n_in = core.est_rows.max(1.0);
            let mut s = PlanNode::new(
                format!("SORT [{} key(s)]", sel.order_by.len()),
                core.est_rows,
                core.est_cost + n_in * n_in.log2().max(1.0) * C_CMP,
                "blocking full sort; all input rows resident".to_string(),
            );
            s.children.push(core);
            core = s;
            if let Some(x) = &exchange {
                if x.site == ExchangeSite::Sort {
                    let mut e =
                        PlanNode::new("EXCHANGE", core.est_rows, core.est_cost, x.reason.clone());
                    e.children.push(core);
                    core = e;
                }
            }
        }
    }

    if let Some(k) = sel.limit {
        let rows = core.est_rows.min(k as f64);
        let mut l = PlanNode::new(
            format!("LIMIT {k}"),
            rows,
            core.est_cost,
            "early termination propagates close() down the pipeline".to_string(),
        );
        l.children.push(core);
        core = l;
    }

    if sel.projection == [SelectItem::CountStar] {
        let mut a = PlanNode::new("AGGREGATE COUNT(*)", 1.0, core.est_cost, String::new());
        a.children.push(core);
        core = a;
    }

    Ok(SelectPlan {
        root: core,
        join: join_choice,
        knn: knn_choice,
        stream_slot,
        filter_hints,
        exchange,
    })
}

/// Transpose a column-column spatial predicate so its second relation
/// drives the loop: `OP(a, b, extra)` becomes `OP(b, a, extra')` with
/// asymmetric `SDO_RELATE` masks transposed.
pub(crate) fn transpose_pred(jp: SpatialPred) -> Result<SpatialPred, DbError> {
    let SpatialOperand::Column(or, oc) = jp.other else {
        return Err(DbError::Plan("cannot transpose a constant-operand predicate".into()));
    };
    let extra = crate::exec::transpose_spatial_extra(&jp.name, &jp.extra)?;
    Ok(SpatialPred {
        name: jp.name,
        target: (or, oc),
        other: SpatialOperand::Column(jp.target.0, jp.target.1),
        extra,
    })
}
