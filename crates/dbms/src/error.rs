//! Engine-level errors.

use sdo_storage::StorageError;
use sdo_tablefunc::TfError;
use std::fmt;

/// Any error surfaced by the mini database engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// Table function failure.
    TableFunction(TfError),
    /// Geometry failure (parse/validate).
    Geometry(String),
    /// SQL lexing/parsing failure.
    Parse {
        /// Byte offset of the failure in the statement text.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Planner/executor failure (unknown column, unsupported shape...).
    Plan(String),
    /// Domain index failure.
    Index(String),
    /// Transaction failure (no active transaction, conflict, WAL I/O).
    Txn(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::TableFunction(e) => write!(f, "table function error: {e}"),
            DbError::Geometry(m) => write!(f, "geometry error: {m}"),
            DbError::Parse { offset, message } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            DbError::Plan(m) => write!(f, "planning error: {m}"),
            DbError::Index(m) => write!(f, "index error: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl From<TfError> for DbError {
    fn from(e: TfError) -> Self {
        DbError::TableFunction(e)
    }
}

impl From<sdo_geom::GeomError> for DbError {
    fn from(e: sdo_geom::GeomError) -> Self {
        DbError::Geometry(e.to_string())
    }
}
