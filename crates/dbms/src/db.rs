//! The database façade: catalog + registries + DML with index
//! maintenance.

use crate::error::DbError;
use crate::extensible::{DomainIndex, IndexType};
use parking_lot::RwLock;
use sdo_storage::{Catalog, Counters, IndexMetadata, RowId, Schema, Table, Value};
use sdo_tablefunc::{Row, TableFunction};
use std::collections::HashMap;
use std::sync::Arc;

/// A table-function argument at execution time.
pub enum TfArg {
    /// A scalar value argument.
    Scalar(Value),
    /// A materialized `CURSOR(SELECT ...)` argument.
    Cursor(Vec<Row>),
}

impl TfArg {
    /// The scalar value, or an error for cursor arguments.
    pub fn scalar(&self) -> Result<&Value, DbError> {
        match self {
            TfArg::Scalar(v) => Ok(v),
            TfArg::Cursor(_) => Err(DbError::Plan("expected scalar argument, got cursor".into())),
        }
    }

    /// The argument as a string.
    pub fn text(&self) -> Result<&str, DbError> {
        self.scalar()?.as_text().ok_or_else(|| DbError::Plan("expected string argument".into()))
    }

    /// The argument as an integer.
    pub fn integer(&self) -> Result<i64, DbError> {
        self.scalar()?.as_integer().ok_or_else(|| DbError::Plan("expected integer argument".into()))
    }

    /// The argument as a double (integers widen).
    pub fn double(&self) -> Result<f64, DbError> {
        self.scalar()?.as_double().ok_or_else(|| DbError::Plan("expected numeric argument".into()))
    }

    /// The materialized cursor rows, or an error for scalars.
    pub fn cursor(&self) -> Result<&[Row], DbError> {
        match self {
            TfArg::Cursor(rows) => Ok(rows),
            TfArg::Scalar(_) => Err(DbError::Plan("expected cursor argument, got scalar".into())),
        }
    }
}

/// A table function instance plus the column names of the rows it
/// produces (Oracle: the collection type's attributes).
pub struct TfInstance {
    /// The pipelined function, ready for `start`.
    pub func: Box<dyn TableFunction>,
    /// Output column names, in row order.
    pub columns: Vec<String>,
}

/// Factory signature for registered table functions.
pub type TfFactory = dyn Fn(&Database, Vec<TfArg>) -> Result<TfInstance, DbError> + Send + Sync;

/// Result set of a query: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows (empty for DDL).
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// An empty (DDL-style) result.
    pub fn empty() -> Self {
        QueryResult { columns: Vec::new(), rows: Vec::new() }
    }

    /// Convenience: the single integer cell of a `COUNT(*)` result.
    pub fn count(&self) -> Option<i64> {
        self.rows.first().and_then(|r| r.first()).and_then(|v| v.as_integer())
    }
}

/// Shared handle to a live domain-index instance.
pub type IndexHandle = Arc<RwLock<Box<dyn DomainIndex>>>;

/// The top-level engine object: a catalog, the extensible-indexing
/// registries, and the table-function registry.
pub struct Database {
    catalog: Catalog,
    indextypes: RwLock<HashMap<String, Arc<dyn IndexType>>>,
    indexes: RwLock<HashMap<String, IndexHandle>>,
    table_functions: RwLock<HashMap<String, Arc<TfFactory>>>,
    last_profile: RwLock<Option<sdo_obs::QueryProfile>>,
    options: RwLock<SessionOptions>,
}

/// Per-session executor options, set via `ALTER SESSION SET ...`.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// `materialize = on` routes SELECTs through the legacy
    /// materialize-everything executor (compatibility / benchmarking);
    /// the default is the streaming batch pipeline.
    pub materialize: bool,
    /// Resident-row budget per statement, enforced by the executor's
    /// [`sdo_obs::MemoryGauge`]. Exceeding it fails the query, naming
    /// the operator that tipped it over.
    pub max_resident_rows: u64,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions { materialize: false, max_resident_rows: 5_000_000 }
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// A fresh session with empty catalog and registries.
    pub fn new() -> Self {
        Database {
            catalog: Catalog::new(),
            indextypes: RwLock::new(HashMap::new()),
            indexes: RwLock::new(HashMap::new()),
            table_functions: RwLock::new(HashMap::new()),
            last_profile: RwLock::new(None),
            options: RwLock::new(SessionOptions::default()),
        }
    }

    /// Current session options (copy).
    pub fn options(&self) -> SessionOptions {
        self.options.read().clone()
    }

    /// Set a session option by name. Recognised options:
    /// `materialize` (`on`/`off`) and `max_resident_rows` (a positive
    /// row count).
    pub fn set_option(&self, name: &str, value: &str) -> Result<(), DbError> {
        let mut opts = self.options.write();
        match name.to_ascii_lowercase().as_str() {
            "materialize" => match value.to_ascii_lowercase().as_str() {
                "on" | "true" | "1" => opts.materialize = true,
                "off" | "false" | "0" => opts.materialize = false,
                other => {
                    return Err(DbError::Plan(format!(
                        "invalid value '{other}' for MATERIALIZE (expected on/off)"
                    )))
                }
            },
            "max_resident_rows" => {
                let n: i64 = value.parse().map_err(|_| {
                    DbError::Plan(format!("invalid value '{value}' for MAX_RESIDENT_ROWS"))
                })?;
                if n <= 0 {
                    return Err(DbError::Plan(
                        "MAX_RESIDENT_ROWS must be a positive row count".into(),
                    ));
                }
                opts.max_resident_rows = n as u64;
            }
            other => return Err(DbError::Plan(format!("unknown session option '{other}'"))),
        }
        Ok(())
    }

    /// The operator profile of the most recent statement executed via
    /// [`Database::execute`], if any. Every statement records one; use
    /// `EXPLAIN ANALYZE` to render it as result rows instead.
    pub fn last_profile(&self) -> Option<sdo_obs::QueryProfile> {
        self.last_profile.read().clone()
    }

    /// Store the profile of a finished statement.
    pub(crate) fn store_profile(&self, profile: sdo_obs::QueryProfile) {
        *self.last_profile.write() = Some(profile);
    }

    /// The underlying storage catalog.
    #[inline]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session-wide work counters.
    #[inline]
    pub fn counters(&self) -> &Arc<Counters> {
        self.catalog.counters()
    }

    // -- registries -----------------------------------------------------------

    /// Register an indextype under a name (e.g. `SPATIAL_INDEX`).
    pub fn register_indextype(&self, name: &str, it: Arc<dyn IndexType>) {
        self.indextypes.write().insert(name.to_ascii_uppercase(), it);
    }

    /// Register a table function callable from `FROM TABLE(name(...))`.
    pub fn register_table_function(
        &self,
        name: &str,
        factory: impl Fn(&Database, Vec<TfArg>) -> Result<TfInstance, DbError> + Send + Sync + 'static,
    ) {
        self.table_functions.write().insert(name.to_ascii_uppercase(), Arc::new(factory));
    }

    /// Instantiate a registered table function.
    pub fn make_table_function(&self, name: &str, args: Vec<TfArg>) -> Result<TfInstance, DbError> {
        let factory = self
            .table_functions
            .read()
            .get(&name.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| DbError::Plan(format!("unknown table function {name}")))?;
        factory(self, args)
    }

    /// The operator names every registered indextype implements.
    pub fn operator_names(&self) -> Vec<String> {
        self.indextypes
            .read()
            .values()
            .flat_map(|it| it.operators().iter().map(|s| s.to_string()))
            .collect()
    }

    // -- tables ----------------------------------------------------------------

    /// Create a table (fails if the name is taken).
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<(), DbError> {
        self.catalog.create_table(name, schema)?;
        Ok(())
    }

    /// Look up a table handle by name (case-insensitive).
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Table>>, DbError> {
        Ok(self.catalog.table(name)?)
    }

    /// Drop a table along with its domain indexes and metadata.
    pub fn drop_table(&self, name: &str) -> Result<(), DbError> {
        // Drop dependent domain indexes first.
        let dependent: Vec<String> = {
            let indexes = self.indexes.read();
            indexes
                .keys()
                .filter(|iname| {
                    self.catalog
                        .index_metadata(iname)
                        .map(|m| m.table_name.eq_ignore_ascii_case(name))
                        .unwrap_or(false)
                })
                .cloned()
                .collect()
        };
        for iname in dependent {
            self.indexes.write().remove(&iname);
        }
        self.catalog.drop_table(name)?;
        Ok(())
    }

    /// Insert a row, maintaining every domain index on the table —
    /// the automatic index-update trigger of extensible indexing.
    pub fn insert_row(&self, table: &str, row: Vec<Value>) -> Result<RowId, DbError> {
        let t = self.table(table)?;
        let rid = t.write().insert(row.clone())?;
        for idx in self.indexes_on_table(table) {
            idx.write().on_insert(rid, &row)?;
        }
        Ok(rid)
    }

    /// Update a row in place, maintaining domain indexes (Oracle §3:
    /// "inserts and updates ... automatically trigger an update of the
    /// corresponding spatial indexes").
    pub fn update_row(&self, table: &str, rid: RowId, row: Vec<Value>) -> Result<(), DbError> {
        let t = self.table(table)?;
        let old = t.read().get(rid)?;
        for idx in self.indexes_on_table(table) {
            let mut idx = idx.write();
            idx.on_delete(rid, &old)?;
            idx.on_insert(rid, &row)?;
        }
        t.write().update(rid, row)?;
        Ok(())
    }

    /// Delete a row by rowid, maintaining domain indexes.
    pub fn delete_row(&self, table: &str, rid: RowId) -> Result<(), DbError> {
        let t = self.table(table)?;
        let row = t.read().get(rid)?;
        for idx in self.indexes_on_table(table) {
            idx.write().on_delete(rid, &row)?;
        }
        t.write().delete(rid)?;
        Ok(())
    }

    // -- domain indexes -----------------------------------------------------------

    /// Create a domain index through a registered indextype. The
    /// indextype registers its own [`IndexMetadata`] row.
    pub fn create_domain_index(
        &self,
        index_name: &str,
        table: &str,
        column: &str,
        indextype: &str,
        params: &str,
        dop: usize,
    ) -> Result<(), DbError> {
        let it = self
            .indextypes
            .read()
            .get(&indextype.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| DbError::Plan(format!("unknown indextype {indextype}")))?;
        let key = index_name.to_ascii_uppercase();
        if self.indexes.read().contains_key(&key) {
            return Err(DbError::Index(format!("index {key} already exists")));
        }
        let index = it.create_index(self, &key, table, column, params, dop)?;
        self.indexes.write().insert(key, Arc::new(RwLock::new(index)));
        Ok(())
    }

    /// Drop a domain index (instance + metadata).
    pub fn drop_domain_index(&self, index_name: &str) -> Result<(), DbError> {
        let key = index_name.to_ascii_uppercase();
        self.indexes
            .write()
            .remove(&key)
            .ok_or_else(|| DbError::Index(format!("no such index {key}")))?;
        let _ = self.catalog.drop_index(&key);
        Ok(())
    }

    /// Fetch a live index instance by name.
    pub fn index_instance(&self, index_name: &str) -> Option<IndexHandle> {
        self.indexes.read().get(&index_name.to_ascii_uppercase()).cloned()
    }

    /// The index (metadata + instance) on `(table, column)`, if any.
    pub fn index_on(&self, table: &str, column: &str) -> Option<(IndexMetadata, IndexHandle)> {
        let meta = self.catalog.index_on(table, column)?;
        let inst = self.index_instance(&meta.index_name)?;
        Some((meta, inst))
    }

    fn indexes_on_table(&self, table: &str) -> Vec<IndexHandle> {
        let indexes = self.indexes.read();
        indexes
            .iter()
            .filter(|(name, _)| {
                self.catalog
                    .index_metadata(name)
                    .map(|m| m.table_name.eq_ignore_ascii_case(table))
                    .unwrap_or(false)
            })
            .map(|(_, v)| Arc::clone(v))
            .collect()
    }

    // -- snapshots --------------------------------------------------------------

    /// Serialize every table and index-metadata row into snapshot
    /// bytes (see [`sdo_storage::snapshot`]). Domain indexes are not
    /// serialized; they rebuild from their recorded parameters on load.
    pub fn save_snapshot(&self) -> bytes::Bytes {
        let metas: Vec<IndexMetadata> = {
            let indexes = self.indexes.read();
            indexes.keys().filter_map(|name| self.catalog.index_metadata(name).ok()).collect()
        };
        sdo_storage::snapshot::save_catalog(&self.catalog, &metas)
    }

    /// Restore a snapshot into this (empty) database, rebuilding every
    /// domain index through the registered indextypes. The indextypes
    /// used at save time must be registered before calling this.
    pub fn load_snapshot(&self, bytes: impl bytes::Buf) -> Result<(), DbError> {
        let directives = sdo_storage::snapshot::load_catalog(&self.catalog, bytes)?;
        for d in directives {
            // All snapshot-recorded spatial indexes came from the
            // SPATIAL_INDEX indextype in this codebase.
            self.create_domain_index(
                &d.index_name,
                &d.table_name,
                &d.column_name,
                "SPATIAL_INDEX",
                &d.parameters,
                d.create_dop,
            )?;
        }
        Ok(())
    }

    // -- SQL ------------------------------------------------------------------------

    /// Parse and execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<QueryResult, DbError> {
        let stmt = crate::sql::parse(sql)?;
        crate::exec::execute(self, &stmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_storage::DataType;

    #[test]
    fn registry_roundtrips() {
        let db = Database::new();
        db.register_table_function("NUMS", |_db, args| {
            let n = args[0].integer()?;
            Ok(TfInstance {
                func: Box::new(sdo_tablefunc::table_function::BufferedFn::new(move || {
                    Ok((0..n).map(|i| vec![Value::Integer(i)]).collect())
                })),
                columns: vec!["N".into()],
            })
        });
        let mut inst =
            db.make_table_function("nums", vec![TfArg::Scalar(Value::Integer(3))]).unwrap();
        let rows = sdo_tablefunc::collect_all(inst.func.as_mut(), 10).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(inst.columns, vec!["N".to_string()]);
        assert!(db.make_table_function("missing", vec![]).is_err());
    }

    #[test]
    fn dml_without_indexes() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("ID", DataType::Integer)])).unwrap();
        let rid = db.insert_row("t", vec![Value::Integer(1)]).unwrap();
        assert_eq!(db.table("t").unwrap().read().len(), 1);
        db.delete_row("t", rid).unwrap();
        assert_eq!(db.table("t").unwrap().read().len(), 0);
        assert!(db.delete_row("t", rid).is_err());
    }

    #[test]
    fn tfarg_accessors() {
        assert_eq!(TfArg::Scalar(Value::Integer(4)).integer().unwrap(), 4);
        assert_eq!(TfArg::Scalar(Value::Double(1.5)).double().unwrap(), 1.5);
        assert_eq!(TfArg::Scalar(Value::from("x")).text().unwrap(), "x");
        assert!(TfArg::Scalar(Value::from("x")).integer().is_err());
        assert!(TfArg::Cursor(vec![]).scalar().is_err());
        assert_eq!(TfArg::Cursor(vec![vec![]]).cursor().unwrap().len(), 1);
    }
}
