//! The database façade: catalog + registries + transactional DML with
//! index maintenance, WAL durability, and crash recovery.

use crate::error::DbError;
use crate::extensible::{DomainIndex, IndexType};
use crate::session::{Session, SessionState};
use parking_lot::{Mutex, RwLock};
use sdo_storage::snapshot::IndexDirective;
use sdo_storage::{
    Catalog, Counters, IndexMetadata, RowId, Schema, Snapshot, StorageError, Table, TableStats,
    Value, Wal, WalRecord, ANALYZE_SAMPLE,
};
use sdo_tablefunc::{Row, TableFunction};
use sdo_txn::recovery::RecoveryReport;
use sdo_txn::{TxnManager, TxnToken};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Checkpoint base image file name inside a database directory.
pub const BASE_FILE: &str = "base.sdb";
/// Write-ahead log file name inside a database directory.
pub const WAL_FILE: &str = "wal.log";

/// A table-function argument at execution time.
pub enum TfArg {
    /// A scalar value argument.
    Scalar(Value),
    /// A materialized `CURSOR(SELECT ...)` argument.
    Cursor(Vec<Row>),
}

impl TfArg {
    /// The scalar value, or an error for cursor arguments.
    pub fn scalar(&self) -> Result<&Value, DbError> {
        match self {
            TfArg::Scalar(v) => Ok(v),
            TfArg::Cursor(_) => Err(DbError::Plan("expected scalar argument, got cursor".into())),
        }
    }

    /// The argument as a string.
    pub fn text(&self) -> Result<&str, DbError> {
        self.scalar()?.as_text().ok_or_else(|| DbError::Plan("expected string argument".into()))
    }

    /// The argument as an integer.
    pub fn integer(&self) -> Result<i64, DbError> {
        self.scalar()?.as_integer().ok_or_else(|| DbError::Plan("expected integer argument".into()))
    }

    /// The argument as a double (integers widen).
    pub fn double(&self) -> Result<f64, DbError> {
        self.scalar()?.as_double().ok_or_else(|| DbError::Plan("expected numeric argument".into()))
    }

    /// The materialized cursor rows, or an error for scalars.
    pub fn cursor(&self) -> Result<&[Row], DbError> {
        match self {
            TfArg::Cursor(rows) => Ok(rows),
            TfArg::Scalar(_) => Err(DbError::Plan("expected cursor argument, got scalar".into())),
        }
    }
}

/// A table function instance plus the column names of the rows it
/// produces (Oracle: the collection type's attributes).
pub struct TfInstance {
    /// The pipelined function, ready for `start`.
    pub func: Box<dyn TableFunction>,
    /// Output column names, in row order.
    pub columns: Vec<String>,
}

/// Factory signature for registered table functions.
pub type TfFactory = dyn Fn(&Database, Vec<TfArg>) -> Result<TfInstance, DbError> + Send + Sync;

/// Result set of a query: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows (empty for DDL).
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// An empty (DDL-style) result.
    pub fn empty() -> Self {
        QueryResult { columns: Vec::new(), rows: Vec::new() }
    }

    /// Convenience: the single integer cell of a `COUNT(*)` result.
    pub fn count(&self) -> Option<i64> {
        self.rows.first().and_then(|r| r.first()).and_then(|v| v.as_integer())
    }
}

/// Shared handle to a live domain-index instance.
pub type IndexHandle = Arc<RwLock<Box<dyn DomainIndex>>>;

/// The top-level engine object: a catalog, the extensible-indexing
/// registries, the table-function registry, and the transaction
/// subsystem (MVCC manager + optional write-ahead log).
pub struct Database {
    catalog: Catalog,
    txn: TxnManager,
    /// Write-ahead log; `None` for purely in-memory databases.
    wal: RwLock<Option<Arc<Wal>>>,
    /// Directory backing [`Database::open`]; `None` when in-memory.
    data_dir: RwLock<Option<PathBuf>>,
    /// Domain indexes recovery says to rebuild (see
    /// [`Database::recover_indexes`]).
    pending_indexes: Mutex<Vec<IndexDirective>>,
    /// What the last [`Database::open`] replayed, for smoke tests.
    last_recovery: RwLock<Option<RecoveryReport>>,
    indextypes: RwLock<HashMap<String, Arc<dyn IndexType>>>,
    indexes: RwLock<HashMap<String, IndexHandle>>,
    table_functions: RwLock<HashMap<String, Arc<TfFactory>>>,
    /// Engine-level option defaults; new sessions start from a copy.
    default_options: RwLock<SessionOptions>,
    /// The built-in session behind the connectionless APIs
    /// ([`Database::execute`], [`Database::begin_txn`], ...). Session
    /// id 0; behaves exactly like the pre-session single-connection
    /// engine.
    default_session: Arc<SessionState>,
    /// Live [`Session`] handles (the default session not included).
    session_count: AtomicU64,
    /// Next session id to hand out (0 is the default session).
    next_session_id: AtomicU64,
}

/// When a committed transaction's WAL records are forced to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// `fsync` the log up to the commit record before acknowledging
    /// the commit (the default): a committed transaction survives a
    /// crash.
    Fsync,
    /// Append without syncing: group commit at OS-buffer speed; a
    /// crash may lose the most recent commits, but recovery still
    /// yields a clean serial prefix.
    Buffered,
}

/// Per-session executor options, set via `ALTER SESSION SET ...`.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// `materialize = on` routes SELECTs through the legacy
    /// materialize-everything executor (compatibility / benchmarking);
    /// the default is the streaming batch pipeline.
    pub materialize: bool,
    /// Resident-row budget per statement, enforced by the executor's
    /// [`sdo_obs::MemoryGauge`]. Exceeding it fails the query, naming
    /// the operator that tipped it over.
    pub max_resident_rows: u64,
    /// Commit durability policy (`durability = fsync | buffered`).
    pub durability: Durability,
    /// Ceiling on intra-query degree of parallelism
    /// (`parallel_dop = 1..=64`). The planner may pick any dop up to
    /// this when it places an exchange; `1` forces fully serial
    /// execution. Defaults to the machine's available parallelism,
    /// clamped to `[1, 16]`.
    pub parallel_dop: usize,
}

/// Hard ceiling for `ALTER SESSION SET parallel_dop` — more workers
/// than this never helps and only fragments morsels.
pub(crate) const MAX_PARALLEL_DOP: usize = 64;

impl Default for SessionOptions {
    fn default() -> Self {
        let dop = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, 16);
        SessionOptions {
            materialize: false,
            max_resident_rows: 5_000_000,
            durability: Durability::Fsync,
            parallel_dop: dop,
        }
    }
}

impl SessionOptions {
    /// Set an option by name. Recognised options: `materialize`
    /// (`on`/`off`), `max_resident_rows` (a positive row count, full
    /// `u64` range), `durability` (`fsync`/`buffered`), and
    /// `parallel_dop` (1..=64). Unknown options and unknown values
    /// both fail, naming the option.
    pub fn set(&mut self, name: &str, value: &str) -> Result<(), DbError> {
        match name.to_ascii_lowercase().as_str() {
            "materialize" => match value.to_ascii_lowercase().as_str() {
                "on" | "true" | "1" => self.materialize = true,
                "off" | "false" | "0" => self.materialize = false,
                other => {
                    return Err(DbError::Plan(format!(
                        "invalid value '{other}' for MATERIALIZE (expected on/off)"
                    )))
                }
            },
            "max_resident_rows" => {
                // u64, not i64: the budget is a row *count*, and legal
                // values above i64::MAX must not be rejected.
                let n: u64 = value.parse().map_err(|_| {
                    DbError::Plan(format!("invalid value '{value}' for MAX_RESIDENT_ROWS"))
                })?;
                if n == 0 {
                    return Err(DbError::Plan(
                        "MAX_RESIDENT_ROWS must be a positive row count".into(),
                    ));
                }
                self.max_resident_rows = n;
            }
            "parallel_dop" => {
                let n: usize = value.parse().map_err(|_| {
                    DbError::Plan(format!("invalid value '{value}' for PARALLEL_DOP"))
                })?;
                if n == 0 || n > MAX_PARALLEL_DOP {
                    return Err(DbError::Plan(format!(
                        "PARALLEL_DOP must be between 1 and {MAX_PARALLEL_DOP}"
                    )));
                }
                self.parallel_dop = n;
            }
            "durability" => match value.to_ascii_lowercase().as_str() {
                "fsync" => self.durability = Durability::Fsync,
                "buffered" => self.durability = Durability::Buffered,
                other => {
                    return Err(DbError::Plan(format!(
                        "invalid value '{other}' for DURABILITY (expected fsync/buffered)"
                    )))
                }
            },
            other => return Err(DbError::Plan(format!("unknown session option '{other}'"))),
        }
        Ok(())
    }
}

/// Book-keeping for one open transaction: the MVCC token plus the
/// side effects that must be applied or undone at commit/abort.
///
/// Domain-index maintenance enlists here. `on_insert` runs eagerly at
/// DML time (index probes tolerate entries for uncommitted rows —
/// every candidate funnels through a snapshot-aware heap fetch that
/// skips invisible rows), recording an undo `on_delete` for abort.
/// `on_delete` is deferred to after the commit point, so readers on
/// older snapshots never miss entries for rows they can still see.
pub(crate) struct TxnCtx {
    token: TxnToken,
    /// Commit durability, captured from the owning session's options
    /// when the transaction began — a concurrent `ALTER SESSION` in
    /// another session must not change this commit's policy.
    durability: Durability,
    /// Whether the WAL `Begin` record has been appended. Lazy: a
    /// read-only transaction logs nothing at all.
    began_logged: bool,
    /// `on_delete(rid, row)` undos to run if the transaction aborts.
    abort_index_ops: Vec<(IndexHandle, RowId, Vec<Value>)>,
    /// `on_delete(rid, row)` to run after the commit point.
    commit_index_ops: Vec<(IndexHandle, RowId, Vec<Value>)>,
    /// Net live-row delta per (uppercased) table, applied at commit.
    live_deltas: HashMap<String, i64>,
}

/// RAII handle for an explicit transaction opened with
/// [`Database::begin`]. Dropping the handle without calling
/// [`Txn::commit`] rolls the transaction back.
///
/// Unlike the SQL session transaction (`BEGIN`/`COMMIT` statements,
/// one per session), any number of `Txn` handles may run concurrently
/// on different threads; conflicts surface as
/// [`StorageError::WriteConflict`].
pub struct Txn<'a> {
    db: &'a Database,
    ctx: Option<TxnCtx>,
}

impl Txn<'_> {
    /// The read snapshot this transaction runs under.
    pub fn snapshot(&self) -> Snapshot {
        self.ctx.as_ref().expect("open transaction").token.snap
    }

    /// Insert a row within this transaction.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<RowId, DbError> {
        let ctx = self.ctx.as_mut().expect("open transaction");
        self.db.txn_insert(ctx, table, row)
    }

    /// Update a row within this transaction (first-updater-wins).
    pub fn update(&mut self, table: &str, rid: RowId, row: Vec<Value>) -> Result<(), DbError> {
        let ctx = self.ctx.as_mut().expect("open transaction");
        self.db.txn_update(ctx, table, rid, row)
    }

    /// Delete a row within this transaction (first-updater-wins).
    pub fn delete(&mut self, table: &str, rid: RowId) -> Result<(), DbError> {
        let ctx = self.ctx.as_mut().expect("open transaction");
        self.db.txn_delete(ctx, table, rid)
    }

    /// Durably commit: all of this transaction's writes become visible
    /// atomically.
    pub fn commit(mut self) -> Result<(), DbError> {
        self.db.commit_ctx(self.ctx.take().expect("open transaction"))
    }

    /// Roll the transaction back explicitly.
    pub fn rollback(mut self) {
        self.db.abort_ctx(self.ctx.take().expect("open transaction"));
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            self.db.abort_ctx(ctx);
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// A fresh in-memory session with empty catalog and registries
    /// (no WAL; use [`Database::open`] for a durable database).
    pub fn new() -> Self {
        let catalog = Catalog::new();
        let txn = TxnManager::new(Arc::clone(catalog.status()), Arc::clone(catalog.counters()));
        Database {
            catalog,
            txn,
            wal: RwLock::new(None),
            data_dir: RwLock::new(None),
            pending_indexes: Mutex::new(Vec::new()),
            last_recovery: RwLock::new(None),
            indextypes: RwLock::new(HashMap::new()),
            indexes: RwLock::new(HashMap::new()),
            table_functions: RwLock::new(HashMap::new()),
            default_options: RwLock::new(SessionOptions::default()),
            default_session: Arc::new(SessionState::new(0, SessionOptions::default())),
            session_count: AtomicU64::new(0),
            next_session_id: AtomicU64::new(1),
        }
    }

    // -- sessions -------------------------------------------------------------

    /// Open a new session: a connection-scoped view of this engine
    /// with its own options (copied from the engine defaults), its own
    /// explicit-transaction slot, profile slot, and prepared
    /// statements. Any number may run concurrently.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::attach(Arc::clone(self))
    }

    /// Number of live [`Session`] handles (the built-in default
    /// session is not counted).
    pub fn session_count(&self) -> u64 {
        self.session_count.load(Ordering::Relaxed)
    }

    /// Engine-level option defaults that new sessions start from.
    pub fn default_options(&self) -> SessionOptions {
        self.default_options.read().clone()
    }

    /// Change an engine-level default. Affects sessions opened later;
    /// existing sessions (including the default session) keep their
    /// current options.
    pub fn set_default_option(&self, name: &str, value: &str) -> Result<(), DbError> {
        self.default_options.write().set(name, value)
    }

    pub(crate) fn default_session_state(&self) -> &Arc<SessionState> {
        &self.default_session
    }

    pub(crate) fn new_session_state(&self) -> Arc<SessionState> {
        let id = self.next_session_id.fetch_add(1, Ordering::Relaxed);
        let options = self.default_options.read().clone();
        self.session_count.fetch_add(1, Ordering::Relaxed);
        Arc::new(SessionState::new(id, options))
    }

    pub(crate) fn release_session(&self) {
        self.session_count.fetch_sub(1, Ordering::Relaxed);
    }

    /// Open (or create) a durable database in `dir`.
    ///
    /// Reads the checkpoint base image (if any), replays the WAL's
    /// durable record prefix over it — committed transactions redo in
    /// full, uncommitted ones are discarded — and attaches the log for
    /// subsequent writes. Domain indexes are *not* live yet: register
    /// the indextypes the database was created with, then call
    /// [`Database::recover_indexes`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Database, DbError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| StorageError::Io(format!("create {}: {e}", dir.display())))?;
        let db = Database::new();

        let base_path = dir.join(BASE_FILE);
        let mut directives: Vec<IndexDirective> = Vec::new();
        if base_path.exists() {
            let payload = sdo_storage::pager::read_base(&base_path)?;
            directives = sdo_storage::snapshot::load_catalog(&db.catalog, &payload[..])?;
        }

        let wal_path = dir.join(WAL_FILE);
        let records =
            if wal_path.exists() { sdo_storage::wal::read_wal(&wal_path)? } else { Vec::new() };
        let report = sdo_txn::recovery::replay(&records, &db.catalog)?;
        // Base-image indexes dropped later in the log must not be
        // rebuilt; WAL-created ones append after the survivors.
        for rec in &records {
            match rec {
                WalRecord::DropIndex { name } => {
                    directives.retain(|d| !d.index_name.eq_ignore_ascii_case(name));
                }
                WalRecord::DropTable { name } => {
                    directives.retain(|d| !d.table_name.eq_ignore_ascii_case(name));
                }
                _ => {}
            }
        }
        directives.extend(report.directives.iter().cloned());

        // New transaction ids must not collide with ids still in the
        // log: a second recovery would otherwise mix the DML of an old
        // committed transaction into a new one with the same id.
        let max_txid = records.iter().filter_map(|r| r.txid()).max().unwrap_or(0);
        let status = db.catalog.status();
        while (status.allocated() as u64) < max_txid {
            let t = status.begin();
            status.abort(t);
        }

        let wal = Wal::open(&wal_path, Arc::clone(db.catalog.counters()))?;
        *db.wal.write() = Some(Arc::new(wal));
        *db.data_dir.write() = Some(dir.to_path_buf());
        *db.pending_indexes.lock() = directives;
        *db.last_recovery.write() = Some(report);
        Ok(db)
    }

    /// Rebuild the domain indexes recorded by recovery, through the
    /// (now registered) indextypes. Returns how many were rebuilt.
    ///
    /// Each index rebuilds from the recovered table, which by
    /// construction equals a fresh build over the committed state.
    pub fn recover_indexes(&self) -> Result<usize, DbError> {
        let directives: Vec<IndexDirective> = std::mem::take(&mut *self.pending_indexes.lock());
        let n = directives.len();
        for d in directives {
            self.create_domain_index_unlogged(
                &d.index_name,
                &d.table_name,
                &d.column_name,
                "SPATIAL_INDEX",
                &d.parameters,
                d.create_dop,
            )?;
        }
        Ok(n)
    }

    /// What the last [`Database::open`] replayed, if this database was
    /// opened from a directory.
    pub fn last_recovery(&self) -> Option<RecoveryReport> {
        self.last_recovery.read().clone()
    }

    /// Flush a checkpoint: write the full catalog (tables + index
    /// metadata) as the new base image, then truncate the WAL.
    ///
    /// The caller must quiesce writers first — checkpointing refuses
    /// to run while any transaction is in flight, because the base
    /// image is a `LATEST`-snapshot serialization.
    pub fn checkpoint(&self) -> Result<(), DbError> {
        // Open session transactions hold a begun MVCC token, so
        // `active_count` covers explicit SQL transactions on every
        // session as well as Rust `Txn` handles.
        if self.txn.active_count() > 0 {
            return Err(DbError::Txn("checkpoint requires no in-flight transactions".into()));
        }
        let dir = self.data_dir.read().clone().ok_or_else(|| {
            DbError::Txn("checkpoint requires a directory-backed database (Database::open)".into())
        })?;
        let payload = self.save_snapshot();
        sdo_storage::pager::write_base(dir.join(BASE_FILE), &payload)?;
        if let Some(w) = self.wal_handle() {
            w.truncate()?;
        }
        Ok(())
    }

    /// Current options of the default session (copy). Connection
    /// sessions carry their own options; see [`Session::options`].
    pub fn options(&self) -> SessionOptions {
        self.default_session.options.read().clone()
    }

    /// Set an option on the default session (see
    /// [`SessionOptions::set`] for the recognised names). Connection
    /// sessions are unaffected; use [`Session::set_option`] or
    /// [`Database::set_default_option`] for those.
    pub fn set_option(&self, name: &str, value: &str) -> Result<(), DbError> {
        self.default_session.options.write().set(name, value)
    }

    /// The operator profile of the most recent statement executed via
    /// [`Database::execute`], if any. Every statement records one; use
    /// `EXPLAIN ANALYZE` to render it as result rows instead.
    /// Per-connection profiles live on [`Session::last_profile`].
    pub fn last_profile(&self) -> Option<sdo_obs::QueryProfile> {
        self.default_session.last_profile.read().clone()
    }

    /// The underlying storage catalog.
    #[inline]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session-wide work counters.
    #[inline]
    pub fn counters(&self) -> &Arc<Counters> {
        self.catalog.counters()
    }

    // -- registries -----------------------------------------------------------

    /// Register an indextype under a name (e.g. `SPATIAL_INDEX`).
    pub fn register_indextype(&self, name: &str, it: Arc<dyn IndexType>) {
        self.indextypes.write().insert(name.to_ascii_uppercase(), it);
    }

    /// Register a table function callable from `FROM TABLE(name(...))`.
    pub fn register_table_function(
        &self,
        name: &str,
        factory: impl Fn(&Database, Vec<TfArg>) -> Result<TfInstance, DbError> + Send + Sync + 'static,
    ) {
        self.table_functions.write().insert(name.to_ascii_uppercase(), Arc::new(factory));
    }

    /// Instantiate a registered table function.
    pub fn make_table_function(&self, name: &str, args: Vec<TfArg>) -> Result<TfInstance, DbError> {
        let factory = self
            .table_functions
            .read()
            .get(&name.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| DbError::Plan(format!("unknown table function {name}")))?;
        factory(self, args)
    }

    /// The operator names every registered indextype implements.
    pub fn operator_names(&self) -> Vec<String> {
        self.indextypes
            .read()
            .values()
            .flat_map(|it| it.operators().iter().map(|s| s.to_string()))
            .collect()
    }

    // -- tables ----------------------------------------------------------------

    /// Create a table (fails if the name is taken). DDL autocommits:
    /// it is logged and durable immediately, and is rejected inside an
    /// explicit transaction.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<(), DbError> {
        self.create_table_in(&self.default_session, name, schema)
    }

    pub(crate) fn create_table_in(
        &self,
        sess: &SessionState,
        name: &str,
        schema: Schema,
    ) -> Result<(), DbError> {
        Self::reject_in_txn(sess, "CREATE TABLE")?;
        self.catalog.create_table(name, schema.clone())?;
        self.log_ddl(
            &WalRecord::CreateTable { name: name.to_ascii_uppercase(), schema },
            sess.options.read().durability,
        )?;
        Ok(())
    }

    fn reject_in_txn(sess: &SessionState, what: &str) -> Result<(), DbError> {
        if sess.txn.lock().is_some() {
            return Err(DbError::Txn(format!(
                "{what} is not allowed inside an explicit transaction (DDL autocommits)"
            )));
        }
        Ok(())
    }

    /// Look up a table handle by name (case-insensitive).
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Table>>, DbError> {
        Ok(self.catalog.table(name)?)
    }

    /// Drop a table along with its domain indexes and metadata.
    pub fn drop_table(&self, name: &str) -> Result<(), DbError> {
        self.drop_table_in(&self.default_session, name)
    }

    pub(crate) fn drop_table_in(&self, sess: &SessionState, name: &str) -> Result<(), DbError> {
        Self::reject_in_txn(sess, "DROP TABLE")?;
        // Drop dependent domain indexes first.
        let dependent: Vec<String> = {
            let indexes = self.indexes.read();
            indexes
                .keys()
                .filter(|iname| {
                    self.catalog
                        .index_metadata(iname)
                        .map(|m| m.table_name.eq_ignore_ascii_case(name))
                        .unwrap_or(false)
                })
                .cloned()
                .collect()
        };
        for iname in dependent {
            self.indexes.write().remove(&iname);
        }
        self.catalog.drop_table(name)?;
        self.log_ddl(
            &WalRecord::DropTable { name: name.to_ascii_uppercase() },
            sess.options.read().durability,
        )?;
        Ok(())
    }

    /// `ANALYZE <table>`: sample the table, build per-column and
    /// spatial statistics, install them for the planner, and log them
    /// through the WAL (autocommitted, like other DDL).
    pub fn analyze_table(&self, name: &str) -> Result<Arc<TableStats>, DbError> {
        self.analyze_table_in(&self.default_session, name)
    }

    pub(crate) fn analyze_table_in(
        &self,
        sess: &SessionState,
        name: &str,
    ) -> Result<Arc<TableStats>, DbError> {
        Self::reject_in_txn(sess, "ANALYZE")?;
        let handle = self.catalog.table(name)?;
        let stats = {
            let t = handle.read();
            TableStats::analyze(&t, ANALYZE_SAMPLE)
        };
        let stats = Arc::new(stats);
        self.catalog.set_table_stats((*stats).clone());
        self.log_ddl(
            &WalRecord::Analyze { table: stats.table.clone(), stats: (*stats).clone() },
            sess.options.read().durability,
        )?;
        Ok(stats)
    }

    /// Insert a row, maintaining every domain index on the table —
    /// the automatic index-update trigger of extensible indexing.
    /// Joins the default session's open transaction, or autocommits.
    pub fn insert_row(&self, table: &str, row: Vec<Value>) -> Result<RowId, DbError> {
        self.with_txn_in(&self.default_session, move |db, ctx| db.txn_insert(ctx, table, row))
    }

    /// Update a row in place, maintaining domain indexes (Oracle §3:
    /// "inserts and updates ... automatically trigger an update of the
    /// corresponding spatial indexes").
    pub fn update_row(&self, table: &str, rid: RowId, row: Vec<Value>) -> Result<(), DbError> {
        self.with_txn_in(&self.default_session, move |db, ctx| db.txn_update(ctx, table, rid, row))
    }

    /// Delete a row by rowid, maintaining domain indexes.
    pub fn delete_row(&self, table: &str, rid: RowId) -> Result<(), DbError> {
        self.with_txn_in(&self.default_session, move |db, ctx| db.txn_delete(ctx, table, rid))
    }

    // -- transactions -------------------------------------------------------

    /// The MVCC read view for a new statement on the default session.
    pub fn read_snapshot(&self) -> Snapshot {
        self.read_snapshot_in(&self.default_session)
    }

    /// The MVCC read view for a new statement in `sess`: the session
    /// transaction's snapshot when one is open (own writes + world as
    /// of `BEGIN`), otherwise the latest committed state.
    pub(crate) fn read_snapshot_in(&self, sess: &SessionState) -> Snapshot {
        match sess.txn.lock().as_ref() {
            Some(ctx) => ctx.token.snap,
            None => self.txn.snapshot(),
        }
    }

    /// The transaction manager (snapshots, CSNs, commit protocol).
    #[inline]
    pub fn txn_manager(&self) -> &TxnManager {
        &self.txn
    }

    /// Begin an explicit transaction owned by the caller (Rust API).
    /// Any number may run concurrently; see [`Txn`].
    pub fn begin(&self) -> Txn<'_> {
        let durability = self.default_session.options.read().durability;
        Txn { db: self, ctx: Some(self.new_ctx(durability)) }
    }

    /// `BEGIN` on the default session.
    pub fn begin_txn(&self) -> Result<(), DbError> {
        self.begin_txn_in(&self.default_session)
    }

    /// `BEGIN`: open `sess`'s explicit transaction. Each session has
    /// its own slot, so concurrent sessions can all be in
    /// transactions; a second `BEGIN` on the *same* session fails.
    pub(crate) fn begin_txn_in(&self, sess: &SessionState) -> Result<(), DbError> {
        let mut slot = sess.txn.lock();
        if slot.is_some() {
            return Err(DbError::Txn("transaction already in progress".into()));
        }
        *slot = Some(self.new_ctx(sess.options.read().durability));
        Ok(())
    }

    /// `COMMIT` on the default session.
    pub fn commit_txn(&self) -> Result<(), DbError> {
        self.commit_txn_in(&self.default_session)
    }

    /// `COMMIT`: durably commit `sess`'s open transaction.
    pub(crate) fn commit_txn_in(&self, sess: &SessionState) -> Result<(), DbError> {
        let ctx = sess
            .txn
            .lock()
            .take()
            .ok_or_else(|| DbError::Txn("COMMIT with no open transaction".into()))?;
        self.commit_ctx(ctx)
    }

    /// `ROLLBACK` on the default session.
    pub fn rollback_txn(&self) -> Result<(), DbError> {
        self.rollback_txn_in(&self.default_session)
    }

    /// `ROLLBACK`: abort `sess`'s open transaction.
    pub(crate) fn rollback_txn_in(&self, sess: &SessionState) -> Result<(), DbError> {
        let ctx = sess
            .txn
            .lock()
            .take()
            .ok_or_else(|| DbError::Txn("ROLLBACK with no open transaction".into()))?;
        self.abort_ctx(ctx);
        Ok(())
    }

    /// Whether the default session has an open explicit transaction.
    pub fn in_txn(&self) -> bool {
        self.default_session.txn.lock().is_some()
    }

    fn new_ctx(&self, durability: Durability) -> TxnCtx {
        TxnCtx {
            token: self.txn.begin(),
            durability,
            began_logged: false,
            abort_index_ops: Vec::new(),
            commit_index_ops: Vec::new(),
            live_deltas: HashMap::new(),
        }
    }

    /// Run `f` inside `sess`'s open transaction, or inside a fresh
    /// autocommitted one (commit on `Ok`, roll back on `Err` — a
    /// failed autocommit statement leaves no trace).
    pub(crate) fn with_txn_in<R>(
        &self,
        sess: &SessionState,
        f: impl FnOnce(&Database, &mut TxnCtx) -> Result<R, DbError>,
    ) -> Result<R, DbError> {
        let mut slot = sess.txn.lock();
        if let Some(ctx) = slot.as_mut() {
            return f(self, ctx);
        }
        drop(slot);
        let mut ctx = self.new_ctx(sess.options.read().durability);
        match f(self, &mut ctx) {
            Ok(v) => {
                self.commit_ctx(ctx)?;
                Ok(v)
            }
            Err(e) => {
                self.abort_ctx(ctx);
                Err(e)
            }
        }
    }

    fn wal_handle(&self) -> Option<Arc<Wal>> {
        self.wal.read().clone()
    }

    /// Append the transaction's `Begin` record on its first write.
    fn ensure_begin_logged(&self, ctx: &mut TxnCtx) -> Result<(), DbError> {
        if !ctx.began_logged {
            if let Some(w) = self.wal_handle() {
                w.append(&WalRecord::Begin { txid: ctx.token.txid })?;
            }
            ctx.began_logged = true;
        }
        Ok(())
    }

    /// Append a DDL record and make it durable per the issuing
    /// session's policy.
    fn log_ddl(&self, rec: &WalRecord, durability: Durability) -> Result<(), DbError> {
        if let Some(w) = self.wal_handle() {
            let lsn = w.append(rec)?;
            if durability == Durability::Fsync {
                w.sync_to(lsn)?;
            }
        }
        Ok(())
    }

    pub(crate) fn txn_insert(
        &self,
        ctx: &mut TxnCtx,
        table: &str,
        row: Vec<Value>,
    ) -> Result<RowId, DbError> {
        self.ensure_begin_logged(ctx)?;
        let tname = table.to_ascii_uppercase();
        let t = self.table(&tname)?;
        let rid = t.write().insert_txn(ctx.token.txid, row.clone())?;
        if let Some(w) = self.wal_handle() {
            w.append(&WalRecord::Insert {
                txid: ctx.token.txid,
                table: tname.clone(),
                rid,
                row: row.clone(),
            })?;
        }
        for idx in self.indexes_on_table(&tname) {
            idx.write().on_insert(rid, &row)?;
            ctx.abort_index_ops.push((Arc::clone(&idx), rid, row.clone()));
        }
        *ctx.live_deltas.entry(tname).or_insert(0) += 1;
        Ok(rid)
    }

    pub(crate) fn txn_update(
        &self,
        ctx: &mut TxnCtx,
        table: &str,
        rid: RowId,
        row: Vec<Value>,
    ) -> Result<(), DbError> {
        self.ensure_begin_logged(ctx)?;
        let tname = table.to_ascii_uppercase();
        let t = self.table(&tname)?;
        let old = t.read().get_at(rid, &ctx.token.snap)?.to_vec();
        t.write().update_txn(ctx.token.txid, ctx.token.snap.csn, rid, row.clone())?;
        if let Some(w) = self.wal_handle() {
            w.append(&WalRecord::Update {
                txid: ctx.token.txid,
                table: tname,
                rid,
                row: row.clone(),
            })?;
        }
        // The new entry goes in eagerly (undone on abort); the old
        // entry stays until after the commit point, because readers on
        // older snapshots can still see the old version. The transient
        // duplicate is harmless: index candidates re-check the heap
        // under the reader's snapshot.
        for idx in self.indexes_on_table(table) {
            idx.write().on_insert(rid, &row)?;
            ctx.abort_index_ops.push((Arc::clone(&idx), rid, row.clone()));
            ctx.commit_index_ops.push((idx, rid, old.clone()));
        }
        Ok(())
    }

    pub(crate) fn txn_delete(
        &self,
        ctx: &mut TxnCtx,
        table: &str,
        rid: RowId,
    ) -> Result<(), DbError> {
        self.ensure_begin_logged(ctx)?;
        let tname = table.to_ascii_uppercase();
        let t = self.table(&tname)?;
        let old = t.read().get_at(rid, &ctx.token.snap)?.to_vec();
        t.write().delete_txn(ctx.token.txid, ctx.token.snap.csn, rid)?;
        if let Some(w) = self.wal_handle() {
            w.append(&WalRecord::Delete { txid: ctx.token.txid, table: tname.clone(), rid })?;
        }
        // Deferred: the index entry must outlive the commit point for
        // old-snapshot readers.
        for idx in self.indexes_on_table(table) {
            ctx.commit_index_ops.push((idx, rid, old.clone()));
        }
        *ctx.live_deltas.entry(tname).or_insert(0) -= 1;
        Ok(())
    }

    /// The commit protocol: WAL commit record → durability sync →
    /// status flip (the commit point) → deferred index deletes →
    /// live-row deltas.
    pub(crate) fn commit_ctx(&self, ctx: TxnCtx) -> Result<(), DbError> {
        if ctx.began_logged {
            if let Some(w) = self.wal_handle() {
                let lsn = match w.append(&WalRecord::Commit { txid: ctx.token.txid }) {
                    Ok(lsn) => lsn,
                    Err(e) => {
                        // Nothing durable marks this commit; roll back.
                        self.abort_ctx(ctx);
                        return Err(e.into());
                    }
                };
                if ctx.durability == Durability::Fsync {
                    if let Err(e) = w.sync_to(lsn) {
                        // Conservative: treat an undurable commit as
                        // failed. (Recovery may still see the record if
                        // the OS got it out — the classic ack-lost
                        // window.)
                        self.abort_ctx(ctx);
                        return Err(e.into());
                    }
                }
            }
        }
        self.txn.commit(ctx.token.txid);
        for (idx, rid, row) in ctx.commit_index_ops {
            idx.write().on_delete(rid, &row)?;
        }
        for (tname, delta) in ctx.live_deltas {
            if delta != 0 {
                self.table(&tname)?.write().apply_live_delta(delta);
            }
        }
        Ok(())
    }

    /// Roll back: flip the status (O(1) — versions become invisible
    /// immediately and are pruned lazily), then undo eager index
    /// insertions. The WAL `Abort` record is advisory; a missing
    /// commit record discards the transaction at recovery anyway.
    pub(crate) fn abort_ctx(&self, ctx: TxnCtx) {
        if ctx.began_logged {
            if let Some(w) = self.wal_handle() {
                let _ = w.append(&WalRecord::Abort { txid: ctx.token.txid });
            }
        }
        self.txn.abort(ctx.token.txid);
        for (idx, rid, row) in ctx.abort_index_ops.into_iter().rev() {
            let _ = idx.write().on_delete(rid, &row);
        }
    }

    // -- domain indexes -----------------------------------------------------------

    /// Create a domain index through a registered indextype. The
    /// indextype registers its own [`IndexMetadata`] row. DDL
    /// autocommits; rejected inside an explicit transaction.
    pub fn create_domain_index(
        &self,
        index_name: &str,
        table: &str,
        column: &str,
        indextype: &str,
        params: &str,
        dop: usize,
    ) -> Result<(), DbError> {
        self.create_domain_index_in(
            &self.default_session,
            index_name,
            table,
            column,
            indextype,
            params,
            dop,
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn create_domain_index_in(
        &self,
        sess: &SessionState,
        index_name: &str,
        table: &str,
        column: &str,
        indextype: &str,
        params: &str,
        dop: usize,
    ) -> Result<(), DbError> {
        Self::reject_in_txn(sess, "CREATE INDEX")?;
        self.create_domain_index_unlogged(index_name, table, column, indextype, params, dop)?;
        self.log_ddl(
            &WalRecord::CreateIndex {
                index_name: index_name.to_ascii_uppercase(),
                table_name: table.to_ascii_uppercase(),
                column_name: column.to_string(),
                parameters: params.to_string(),
                create_dop: dop,
            },
            sess.options.read().durability,
        )?;
        Ok(())
    }

    /// [`Database::create_domain_index`] without the WAL record: used
    /// for index rebuilds (snapshot load, recovery) whose creation is
    /// already recorded in the base image or log.
    fn create_domain_index_unlogged(
        &self,
        index_name: &str,
        table: &str,
        column: &str,
        indextype: &str,
        params: &str,
        dop: usize,
    ) -> Result<(), DbError> {
        let it = self
            .indextypes
            .read()
            .get(&indextype.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| DbError::Plan(format!("unknown indextype {indextype}")))?;
        let key = index_name.to_ascii_uppercase();
        if self.indexes.read().contains_key(&key) {
            return Err(DbError::Index(format!("index {key} already exists")));
        }
        let index = it.create_index(self, &key, table, column, params, dop)?;
        self.indexes.write().insert(key, Arc::new(RwLock::new(index)));
        Ok(())
    }

    /// Drop a domain index (instance + metadata).
    pub fn drop_domain_index(&self, index_name: &str) -> Result<(), DbError> {
        self.drop_domain_index_in(&self.default_session, index_name)
    }

    pub(crate) fn drop_domain_index_in(
        &self,
        sess: &SessionState,
        index_name: &str,
    ) -> Result<(), DbError> {
        Self::reject_in_txn(sess, "DROP INDEX")?;
        let key = index_name.to_ascii_uppercase();
        self.indexes
            .write()
            .remove(&key)
            .ok_or_else(|| DbError::Index(format!("no such index {key}")))?;
        let _ = self.catalog.drop_index(&key);
        self.log_ddl(&WalRecord::DropIndex { name: key }, sess.options.read().durability)?;
        Ok(())
    }

    /// Fetch a live index instance by name.
    pub fn index_instance(&self, index_name: &str) -> Option<IndexHandle> {
        self.indexes.read().get(&index_name.to_ascii_uppercase()).cloned()
    }

    /// The index (metadata + instance) on `(table, column)`, if any.
    pub fn index_on(&self, table: &str, column: &str) -> Option<(IndexMetadata, IndexHandle)> {
        let meta = self.catalog.index_on(table, column)?;
        let inst = self.index_instance(&meta.index_name)?;
        Some((meta, inst))
    }

    fn indexes_on_table(&self, table: &str) -> Vec<IndexHandle> {
        let indexes = self.indexes.read();
        indexes
            .iter()
            .filter(|(name, _)| {
                self.catalog
                    .index_metadata(name)
                    .map(|m| m.table_name.eq_ignore_ascii_case(table))
                    .unwrap_or(false)
            })
            .map(|(_, v)| Arc::clone(v))
            .collect()
    }

    // -- snapshots --------------------------------------------------------------

    /// Serialize every table and index-metadata row into snapshot
    /// bytes (see [`sdo_storage::snapshot`]). Domain indexes are not
    /// serialized; they rebuild from their recorded parameters on load.
    pub fn save_snapshot(&self) -> bytes::Bytes {
        let metas: Vec<IndexMetadata> = {
            let indexes = self.indexes.read();
            indexes.keys().filter_map(|name| self.catalog.index_metadata(name).ok()).collect()
        };
        sdo_storage::snapshot::save_catalog(&self.catalog, &metas)
    }

    /// Restore a snapshot into this (empty) database, rebuilding every
    /// domain index through the registered indextypes. The indextypes
    /// used at save time must be registered before calling this.
    pub fn load_snapshot(&self, bytes: impl bytes::Buf) -> Result<(), DbError> {
        let directives = sdo_storage::snapshot::load_catalog(&self.catalog, bytes)?;
        for d in directives {
            // All snapshot-recorded spatial indexes came from the
            // SPATIAL_INDEX indextype in this codebase. Rebuilds are
            // not re-logged: their creation is already in the image.
            self.create_domain_index_unlogged(
                &d.index_name,
                &d.table_name,
                &d.column_name,
                "SPATIAL_INDEX",
                &d.parameters,
                d.create_dop,
            )?;
        }
        Ok(())
    }

    // -- SQL ------------------------------------------------------------------------

    /// Parse and execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<QueryResult, DbError> {
        let stmt = crate::sql::parse(sql)?;
        crate::exec::execute(self, &stmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_storage::DataType;

    #[test]
    fn registry_roundtrips() {
        let db = Database::new();
        db.register_table_function("NUMS", |_db, args| {
            let n = args[0].integer()?;
            Ok(TfInstance {
                func: Box::new(sdo_tablefunc::table_function::BufferedFn::new(move || {
                    Ok((0..n).map(|i| vec![Value::Integer(i)]).collect())
                })),
                columns: vec!["N".into()],
            })
        });
        let mut inst =
            db.make_table_function("nums", vec![TfArg::Scalar(Value::Integer(3))]).unwrap();
        let rows = sdo_tablefunc::collect_all(inst.func.as_mut(), 10).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(inst.columns, vec!["N".to_string()]);
        assert!(db.make_table_function("missing", vec![]).is_err());
    }

    #[test]
    fn dml_without_indexes() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("ID", DataType::Integer)])).unwrap();
        let rid = db.insert_row("t", vec![Value::Integer(1)]).unwrap();
        assert_eq!(db.table("t").unwrap().read().len(), 1);
        db.delete_row("t", rid).unwrap();
        assert_eq!(db.table("t").unwrap().read().len(), 0);
        assert!(db.delete_row("t", rid).is_err());
    }

    #[test]
    fn tfarg_accessors() {
        assert_eq!(TfArg::Scalar(Value::Integer(4)).integer().unwrap(), 4);
        assert_eq!(TfArg::Scalar(Value::Double(1.5)).double().unwrap(), 1.5);
        assert_eq!(TfArg::Scalar(Value::from("x")).text().unwrap(), "x");
        assert!(TfArg::Scalar(Value::from("x")).integer().is_err());
        assert!(TfArg::Cursor(vec![]).scalar().is_err());
        assert_eq!(TfArg::Cursor(vec![vec![]]).cursor().unwrap().len(), 1);
    }
}
