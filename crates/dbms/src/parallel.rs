//! Morsel-driven intra-query parallelism: exchange operators over the
//! shared slave pool.
//!
//! The serial executor in [`crate::operators`] pulls one batch at a
//! time through a single thread. This module adds the classic
//! morsel-driven design on top of it: an exchange cuts its input into
//! *morsels* (slot ranges of a heap table, or probe blocks of a rowid
//! pair stream), seeds them into the work-stealing [`TaskQueue`] from
//! `sdo-tablefunc`, and fans them out to workers on the elastic
//! [`SlavePool`](sdo_tablefunc::SlavePool) — the same pool the paper's
//! parallel table functions use, so one knob governs all slave
//! threads. Each worker filters (and for ORDER BY, partially sorts)
//! its morsels against a shared database-free [`FilterEval`], then
//! ships results back over a bounded channel.
//!
//! Determinism: every emitted row is tagged by its morsel index (and,
//! for sorts, its position within the morsel), and the coordinator
//! merges worker output through a reorder buffer in morsel order — so
//! the row stream is **bit-identical to the serial plan at any degree
//! of parallelism**, tie-breaks included. The equivalence suite pins
//! this at dop 1/2/4.
//!
//! Memory accounting: workers charge the statement's shared
//! [`MemoryGauge`] through RAII [`GaugeCharge`] accounts, enforcing
//! the same `max_resident_rows` budget (with the same error text) as
//! the serial operators. A charge travels *with* the rows — worker →
//! channel → coordinator — so a worker erroring mid-morsel, a dropped
//! channel, or an early `close()` all release exactly what they hold.

use crate::db::Database;
use crate::error::DbError;
use crate::exec::{RelMeta, RelRow, SpatialPred};
use crate::operators::{
    empty_joined, note_batch, BatchOp, ExecCtx, FilterEval, FilterInputs, JoinedBatch, Resident,
    SelectStream, BATCH_ROWS,
};
use crate::sql::ast::{OrderKey, Predicate};
use parking_lot::{Mutex, RwLock};
use sdo_obs::{GaugeCharge, MemoryGauge, ProfileNode};
use sdo_storage::{RowId, Snapshot, Table, Value};
use sdo_tablefunc::pool::{self, PoolJoinHandle};
use sdo_tablefunc::scheduler::TaskQueue;
use sdo_tablefunc::source::TableCursor;
use sdo_tablefunc::RowSource;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::Instant;

/// Rows per morsel. A morsel is the unit of work stealing: large
/// enough to amortize scheduling and cursor setup, small enough that
/// skew between workers stays bounded. Tests shrink it so small
/// corpora still exercise the parallel paths.
static MORSEL_ROWS: AtomicUsize = AtomicUsize::new(4096);

/// Current morsel size in rows.
pub(crate) fn morsel_rows() -> usize {
    MORSEL_ROWS.load(Ordering::Relaxed).max(1)
}

/// Override the morsel size (rows per work-stealing unit). Intended
/// for tests and benchmarks that need small tables to parallelize;
/// the default of 4096 rows is right for real workloads.
pub fn set_morsel_rows(n: usize) {
    MORSEL_ROWS.store(n.max(1), Ordering::Relaxed);
}

/// Probe-cache capacity per semijoin worker, in cached rows.
const PROBE_CACHE_ROWS: usize = 4096;

/// One slot-range morsel of a heap table: slots `[from, to)`.
#[derive(Debug, Clone, Copy)]
struct Morsel {
    idx: usize,
    from: usize,
    to: usize,
}

/// Cut `[0, hwm)` into morsels of the current size, in slot order.
fn make_morsels(hwm: usize) -> Vec<Morsel> {
    let step = morsel_rows();
    (0..hwm)
        .step_by(step)
        .enumerate()
        .map(|(idx, from)| Morsel { idx, from, to: (from + step).min(hwm) })
        .collect()
}

/// Charge `n` more rows to a worker-side account, enforcing the
/// session budget with the same error text as the serial
/// [`Resident`] account so `max_resident_rows` failures read
/// identically at any dop.
fn charge_rows(
    charge: &mut GaugeCharge,
    limit: u64,
    n: u64,
    operator: &str,
) -> Result<(), DbError> {
    let now = charge.add(n);
    if now > limit {
        return Err(DbError::Plan(format!(
            "resident rows ({now}) exceed MAX_RESIDENT_ROWS ({limit}) in operator {operator}; \
             raise it with ALTER SESSION SET max_resident_rows = <n>"
        )));
    }
    Ok(())
}

/// One finished morsel travelling worker → coordinator. The
/// [`GaugeCharge`] inside carries the gauge liability for `rows`, so
/// dropping the message anywhere (channel teardown, error path)
/// releases the charge.
struct MorselOut {
    idx: usize,
    rows: JoinedBatch,
    charge: GaugeCharge,
}

type WorkerMsg = Result<MorselOut, DbError>;

/// Per-worker profile nodes (`worker 0` … `worker N-1`) under the
/// EXCHANGE node, present only when profiling.
fn worker_nodes(node: &Option<ProfileNode>, dop: usize) -> Vec<Option<ProfileNode>> {
    (0..dop).map(|i| node.as_ref().map(|n| n.child(format!("worker {i}")))).collect()
}

/// Stamp the scheduler's per-worker tallies onto the profile tree.
/// `set_metric` (not `add`) so a zero — no steals — still renders.
fn stamp_worker_metrics(nodes: &[Option<ProfileNode>], queue: &TaskQueue<Morsel>) {
    for (i, wn) in nodes.iter().enumerate() {
        if let Some(n) = wn {
            n.set_metric("morsels_executed", queue.executed(i));
            n.set_metric("morsels_stolen", queue.stolen(i));
        }
    }
}

/// Scan one morsel through the shared filter, returning surviving
/// rows charged against `charge`.
fn scan_morsel(
    table: &Arc<RwLock<Table>>,
    snap: Snapshot,
    width: usize,
    eval: &FilterEval,
    m: Morsel,
    charge: &mut GaugeCharge,
    limit: u64,
) -> Result<JoinedBatch, DbError> {
    let mut cursor = TableCursor::slice(Arc::clone(table), m.from, m.to).at_snapshot(snap);
    let mut out = Vec::new();
    loop {
        let rows = cursor.next_batch(BATCH_ROWS);
        if rows.is_empty() {
            break;
        }
        let mut kept = 0u64;
        for row in rows {
            let mut it = row.into_iter();
            let rid = it.next().and_then(|v| v.as_rowid());
            let mut jr = empty_joined(width);
            jr[0] = RelRow { rid, values: it.collect() };
            if !eval.is_empty() && !eval.row_passes(&jr)? {
                continue;
            }
            out.push(jr);
            kept += 1;
        }
        charge_rows(charge, limit, kept, "EXCHANGE")?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parallel scan + filter
// ---------------------------------------------------------------------------

/// Running exchange state: the channel, scheduler, worker handles and
/// the morsel-ordered reorder buffer.
struct ScanState {
    rx: Receiver<WorkerMsg>,
    queue: Arc<TaskQueue<Morsel>>,
    handles: Vec<PoolJoinHandle>,
    cancel: Arc<AtomicBool>,
    nodes: Vec<Option<ProfileNode>>,
    /// Morsels received out of order, keyed by morsel index.
    pending: BTreeMap<usize, JoinedBatch>,
    /// In-order rows awaiting batch emission.
    out: VecDeque<Vec<RelRow>>,
    next_idx: usize,
    total: usize,
    delivered: usize,
}

/// Morsel-parallel `TableScanExec` + `FilterExec` fusion: the
/// planner's Scan-site exchange. Workers scan disjoint slot ranges
/// under the statement snapshot, filter with per-worker state, and the
/// coordinator merges morsels back in slot order — emitting the exact
/// row stream the serial scan+filter would.
pub(crate) struct ParallelScanFilterExec<'a> {
    db: &'a Database,
    table: Arc<RwLock<Table>>,
    inputs: Option<FilterInputs>,
    width: usize,
    dop: usize,
    state: Option<ScanState>,
    node: Option<ProfileNode>,
    resident: Resident,
    held: u64,
    gauge: MemoryGauge,
    budget: u64,
    snap: Snapshot,
    done: bool,
}

impl<'a> ParallelScanFilterExec<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ctx: &ExecCtx<'a>,
        table: Arc<RwLock<Table>>,
        metas: Arc<Vec<RelMeta>>,
        spatial: Vec<SpatialPred>,
        residual: Vec<Predicate>,
        hints: Option<Vec<bool>>,
        dop: usize,
        node: Option<ProfileNode>,
    ) -> Self {
        let resident = ctx.resident("EXCHANGE");
        let width = metas.len();
        ParallelScanFilterExec {
            db: ctx.db,
            table,
            inputs: Some((metas, spatial, residual, hints)),
            width,
            dop: dop.max(1),
            state: None,
            node,
            resident,
            held: 0,
            gauge: ctx.gauge.clone(),
            budget: ctx.max_resident_rows,
            snap: ctx.snap,
            done: false,
        }
    }

    fn start(&mut self) -> Result<(), DbError> {
        let (metas, spatial, residual, hints) = self.inputs.take().expect("exchange inputs");
        let eval = Arc::new(FilterEval::build(
            self.db,
            metas,
            spatial,
            residual,
            hints.as_deref(),
            self.snap,
        )?);
        let hwm = self.table.read().high_water_mark();
        let morsels = make_morsels(hwm);
        if morsels.is_empty() {
            self.done = true;
            return Ok(());
        }
        let total = morsels.len();
        let eff = self.dop.min(total);
        if let Some(n) = &self.node {
            n.set_attr("dop", eff.to_string());
        }
        let queue = TaskQueue::seed_round_robin(morsels, eff);
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<WorkerMsg>(eff * 2);
        let nodes = worker_nodes(&self.node, eff);
        let mut handles = Vec::with_capacity(eff);
        for (w, wnode) in nodes.iter().enumerate() {
            let queue = Arc::clone(&queue);
            let cancel = Arc::clone(&cancel);
            let tx = tx.clone();
            let table = Arc::clone(&self.table);
            let eval = Arc::clone(&eval);
            let gauge = self.gauge.clone();
            let wnode = wnode.clone();
            let (snap, width, budget) = (self.snap, self.width, self.budget);
            handles.push(pool::global().submit(move || {
                scan_worker(w, queue, cancel, tx, table, snap, width, eval, gauge, budget, wnode)
            }));
        }
        drop(tx);
        self.state = Some(ScanState {
            rx,
            queue,
            handles,
            cancel,
            nodes,
            pending: BTreeMap::new(),
            out: VecDeque::new(),
            next_idx: 0,
            total,
            delivered: 0,
        });
        Ok(())
    }

    /// Stop workers, collect their scheduler tallies into the profile
    /// tree, and zero the coordinator's resident account. Safe on
    /// every exit path: success, error, early `close()`.
    fn finish(&mut self) {
        if let Some(st) = self.state.take() {
            let ScanState { rx, queue, handles, cancel, nodes, .. } = st;
            cancel.store(true, Ordering::Relaxed);
            // Drop the receiver first so workers blocked on a full
            // channel fail their send and exit instead of deadlocking
            // against the joins below. In-flight messages release
            // their charges as the channel drops them.
            drop(rx);
            for h in handles {
                h.join();
            }
            stamp_worker_metrics(&nodes, &queue);
        }
        self.held = 0;
        let _ = self.resident.set(0);
    }
}

/// Refill the reorder buffer until a full batch is in order or every
/// morsel has been delivered.
fn fill_in_order(
    st: &mut ScanState,
    resident: &mut Resident,
    held: &mut u64,
) -> Result<(), DbError> {
    loop {
        while let Some(rows) = st.pending.remove(&st.next_idx) {
            st.next_idx += 1;
            st.delivered += 1;
            st.out.extend(rows);
        }
        if st.out.len() >= BATCH_ROWS || st.delivered == st.total {
            return Ok(());
        }
        match st.rx.recv() {
            Ok(Ok(mo)) => {
                // Transfer the liability: release the worker's charge,
                // re-charge the coordinator's account (which re-checks
                // the budget including everything already buffered).
                let n = mo.rows.len() as u64;
                drop(mo.charge);
                resident.add(n)?;
                *held += n;
                st.pending.insert(mo.idx, mo.rows);
            }
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                // All senders gone before every morsel arrived: a
                // worker died without reporting (the pool swallows
                // panics into the join).
                return Err(DbError::Plan("parallel scan worker terminated unexpectedly".into()));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_worker(
    w: usize,
    queue: Arc<TaskQueue<Morsel>>,
    cancel: Arc<AtomicBool>,
    tx: SyncSender<WorkerMsg>,
    table: Arc<RwLock<Table>>,
    snap: Snapshot,
    width: usize,
    eval: Arc<FilterEval>,
    gauge: MemoryGauge,
    budget: u64,
    node: Option<ProfileNode>,
) {
    while !cancel.load(Ordering::Relaxed) {
        let Some(pulled) = queue.pop(w) else { break };
        let t0 = node.as_ref().map(|_| Instant::now());
        let mut charge = gauge.charge();
        match scan_morsel(&table, snap, width, &eval, pulled.task, &mut charge, budget) {
            Ok(rows) => {
                note_batch(&node, rows.len(), t0);
                if tx.send(Ok(MorselOut { idx: pulled.task.idx, rows, charge })).is_err() {
                    break; // coordinator closed early (e.g. LIMIT)
                }
            }
            Err(e) => {
                drop(charge); // release mid-morsel work before reporting
                let _ = tx.send(Err(e));
                break;
            }
        }
    }
}

impl BatchOp for ParallelScanFilterExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        if self.done {
            return Ok(Vec::new());
        }
        let before = self.node.as_ref().map(|_| self.db.counters().snapshot());
        if self.state.is_none() {
            if let Err(e) = self.start() {
                self.done = true;
                self.finish();
                return Err(e);
            }
            if self.done {
                return Ok(Vec::new());
            }
        }
        let res = fill_in_order(
            self.state.as_mut().expect("exchange state"),
            &mut self.resident,
            &mut self.held,
        );
        if let (Some(n), Some(b)) = (&self.node, &before) {
            n.add_metric_deltas(&self.db.counters().diff(b).pairs());
        }
        if let Err(e) = res {
            self.done = true;
            self.finish();
            return Err(e);
        }
        let st = self.state.as_mut().expect("exchange state");
        let n = st.out.len().min(BATCH_ROWS);
        let batch: JoinedBatch = st.out.drain(..n).collect();
        self.held -= n as u64;
        self.resident.set(self.held)?;
        if batch.is_empty() {
            self.done = true;
            self.finish();
        } else {
            note_batch(&self.node, batch.len(), None);
        }
        Ok(batch)
    }

    fn close(&mut self) {
        self.done = true;
        self.finish();
    }
}

// ---------------------------------------------------------------------------
// Parallel sort / top-k
// ---------------------------------------------------------------------------

/// A row ready to merge: evaluated ORDER BY keys, the serial-order
/// sequence tag `(morsel_idx << 32) | pos_in_morsel`, and the row.
type SortedRow = (Vec<Value>, u64, Vec<RelRow>);

/// One worker's fully sorted (and, under LIMIT k, truncated) run.
struct SortRun {
    rows: Vec<SortedRow>,
    charge: GaugeCharge,
}

/// Total order on keyed rows: the ORDER BY keys (honoring per-key
/// direction), then the sequence tag. Because the tag is the row's
/// position in serial scan order, this total order coincides with the
/// serial executor's *stable* sort — bit-identical output, tie-breaks
/// included.
fn cmp_sorted(keys: &[OrderKey], a: &SortedRow, b: &SortedRow) -> std::cmp::Ordering {
    for (i, k) in keys.iter().enumerate() {
        let ord = a.0[i].sql_cmp(&b.0[i]);
        let ord = if k.descending { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.1.cmp(&b.1)
}

/// Morsel-parallel ORDER BY (and top-k): the planner's Sort-site
/// exchange. Workers scan + filter their morsels, evaluate the sort
/// keys once per surviving row, keep a partial sort (truncated to k
/// under a LIMIT, amortized at 2k), and ship one sorted run each; the
/// coordinator merges the ≤ dop runs head-to-head.
pub(crate) struct ParallelSortExec<'a> {
    db: &'a Database,
    table: Arc<RwLock<Table>>,
    inputs: Option<FilterInputs>,
    keys: Vec<OrderKey>,
    limit: Option<usize>,
    width: usize,
    dop: usize,
    runs: Option<Vec<VecDeque<SortedRow>>>,
    node: Option<ProfileNode>,
    resident: Resident,
    held: u64,
    gauge: MemoryGauge,
    budget: u64,
    snap: Snapshot,
    done: bool,
}

impl<'a> ParallelSortExec<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ctx: &ExecCtx<'a>,
        table: Arc<RwLock<Table>>,
        metas: Arc<Vec<RelMeta>>,
        spatial: Vec<SpatialPred>,
        residual: Vec<Predicate>,
        hints: Option<Vec<bool>>,
        keys: Vec<OrderKey>,
        limit: Option<usize>,
        dop: usize,
        node: Option<ProfileNode>,
    ) -> Self {
        let resident = ctx.resident("EXCHANGE");
        let width = metas.len();
        ParallelSortExec {
            db: ctx.db,
            table,
            inputs: Some((metas, spatial, residual, hints)),
            keys,
            limit,
            width,
            dop: dop.max(1),
            runs: None,
            node,
            resident,
            held: 0,
            gauge: ctx.gauge.clone(),
            budget: ctx.max_resident_rows,
            snap: ctx.snap,
            done: false,
        }
    }

    /// Fan out, block until every worker delivers its sorted run, and
    /// account the runs to the coordinator. Blocking here mirrors the
    /// serial `SortExec`, which is equally a pipeline breaker.
    fn ensure_runs(&mut self) -> Result<(), DbError> {
        if self.runs.is_some() {
            return Ok(());
        }
        let (metas, spatial, residual, hints) = self.inputs.take().expect("sort exchange inputs");
        let eval = Arc::new(FilterEval::build(
            self.db,
            Arc::clone(&metas),
            spatial,
            residual,
            hints.as_deref(),
            self.snap,
        )?);
        let hwm = self.table.read().high_water_mark();
        let morsels = make_morsels(hwm);
        if morsels.is_empty() {
            self.runs = Some(Vec::new());
            return Ok(());
        }
        let eff = self.dop.min(morsels.len());
        if let Some(n) = &self.node {
            n.set_attr("dop", eff.to_string());
        }
        let queue = TaskQueue::seed_round_robin(morsels, eff);
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<Result<SortRun, DbError>>(eff);
        let nodes = worker_nodes(&self.node, eff);
        let keys = Arc::new(self.keys.clone());
        let mut handles = Vec::with_capacity(eff);
        for (w, wnode) in nodes.iter().enumerate() {
            let queue = Arc::clone(&queue);
            let cancel = Arc::clone(&cancel);
            let tx = tx.clone();
            let table = Arc::clone(&self.table);
            let metas = Arc::clone(&metas);
            let eval = Arc::clone(&eval);
            let keys = Arc::clone(&keys);
            let gauge = self.gauge.clone();
            let wnode = wnode.clone();
            let (snap, width, budget, limit) = (self.snap, self.width, self.budget, self.limit);
            handles.push(pool::global().submit(move || {
                sort_worker(
                    w, queue, cancel, tx, table, snap, width, metas, eval, keys, limit, gauge,
                    budget, wnode,
                )
            }));
        }
        drop(tx);
        let mut runs: Vec<VecDeque<SortedRow>> = Vec::with_capacity(eff);
        let mut failure: Option<DbError> = None;
        for _ in 0..eff {
            match rx.recv() {
                Ok(Ok(run)) => {
                    if failure.is_none() {
                        let n = run.rows.len() as u64;
                        drop(run.charge);
                        match self.resident.add(n) {
                            Ok(()) => {
                                self.held += n;
                                runs.push(run.rows.into());
                            }
                            Err(e) => {
                                cancel.store(true, Ordering::Relaxed);
                                failure = Some(e);
                            }
                        }
                    }
                }
                Ok(Err(e)) => {
                    cancel.store(true, Ordering::Relaxed);
                    if failure.is_none() {
                        failure = Some(e);
                    }
                }
                Err(_) => {
                    if failure.is_none() {
                        failure = Some(DbError::Plan(
                            "parallel sort worker terminated unexpectedly".into(),
                        ));
                    }
                    break;
                }
            }
        }
        drop(rx);
        for h in handles {
            h.join();
        }
        stamp_worker_metrics(&nodes, &queue);
        if let Some(e) = failure {
            self.held = 0;
            let _ = self.resident.set(0);
            return Err(e);
        }
        self.runs = Some(runs);
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn sort_worker(
    w: usize,
    queue: Arc<TaskQueue<Morsel>>,
    cancel: Arc<AtomicBool>,
    tx: SyncSender<Result<SortRun, DbError>>,
    table: Arc<RwLock<Table>>,
    snap: Snapshot,
    width: usize,
    metas: Arc<Vec<RelMeta>>,
    eval: Arc<FilterEval>,
    keys: Arc<Vec<OrderKey>>,
    limit: Option<usize>,
    gauge: MemoryGauge,
    budget: u64,
    node: Option<ProfileNode>,
) {
    let t0 = node.as_ref().map(|_| Instant::now());
    let mut charge = gauge.charge();
    let mut buf: Vec<SortedRow> = Vec::new();
    let result = (|| -> Result<(), DbError> {
        while !cancel.load(Ordering::Relaxed) {
            let Some(pulled) = queue.pop(w) else { break };
            let m = pulled.task;
            let mut cursor = TableCursor::slice(Arc::clone(&table), m.from, m.to).at_snapshot(snap);
            let mut pos: u64 = 0;
            loop {
                let rows = cursor.next_batch(BATCH_ROWS);
                if rows.is_empty() {
                    break;
                }
                let mut kept = 0u64;
                for row in rows {
                    let mut it = row.into_iter();
                    let rid = it.next().and_then(|v| v.as_rowid());
                    let mut jr = empty_joined(width);
                    jr[0] = RelRow { rid, values: it.collect() };
                    if !eval.is_empty() && !eval.row_passes(&jr)? {
                        continue;
                    }
                    let ks = keys
                        .iter()
                        .map(|k| crate::exec::eval_expr(&metas, &jr, &k.expr))
                        .collect::<Result<Vec<_>, _>>()?;
                    // Serial scan order: morsel index, then surviving
                    // row position within the morsel.
                    let seq = ((m.idx as u64) << 32) | pos;
                    pos += 1;
                    buf.push((ks, seq, jr));
                    kept += 1;
                }
                charge_rows(&mut charge, budget, kept, "EXCHANGE")?;
            }
            // Top-k: never hold more than 2k rows per worker; sort and
            // cut back to k, releasing the difference.
            if let Some(k) = limit {
                if buf.len() >= 2 * k.max(1) {
                    buf.sort_by(|a, b| cmp_sorted(&keys, a, b));
                    buf.truncate(k);
                    charge.set(buf.len() as u64);
                }
            }
        }
        Ok(())
    })();
    match result {
        Ok(()) => {
            buf.sort_by(|a, b| cmp_sorted(&keys, a, b));
            if let Some(k) = limit {
                buf.truncate(k);
                charge.set(buf.len() as u64);
            }
            note_batch(&node, buf.len(), t0);
            let _ = tx.send(Ok(SortRun { rows: buf, charge }));
        }
        Err(e) => {
            drop(charge);
            let _ = tx.send(Err(e));
        }
    }
}

impl BatchOp for ParallelSortExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        if self.done {
            return Ok(Vec::new());
        }
        let before = self.node.as_ref().map(|_| self.db.counters().snapshot());
        let started = self.runs.is_none();
        if started {
            let res = self.ensure_runs();
            if let (Some(n), Some(b)) = (&self.node, &before) {
                n.add_metric_deltas(&self.db.counters().diff(b).pairs());
            }
            if let Err(e) = res {
                self.done = true;
                return Err(e);
            }
        }
        let keys = &self.keys;
        let runs = self.runs.as_mut().expect("sorted runs");
        let mut out: JoinedBatch = Vec::with_capacity(BATCH_ROWS.min(self.held as usize));
        while out.len() < BATCH_ROWS {
            // Tournament over the ≤ dop run heads (dop is capped at
            // 64, so a linear scan beats a merge tree's bookkeeping).
            let mut best: Option<usize> = None;
            for (i, r) in runs.iter().enumerate() {
                let Some(head) = r.front() else { continue };
                best = match best {
                    None => Some(i),
                    Some(b) => {
                        let bh = runs[b].front().expect("non-empty best run");
                        if cmp_sorted(keys, head, bh) == std::cmp::Ordering::Less {
                            Some(i)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            let Some(b) = best else { break };
            let (_, _, jr) = runs[b].pop_front().expect("non-empty best run");
            out.push(jr);
        }
        self.held -= out.len() as u64;
        self.resident.set(self.held)?;
        if out.is_empty() {
            self.done = true;
            self.runs = None;
        } else {
            note_batch(&self.node, out.len(), None);
        }
        Ok(out)
    }

    fn close(&mut self) {
        self.done = true;
        self.runs = None;
        self.held = 0;
        let _ = self.resident.set(0);
    }
}

// ---------------------------------------------------------------------------
// Parallel rowid-pair semijoin probe
// ---------------------------------------------------------------------------

/// A bounded per-worker cache of fetched base rows, keyed by
/// `(side, rowid)`. Invisible rows cache as `None` so repeat probes
/// skip the table read too. Wholesale clear on overflow keeps it
/// allocation-cheap; hit/miss tallies surface in `EXPLAIN ANALYZE`
/// per worker (hits + misses == 2 × pairs_probed, by construction).
struct ProbeCache {
    map: HashMap<(bool, RowId), Option<Arc<[Value]>>>,
    cap: usize,
    hits: u64,
    misses: u64,
    probed: u64,
}

impl ProbeCache {
    fn new(cap: usize) -> Self {
        ProbeCache { map: HashMap::new(), cap: cap.max(1), hits: 0, misses: 0, probed: 0 }
    }

    fn fetch(
        &mut self,
        left: bool,
        rid: RowId,
        table: &Arc<RwLock<Table>>,
        snap: &Snapshot,
    ) -> Option<Arc<[Value]>> {
        if let Some(v) = self.map.get(&(left, rid)) {
            self.hits += 1;
            return v.clone();
        }
        self.misses += 1;
        let v = table.read().get_at(rid, snap).ok();
        if self.map.len() >= self.cap {
            self.map.clear();
        }
        self.map.insert((left, rid), v.clone());
        v
    }
}

/// One probe block of deduplicated rowid pairs, in pair-stream order.
struct Block {
    idx: usize,
    pairs: Vec<(RowId, RowId)>,
}

/// Morsel-parallel rowid-pair semijoin: the planner's Probe-site
/// exchange, replacing serial `RowidSemiJoinExec` + `FilterExec`.
/// The coordinator drains the table-function subquery and
/// deduplicates serially (IN semantics need a global seen-set), cuts
/// the surviving pairs into blocks, and fans each *wave* of blocks to
/// workers that fetch both base rows through a private [`ProbeCache`]
/// and apply the secondary filters per worker. Blocks reassemble in
/// stream order, so output matches the serial plan row for row.
pub(crate) struct ParallelSemiJoinExec<'a> {
    db: &'a Database,
    sub: SelectStream<'a>,
    l_rel: usize,
    r_rel: usize,
    lt: Arc<RwLock<Table>>,
    rt: Arc<RwLock<Table>>,
    width: usize,
    eval: Arc<FilterEval>,
    filter_active: bool,
    seen: std::collections::HashSet<(RowId, RowId)>,
    dop: usize,
    node: Option<ProfileNode>,
    nodes: Vec<Option<ProfileNode>>,
    caches: Vec<Arc<Mutex<ProbeCache>>>,
    executed: Vec<u64>,
    stolen: Vec<u64>,
    out: VecDeque<Vec<RelRow>>,
    resident: Resident,
    held: u64,
    gauge: MemoryGauge,
    budget: u64,
    snap: Snapshot,
    sub_done: bool,
    done: bool,
    stamped: bool,
}

impl<'a> ParallelSemiJoinExec<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ctx: &ExecCtx<'a>,
        sub: SelectStream<'a>,
        l_rel: usize,
        r_rel: usize,
        lt: Arc<RwLock<Table>>,
        rt: Arc<RwLock<Table>>,
        width: usize,
        metas: Arc<Vec<RelMeta>>,
        spatial: Vec<SpatialPred>,
        residual: Vec<Predicate>,
        hints: Option<Vec<bool>>,
        dop: usize,
        node: Option<ProfileNode>,
    ) -> Result<Self, DbError> {
        if sub.columns.len() < 2 {
            return Err(DbError::Plan("rowid-pair subquery must project two rowid columns".into()));
        }
        let filter_active = !spatial.is_empty() || !residual.is_empty();
        let eval = Arc::new(FilterEval::build(
            ctx.db,
            metas,
            spatial,
            residual,
            hints.as_deref(),
            ctx.snap,
        )?);
        let dop = dop.max(1);
        if let Some(n) = &node {
            n.set_attr("dop", dop.to_string());
        }
        let nodes = worker_nodes(&node, dop);
        let caches =
            (0..dop).map(|_| Arc::new(Mutex::new(ProbeCache::new(PROBE_CACHE_ROWS)))).collect();
        let resident = ctx.resident("EXCHANGE");
        Ok(ParallelSemiJoinExec {
            db: ctx.db,
            sub,
            l_rel,
            r_rel,
            lt,
            rt,
            width,
            eval,
            filter_active,
            seen: std::collections::HashSet::new(),
            dop,
            node,
            nodes,
            caches,
            executed: vec![0; dop],
            stolen: vec![0; dop],
            out: VecDeque::new(),
            resident,
            held: 0,
            gauge: ctx.gauge.clone(),
            budget: ctx.max_resident_rows,
            snap: ctx.snap,
            sub_done: false,
            done: false,
            stamped: false,
        })
    }

    /// Pull one wave of pairs from the subquery, probe it in parallel,
    /// and append the reassembled rows to the output buffer. Workers
    /// are joined before this returns, so there is never an
    /// outstanding job between `next_batch` calls.
    fn run_wave(&mut self) -> Result<(), DbError> {
        let block = morsel_rows();
        let target = block * self.dop * 2;
        let mut pairs: Vec<(RowId, RowId)> = Vec::new();
        while pairs.len() < target && !self.sub_done {
            let rows = self.sub.next_rows()?;
            if rows.is_empty() {
                self.sub_done = true;
                break;
            }
            for row in &rows {
                let (Some(l), Some(r)) = (row[0].as_rowid(), row[1].as_rowid()) else {
                    return Err(DbError::Plan(
                        "rowid-pair subquery produced non-rowid values".into(),
                    ));
                };
                if self.seen.insert((l, r)) {
                    pairs.push((l, r));
                }
            }
        }
        if pairs.is_empty() {
            return Ok(());
        }
        let blocks: Vec<Block> = pairs
            .chunks(block)
            .enumerate()
            .map(|(idx, c)| Block { idx, pairs: c.to_vec() })
            .collect();
        let total = blocks.len();
        let eff = self.dop.min(total);
        let queue = TaskQueue::seed_round_robin(blocks, eff);
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<WorkerMsg>(eff * 2);
        let mut handles = Vec::with_capacity(eff);
        for w in 0..eff {
            let queue = Arc::clone(&queue);
            let cancel = Arc::clone(&cancel);
            let tx = tx.clone();
            let (lt, rt) = (Arc::clone(&self.lt), Arc::clone(&self.rt));
            let eval = Arc::clone(&self.eval);
            let cache = Arc::clone(&self.caches[w]);
            let gauge = self.gauge.clone();
            let wnode = self.nodes[w].clone();
            let (snap, width, budget) = (self.snap, self.width, self.budget);
            let (l_rel, r_rel, filter) = (self.l_rel, self.r_rel, self.filter_active);
            handles.push(pool::global().submit(move || {
                probe_worker(
                    w, queue, cancel, tx, lt, rt, snap, width, l_rel, r_rel, eval, filter, cache,
                    gauge, budget, wnode,
                )
            }));
        }
        drop(tx);
        let mut pending: BTreeMap<usize, JoinedBatch> = BTreeMap::new();
        let mut failure: Option<DbError> = None;
        let mut received = 0usize;
        while received < total {
            match rx.recv() {
                Ok(Ok(bo)) => {
                    received += 1;
                    if failure.is_none() {
                        let n = bo.rows.len() as u64;
                        drop(bo.charge);
                        match self.resident.add(n) {
                            Ok(()) => {
                                self.held += n;
                                pending.insert(bo.idx, bo.rows);
                            }
                            Err(e) => {
                                cancel.store(true, Ordering::Relaxed);
                                failure = Some(e);
                            }
                        }
                    }
                }
                Ok(Err(e)) => {
                    received += 1;
                    cancel.store(true, Ordering::Relaxed);
                    if failure.is_none() {
                        failure = Some(e);
                    }
                }
                Err(_) => {
                    if failure.is_none() {
                        failure = Some(DbError::Plan(
                            "parallel probe worker terminated unexpectedly".into(),
                        ));
                    }
                    break;
                }
            }
        }
        drop(rx);
        for h in handles {
            h.join();
        }
        for w in 0..eff {
            self.executed[w] += queue.executed(w);
            self.stolen[w] += queue.stolen(w);
        }
        if let Some(e) = failure {
            return Err(e);
        }
        for (_, rows) in pending {
            self.out.extend(rows);
        }
        Ok(())
    }

    fn stamp(&mut self) {
        if self.stamped {
            return;
        }
        self.stamped = true;
        for (i, wn) in self.nodes.iter().enumerate() {
            if let Some(n) = wn {
                n.set_metric("morsels_executed", self.executed[i]);
                n.set_metric("morsels_stolen", self.stolen[i]);
                let c = self.caches[i].lock();
                n.set_metric("pairs_probed", c.probed);
                n.set_metric("geom_cache_hits", c.hits);
                n.set_metric("geom_cache_misses", c.misses);
            }
        }
    }

    fn finish(&mut self) {
        self.done = true;
        self.stamp();
        self.sub.close();
        self.out.clear();
        self.held = 0;
        let _ = self.resident.set(0);
    }
}

#[allow(clippy::too_many_arguments)]
fn probe_worker(
    w: usize,
    queue: Arc<TaskQueue<Block>>,
    cancel: Arc<AtomicBool>,
    tx: SyncSender<WorkerMsg>,
    lt: Arc<RwLock<Table>>,
    rt: Arc<RwLock<Table>>,
    snap: Snapshot,
    width: usize,
    l_rel: usize,
    r_rel: usize,
    eval: Arc<FilterEval>,
    filter: bool,
    cache: Arc<Mutex<ProbeCache>>,
    gauge: MemoryGauge,
    budget: u64,
    node: Option<ProfileNode>,
) {
    while !cancel.load(Ordering::Relaxed) {
        let Some(pulled) = queue.pop(w) else { break };
        let b = pulled.task;
        let t0 = node.as_ref().map(|_| Instant::now());
        let mut charge = gauge.charge();
        let mut cache = cache.lock();
        let run = (|| -> Result<JoinedBatch, DbError> {
            let mut out = Vec::with_capacity(b.pairs.len());
            for &(lrid, rrid) in &b.pairs {
                // Probe both sides unconditionally so the cache
                // accounting identity (hits + misses == 2 × pairs)
                // holds exactly; pairs with a row invisible under the
                // snapshot are skipped, matching the serial join.
                let lv = cache.fetch(true, lrid, &lt, &snap);
                let rv = cache.fetch(false, rrid, &rt, &snap);
                cache.probed += 1;
                let (Some(lv), Some(rv)) = (lv, rv) else { continue };
                let mut jr = empty_joined(width);
                jr[l_rel] = RelRow { rid: Some(lrid), values: lv.to_vec() };
                jr[r_rel] = RelRow { rid: Some(rrid), values: rv.to_vec() };
                if filter && !eval.row_passes(&jr)? {
                    continue;
                }
                out.push(jr);
            }
            charge_rows(&mut charge, budget, out.len() as u64, "EXCHANGE")?;
            Ok(out)
        })();
        drop(cache);
        match run {
            Ok(rows) => {
                note_batch(&node, rows.len(), t0);
                if tx.send(Ok(MorselOut { idx: b.idx, rows, charge })).is_err() {
                    break;
                }
            }
            Err(e) => {
                drop(charge);
                let _ = tx.send(Err(e));
                break;
            }
        }
    }
}

impl BatchOp for ParallelSemiJoinExec<'_> {
    fn next_batch(&mut self) -> Result<JoinedBatch, DbError> {
        if self.done {
            return Ok(Vec::new());
        }
        let t0 = self.node.as_ref().map(|_| Instant::now());
        let before = self.node.as_ref().map(|_| self.db.counters().snapshot());
        while self.out.len() < BATCH_ROWS && !self.sub_done {
            if let Err(e) = self.run_wave() {
                if let (Some(n), Some(b)) = (&self.node, &before) {
                    n.add_metric_deltas(&self.db.counters().diff(b).pairs());
                }
                self.finish();
                return Err(e);
            }
        }
        if let (Some(n), Some(b)) = (&self.node, &before) {
            n.add_metric_deltas(&self.db.counters().diff(b).pairs());
        }
        let n = self.out.len().min(BATCH_ROWS);
        let batch: JoinedBatch = self.out.drain(..n).collect();
        self.held -= n as u64;
        self.resident.set(self.held)?;
        if batch.is_empty() {
            self.finish();
        } else {
            note_batch(&self.node, batch.len(), t0);
        }
        Ok(batch)
    }

    fn close(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::sql::ast::{CmpOp, ColumnRef, Expr};
    use sdo_storage::{DataType, Schema};

    fn test_db(rows: i64) -> Database {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("ID", DataType::Integer), ("X", DataType::Integer)]))
            .unwrap();
        for i in 0..rows {
            db.insert_row("t", vec![Value::Integer(i), Value::Integer(i % 7)]).unwrap();
        }
        db
    }

    fn test_ctx(db: &Database, budget: u64, dop: usize) -> ExecCtx<'_> {
        ExecCtx {
            db,
            gauge: MemoryGauge::new(),
            max_resident_rows: budget,
            materialize: false,
            parallel_dop: dop,
            snap: db.read_snapshot(),
        }
    }

    fn test_metas(db: &Database) -> Arc<Vec<RelMeta>> {
        let table = db.table("t").unwrap();
        let columns = table.read().schema().columns().iter().map(|c| c.name.clone()).collect();
        Arc::new(vec![RelMeta {
            binding: "T".into(),
            columns,
            table: Some(table),
            table_name: Some("T".into()),
        }])
    }

    /// A residual predicate that errors on every row (unknown column).
    fn failing_predicate() -> Predicate {
        Predicate::Compare {
            left: Expr::Column(ColumnRef { qualifier: None, column: "NO_SUCH_COLUMN".into() }),
            op: CmpOp::Eq,
            right: Expr::Literal(Value::Integer(1)),
        }
    }

    fn drain(exec: &mut dyn BatchOp) -> Result<usize, DbError> {
        let mut total = 0;
        loop {
            let b = exec.next_batch()?;
            if b.is_empty() {
                return Ok(total);
            }
            total += b.len();
        }
    }

    #[test]
    fn failing_filter_at_dop_4_releases_every_charge() {
        set_morsel_rows(64);
        let db = test_db(1000);
        let ctx = test_ctx(&db, u64::MAX, 4);
        let gauge = ctx.gauge.clone();
        let mut exec = ParallelScanFilterExec::new(
            &ctx,
            db.table("t").unwrap(),
            test_metas(&db),
            Vec::new(),
            vec![failing_predicate()],
            None,
            4,
            None,
        );
        let err = drain(&mut exec).expect_err("failing filter must fail the query");
        assert!(format!("{err:?}").contains("NO_SUCH_COLUMN"), "unexpected error: {err:?}");
        drop(exec);
        assert_eq!(gauge.current(), 0, "worker charges must be released after a failure");
    }

    #[test]
    fn budget_breach_mid_morsel_releases_every_charge() {
        set_morsel_rows(64);
        let db = test_db(1000);
        // Budget below one morsel: some worker errors mid-morsel on
        // its own charge account.
        let ctx = test_ctx(&db, 40, 4);
        let gauge = ctx.gauge.clone();
        let mut exec = ParallelScanFilterExec::new(
            &ctx,
            db.table("t").unwrap(),
            test_metas(&db),
            Vec::new(),
            Vec::new(),
            None,
            4,
            None,
        );
        let err = drain(&mut exec).expect_err("budget breach must fail the query");
        assert!(
            format!("{err:?}").contains("MAX_RESIDENT_ROWS"),
            "breach must name the budget: {err:?}"
        );
        drop(exec);
        assert_eq!(gauge.current(), 0, "charges must return to zero after a breach");
    }

    #[test]
    fn parallel_scan_preserves_order_and_balances_gauge() {
        set_morsel_rows(64);
        let db = test_db(1000);
        let ctx = test_ctx(&db, u64::MAX, 4);
        let gauge = ctx.gauge.clone();
        let mut exec = ParallelScanFilterExec::new(
            &ctx,
            db.table("t").unwrap(),
            test_metas(&db),
            Vec::new(),
            Vec::new(),
            None,
            4,
            None,
        );
        let mut ids = Vec::new();
        loop {
            let b = exec.next_batch().unwrap();
            if b.is_empty() {
                break;
            }
            for jr in b {
                ids.push(jr[0].values[0].as_integer().unwrap());
            }
        }
        assert_eq!(ids, (0..1000).collect::<Vec<_>>(), "morsel merge must preserve scan order");
        drop(exec);
        assert_eq!(gauge.current(), 0, "gauge must balance after a clean drain");
    }
}
