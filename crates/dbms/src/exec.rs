//! Statement execution.
//!
//! A deliberately small planner specialized to the query shapes in the
//! paper:
//!
//! * single-table selects with spatial operators → domain-index scan
//!   (primary + secondary filter inside the index) or functional
//!   evaluation when no index exists,
//! * two-table selects with a spatial operator over both geometry
//!   columns → **nested-loop join**: iterate the outer table, probe the
//!   inner table's domain index per outer geometry (the paper's
//!   baseline join strategy),
//! * selects with `(a.rowid, b.rowid) IN (SELECT ... FROM TABLE(...))`
//!   → evaluate the table function, then fetch the paired rows — the
//!   paper's **table-function join** strategy,
//! * table-function scans with scalar and `CURSOR(SELECT ...)`
//!   arguments.

use crate::db::{Database, QueryResult, TfArg};
use crate::error::DbError;
use crate::extensible::OperatorCall;
use crate::operators::{self, ExecCtx, Resident};
use crate::session::SessionState;
use crate::sql::ast::*;
use parking_lot::RwLock;
use sdo_geom::{Geometry, RelateMask};
use sdo_obs::ProfileSession;
use sdo_storage::{ColumnDef, CountersSnapshot, RowId, Schema, Table, Value};
use sdo_tablefunc::Row;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Execute a parsed statement on the default session.
pub fn execute(db: &Database, stmt: &Statement) -> Result<QueryResult, DbError> {
    execute_in(db, db.default_session_state(), stmt)
}

/// Execute a parsed statement in a session.
///
/// Every top-level statement runs under an [`sdo_obs`] profile session,
/// so the session's `last_profile` always reflects its most recent
/// statement. `EXPLAIN ANALYZE` executes the wrapped statement the same
/// way but returns the rendered profile tree as its result rows.
pub(crate) fn execute_in(
    db: &Database,
    sess: &SessionState,
    stmt: &Statement,
) -> Result<QueryResult, DbError> {
    if let Statement::ExplainAnalyze(inner) = stmt {
        let session = ProfileSession::begin(statement_label(inner));
        let before = db.counters().snapshot();
        let result = execute_inner(db, sess, inner);
        if let Ok(r) = &result {
            session.root().add_rows(r.rows.len() as u64);
        }
        note_txn_counters(db, session.root(), &before);
        let profile = session.finish();
        result?;
        *sess.last_profile.write() = Some(profile.clone());
        return Ok(explain_result(profile.render_text().lines().map(String::from).collect()));
    }
    if sdo_obs::current().is_some() {
        // Already inside an enclosing profile node (e.g. a harness that
        // opened its own session): contribute to it, don't nest sessions.
        return execute_inner(db, sess, stmt);
    }
    let session = ProfileSession::begin(statement_label(stmt));
    let before = db.counters().snapshot();
    let result = execute_inner(db, sess, stmt);
    if let Ok(r) = &result {
        session.root().add_rows(r.rows.len() as u64);
    }
    note_txn_counters(db, session.root(), &before);
    *sess.last_profile.write() = Some(session.finish());
    result
}

/// Publish the statement's transaction/WAL work on the profile root:
/// commits, aborts, log bytes, and log syncs it caused.
fn note_txn_counters(db: &Database, root: &sdo_obs::ProfileNode, before: &CountersSnapshot) {
    let diff = db.counters().diff(before);
    let pairs: Vec<(&str, u64)> = ["txn_commits", "txn_aborts", "wal_bytes_written", "wal_fsyncs"]
        .iter()
        .map(|n| (*n, diff.get(n).unwrap_or(0)))
        .collect();
    root.add_metric_deltas(&pairs);
}

/// Root label for a statement's profile tree.
fn statement_label(stmt: &Statement) -> String {
    match stmt {
        Statement::CreateTable { name, .. } => format!("CREATE TABLE {name}"),
        Statement::DropTable { name } => format!("DROP TABLE {name}"),
        Statement::Insert { table, .. } => format!("INSERT {table}"),
        Statement::Delete { table, .. } => format!("DELETE {table}"),
        Statement::Update { table, .. } => format!("UPDATE {table}"),
        Statement::CreateIndex { name, .. } => format!("CREATE INDEX {name}"),
        Statement::DropIndex { name } => format!("DROP INDEX {name}"),
        Statement::Select(_) => "SELECT".into(),
        Statement::Explain(_) => "EXPLAIN".into(),
        Statement::ExplainAnalyze(_) => "EXPLAIN ANALYZE".into(),
        Statement::AlterSession { name, .. } => format!("ALTER SESSION SET {name}"),
        Statement::Begin => "BEGIN".into(),
        Statement::Commit => "COMMIT".into(),
        Statement::Rollback => "ROLLBACK".into(),
        Statement::Prepare { name, .. } => format!("PREPARE {name}"),
        Statement::ExecutePrepared { name, .. } => format!("EXECUTE {name}"),
        Statement::Deallocate { name } => format!("DEALLOCATE {name}"),
        Statement::Analyze { table } => format!("ANALYZE {table}"),
    }
}

/// Publish the statement's peak resident-row count on the enclosing
/// profile node (rendered by `EXPLAIN ANALYZE`).
fn note_peak_resident(ctx: &ExecCtx<'_>) {
    if let Some(p) = sdo_obs::current() {
        p.set_metric("peak_resident_rows", ctx.gauge.peak());
    }
}

fn execute_inner(
    db: &Database,
    sess: &SessionState,
    stmt: &Statement,
) -> Result<QueryResult, DbError> {
    match stmt {
        Statement::CreateTable { name, columns } => {
            let schema = Schema::new(columns.iter().map(|(n, t)| ColumnDef::new(n, *t)).collect());
            db.create_table_in(sess, name, schema)?;
            Ok(QueryResult::empty())
        }
        Statement::DropTable { name } => {
            db.drop_table_in(sess, name)?;
            Ok(QueryResult::empty())
        }
        Statement::Insert { table, values } => {
            let row = values.iter().map(eval_const).collect::<Result<Vec<_>, _>>()?;
            db.with_txn_in(sess, move |db, txn| db.txn_insert(txn, table, row))?;
            Ok(QueryResult::empty())
        }
        Statement::Delete { table, where_clause } => {
            // The doomed set is collected through the same streaming
            // scan + filter operators as SELECT.
            let ctx = ExecCtx::new(db, sess);
            let matched = operators::collect_matching(&ctx, table, where_clause)?;
            let n = matched.len();
            // One transaction for the whole statement: an autocommitted
            // multi-row DELETE is all-or-nothing.
            db.with_txn_in(sess, |db, txn| {
                for (rid, _) in matched {
                    db.txn_delete(txn, table, rid)?;
                }
                Ok(())
            })?;
            note_peak_resident(&ctx);
            Ok(QueryResult {
                columns: vec!["DELETED".into()],
                rows: vec![vec![Value::Integer(n as i64)]],
            })
        }
        Statement::Update { table, assignments, where_clause } => {
            let ctx = ExecCtx::new(db, sess);
            let matched = operators::collect_matching(&ctx, table, where_clause)?;
            let handle = db.table(table)?;
            let columns: Vec<String> =
                handle.read().schema().columns().iter().map(|c| c.name.clone()).collect();
            // Resolve assignment targets against the table schema.
            let targets: Vec<(usize, &Expr)> = assignments
                .iter()
                .map(|(col, e)| {
                    columns
                        .iter()
                        .position(|c| c.eq_ignore_ascii_case(col))
                        .map(|i| (i, e))
                        .ok_or_else(|| DbError::Plan(format!("no column {col} on {table}")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let metas = [RelMeta {
                binding: table.to_ascii_uppercase(),
                columns,
                table: Some(handle),
                table_name: Some(table.to_ascii_uppercase()),
            }];
            let mut updates = Vec::with_capacity(matched.len());
            for (rid, values) in matched {
                let joined = vec![RelRow { rid: Some(rid), values }];
                let mut new_row = joined[0].values.clone();
                for (ci, e) in &targets {
                    new_row[*ci] = eval_expr(&metas, &joined, e)?;
                }
                updates.push((rid, new_row));
            }
            let n = updates.len();
            // Statement-atomic, like DELETE above.
            db.with_txn_in(sess, |db, txn| {
                for (rid, row) in updates {
                    db.txn_update(txn, table, rid, row)?;
                }
                Ok(())
            })?;
            note_peak_resident(&ctx);
            Ok(QueryResult {
                columns: vec!["UPDATED".into()],
                rows: vec![vec![Value::Integer(n as i64)]],
            })
        }
        Statement::CreateIndex { name, table, column, indextype, parameters, parallel } => {
            db.create_domain_index_in(sess, name, table, column, indextype, parameters, *parallel)?;
            Ok(QueryResult::empty())
        }
        Statement::DropIndex { name } => {
            db.drop_domain_index_in(sess, name)?;
            Ok(QueryResult::empty())
        }
        Statement::Select(sel) => run_select_top(db, sess, sel),
        Statement::Explain(sel) => explain_select(db, sess, sel),
        // A nested `EXPLAIN ANALYZE` re-enters the profiling wrapper.
        Statement::ExplainAnalyze(_) => execute_in(db, sess, stmt),
        Statement::AlterSession { name, value } => {
            sess.options.write().set(name, value)?;
            Ok(QueryResult::empty())
        }
        Statement::Begin => {
            db.begin_txn_in(sess)?;
            Ok(QueryResult::empty())
        }
        Statement::Commit => {
            db.commit_txn_in(sess)?;
            Ok(QueryResult::empty())
        }
        Statement::Rollback => {
            db.rollback_txn_in(sess)?;
            Ok(QueryResult::empty())
        }
        Statement::Prepare { name, stmt: body } => {
            if matches!(**body, Statement::Prepare { .. }) {
                return Err(DbError::Plan("cannot PREPARE a PREPARE statement".into()));
            }
            let nparams = sess.insert_prepared(name, (**body).clone());
            Ok(QueryResult {
                columns: vec!["PREPARED".into(), "PARAMS".into()],
                rows: vec![vec![Value::text(name.clone()), Value::Integer(nparams as i64)]],
            })
        }
        Statement::ExecutePrepared { name, args } => {
            let prepared = sess.get_prepared(name)?;
            let vals = args.iter().map(eval_const).collect::<Result<Vec<_>, _>>()?;
            if vals.len() != prepared.nparams {
                return Err(DbError::Plan(format!(
                    "prepared statement {name} expects {} bind values, got {}",
                    prepared.nparams,
                    vals.len()
                )));
            }
            let bound = crate::sql::bind_statement(&prepared.stmt, &vals)?;
            // Prepared bodies may themselves EXECUTE other prepared
            // statements; the session's depth guard turns recursive
            // chains into an error instead of a stack overflow.
            let _depth = sess.enter_execute()?;
            execute_inner(db, sess, &bound)
        }
        Statement::Deallocate { name } => {
            sess.remove_prepared(name)?;
            Ok(QueryResult::empty())
        }
        Statement::Analyze { table } => {
            let stats = db.analyze_table_in(sess, table)?;
            let histograms = stats.spatial.iter().flatten().count();
            Ok(QueryResult {
                columns: vec![
                    "TABLE".into(),
                    "ROWS".into(),
                    "COLUMNS".into(),
                    "SPATIAL_HISTOGRAMS".into(),
                ],
                rows: vec![vec![
                    Value::text(stats.table.clone()),
                    Value::Integer(stats.rows as i64),
                    Value::Integer(stats.columns.len() as i64),
                    Value::Integer(histograms as i64),
                ]],
            })
        }
    }
}

/// Describe the costed plan `run_select` would execute, without
/// executing it: the planner's operator tree with estimated rows, cost,
/// and the reason each path was chosen. `CURSOR(...)` arguments are
/// never evaluated.
fn explain_select(
    db: &Database,
    sess: &crate::session::SessionState,
    sel: &Select,
) -> Result<QueryResult, DbError> {
    let env = crate::planner::PlanEnv::from_options(&sess.options.read());
    let plan = crate::planner::plan_select(db, sel, &env)?;
    Ok(explain_result(plan.root.render_lines()))
}

fn explain_result(lines: Vec<String>) -> QueryResult {
    QueryResult {
        columns: vec!["PLAN".into()],
        rows: lines.into_iter().map(|l| vec![Value::text(l)]).collect(),
    }
}

// ---------------------------------------------------------------------------
// Relations
// ---------------------------------------------------------------------------

/// A bound FROM item with materialized rows.
struct Relation {
    binding: String,
    columns: Vec<String>,
    /// `(rowid, values)`; table functions have no rowids.
    rows: Vec<(Option<RowId>, Row)>,
    /// Set for base tables (used for index lookup and rowid fetch).
    table: Option<Arc<RwLock<Table>>>,
    table_name: Option<String>,
}

/// Schema view of a relation used during predicate evaluation and by
/// the streaming operators (which never materialize rows and so have
/// no [`Relation`]).
#[derive(Clone)]
pub(crate) struct RelMeta {
    pub(crate) binding: String,
    pub(crate) columns: Vec<String>,
    /// Set for base tables (used for index lookup and rowid fetch).
    pub(crate) table: Option<Arc<RwLock<Table>>>,
    pub(crate) table_name: Option<String>,
}

impl Relation {
    fn clone_meta(&self) -> RelMeta {
        RelMeta {
            binding: self.binding.clone(),
            columns: self.columns.clone(),
            table: self.table.clone(),
            table_name: self.table_name.clone(),
        }
    }
}

/// One relation's contribution to a joined row.
#[derive(Clone)]
pub(crate) struct RelRow {
    pub(crate) rid: Option<RowId>,
    pub(crate) values: Row,
}

fn materialize_table(
    db: &Database,
    name: &str,
    binding: &str,
    snap: sdo_storage::Snapshot,
) -> Result<Relation, DbError> {
    let table = db.table(name)?;
    let guard = table.read();
    let columns: Vec<String> = guard.schema().columns().iter().map(|c| c.name.clone()).collect();
    let rows: Vec<(Option<RowId>, Row)> =
        guard.scan_at(snap).map(|(rid, values)| (Some(rid), values.to_vec())).collect();
    drop(guard);
    Ok(Relation {
        binding: binding.to_ascii_uppercase(),
        columns,
        rows,
        table: Some(table),
        table_name: Some(name.to_ascii_uppercase()),
    })
}

fn bind_from_item(ctx: &ExecCtx<'_>, item: &FromItem) -> Result<Relation, DbError> {
    let db = ctx.db;
    match item {
        FromItem::Table { name, .. } => {
            let parent = sdo_obs::current();
            let t0 = parent.as_ref().map(|_| Instant::now());
            let before = parent.as_ref().map(|_| db.counters().snapshot());
            let rel = materialize_table(db, name, item.binding(), ctx.snap)?;
            if let (Some(p), Some(t0), Some(b)) = (&parent, t0, &before) {
                let node = p.child(format!("TABLE SCAN {}", name.to_ascii_uppercase()));
                node.add_rows(rel.rows.len() as u64);
                node.add_batches(1);
                node.add_wall(t0.elapsed());
                node.add_metric_deltas(&db.counters().diff(b).pairs());
            }
            Ok(rel)
        }
        FromItem::TableFunction { name, args, .. } => {
            let mut tf_args = Vec::with_capacity(args.len());
            for a in args {
                match a {
                    TfArgAst::Expr(e) => tf_args.push(TfArg::Scalar(eval_const(e)?)),
                    TfArgAst::Cursor(sub) => {
                        let res = run_subselect(ctx, sub)?;
                        tf_args.push(TfArg::Cursor(res.rows));
                    }
                }
            }
            let node = sdo_obs::current()
                .map(|p| p.child(format!("TABLE FUNCTION SCAN {}", name.to_ascii_uppercase())));
            let t0 = node.as_ref().map(|_| Instant::now());
            let before = node.as_ref().map(|_| db.counters().snapshot());
            let mut inst = db.make_table_function(name, tf_args)?;
            if let Some(n) = &node {
                inst.func.attach_profile(n);
            }
            let rows = sdo_tablefunc::collect_all(inst.func.as_mut(), 1024)?;
            if let (Some(n), Some(t0), Some(b)) = (&node, t0, &before) {
                n.add_rows(rows.len() as u64);
                n.add_wall(t0.elapsed());
                n.add_metric_deltas(&db.counters().diff(b).pairs());
            }
            Ok(Relation {
                binding: item.binding().to_ascii_uppercase(),
                columns: inst.columns.iter().map(|c| c.to_ascii_uppercase()).collect(),
                rows: rows.into_iter().map(|r| (None, r)).collect(),
                table: None,
                table_name: None,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

/// Top-level SELECT entry: builds the execution context from the
/// session options, runs the query, and publishes the statement's peak
/// resident-row count.
fn run_select_top(
    db: &Database,
    sess: &SessionState,
    sel: &Select,
) -> Result<QueryResult, DbError> {
    let ctx = ExecCtx::new(db, sess);
    let res = run_select(&ctx, sel);
    note_peak_resident(&ctx);
    res
}

/// Run a nested SELECT (cursor argument, semijoin subquery) in the
/// enclosing statement's context, honoring its execution mode and
/// sharing its resident-row gauge.
pub(crate) fn run_subselect(ctx: &ExecCtx<'_>, sel: &Select) -> Result<QueryResult, DbError> {
    run_select(ctx, sel)
}

pub(crate) fn run_select(ctx: &ExecCtx<'_>, sel: &Select) -> Result<QueryResult, DbError> {
    let db = ctx.db;
    // Pipelined aggregation fast path: `SELECT COUNT(*) FROM TABLE(f(...))`
    // with no other clauses streams batches through the table function
    // without ever materializing the result — the memory property the
    // paper's pipelining provides. Without this, counting a 250K-star
    // self-join (tens of millions of rowid pairs) would materialize
    // gigabytes for a single scalar.
    if sel.projection == [SelectItem::CountStar]
        && sel.where_clause.is_empty()
        && sel.order_by.is_empty()
        && sel.limit.is_none()
        && sel.from.len() == 1
    {
        if let FromItem::TableFunction { name, args, .. } = &sel.from[0] {
            let mut tf_args = Vec::with_capacity(args.len());
            for a in args {
                match a {
                    TfArgAst::Expr(e) => tf_args.push(TfArg::Scalar(eval_const(e)?)),
                    TfArgAst::Cursor(sub) => {
                        tf_args.push(TfArg::Cursor(run_subselect(ctx, sub)?.rows))
                    }
                }
            }
            let mut inst = db.make_table_function(name, tf_args)?;
            let op = sdo_obs::current().map(|c| c.child(format!("PIPELINED COUNT TABLE({name})")));
            let before = op.as_ref().map(|_| db.counters().snapshot());
            let t0 = op.as_ref().map(|_| Instant::now());
            if let Some(node) = &op {
                inst.func.attach_profile(node);
            }
            if let Err(e) = inst.func.start() {
                // Release any resources start() acquired before
                // failing (a parallel executor may have launched some
                // slaves already).
                inst.func.close();
                return Err(e.into());
            }
            let mut resident = ctx.resident(format!("PIPELINED COUNT TABLE({name})"));
            let mut n: i64 = 0;
            loop {
                let batch = match inst.func.fetch(8192) {
                    Ok(b) => b,
                    Err(e) => {
                        inst.func.close();
                        return Err(e.into());
                    }
                };
                if batch.is_empty() {
                    break;
                }
                // Only the batch in flight is ever resident.
                resident.set(batch.len() as u64)?;
                n += batch.len() as i64;
                if let Some(node) = &op {
                    node.add_batches(1);
                    node.add_rows(batch.len() as u64);
                }
            }
            inst.func.close();
            if let (Some(node), Some(t0), Some(b)) = (&op, t0, &before) {
                node.add_wall(t0.elapsed());
                node.add_metric_deltas(&db.counters().diff(b).pairs());
            }
            return Ok(QueryResult {
                columns: vec!["COUNT(*)".into()],
                rows: vec![vec![Value::Integer(n)]],
            });
        }
    }

    if ctx.materialize {
        run_select_materialized(ctx, sel)
    } else {
        operators::run_select_streaming(ctx, sel)
    }
}

/// The legacy materialize-then-filter executor, kept behind
/// `ALTER SESSION SET materialize = on` as an equivalence oracle for
/// the streaming pipeline. Its buffers are charged against the shared
/// resident-row gauge, so `max_resident_rows` bounds it too.
fn run_select_materialized(ctx: &ExecCtx<'_>, sel: &Select) -> Result<QueryResult, DbError> {
    let db = ctx.db;
    let relations: Vec<Relation> =
        sel.from.iter().map(|f| bind_from_item(ctx, f)).collect::<Result<Vec<_>, _>>()?;
    let mut rel_resident = ctx.resident("MATERIALIZED SCAN");
    for r in &relations {
        rel_resident.add(r.rows.len() as u64)?;
    }
    let metas: Vec<RelMeta> = relations.iter().map(|r| r.clone_meta()).collect();

    // Classify conjuncts.
    let op_names = db.operator_names();
    let mut rowid_pairs: Vec<&Predicate> = Vec::new();
    let mut spatial: Vec<SpatialPred> = Vec::new();
    let mut residual: Vec<&Predicate> = Vec::new();
    for p in &sel.where_clause {
        match p {
            Predicate::RowidPairIn { .. } => rowid_pairs.push(p),
            Predicate::Compare { left: Expr::FnCall { name, args }, op: CmpOp::Eq, right }
                if op_names.iter().any(|o| o.eq_ignore_ascii_case(name))
                    && matches!(right, Expr::Literal(v) if v.as_text() == Some("TRUE")) =>
            {
                spatial.push(classify_spatial(&metas, name, args)?)
            }
            other => residual.push(other),
        }
    }

    // Choose a join strategy and produce joined rows. Each strategy
    // gets an operator node; nodes created while it runs (table
    // function scans inside the semijoin subquery, say) nest under it.
    let profile = sdo_obs::current();
    let mut joined_resident = ctx.resident("MATERIALIZED JOIN");
    let mut joined: Vec<Vec<RelRow>>;
    if let Some(Predicate::RowidPairIn { left, right, subquery }) = rowid_pairs.first() {
        let node = profile.as_ref().map(|p| p.child("ROWID-PAIR SEMIJOIN"));
        let t0 = node.as_ref().map(|_| Instant::now());
        let before = node.as_ref().map(|_| db.counters().snapshot());
        {
            let _scope = node.clone().map(sdo_obs::enter);
            joined = rowid_pair_join(ctx, &relations, &metas, left, right, subquery)?;
        }
        if let (Some(n), Some(t0), Some(b)) = (&node, t0, &before) {
            n.add_rows(joined.len() as u64);
            n.add_wall(t0.elapsed());
            n.add_metric_deltas(&db.counters().diff(b).pairs());
        }
        joined_resident.set(joined.len() as u64)?;
        // Any spatial predicates left over apply as filters.
        joined = apply_spatial_filters(db, &relations, joined, &spatial, ctx.snap)?;
    } else if let Some(join_pred) = spatial.iter().position(|s| s.is_join()) {
        let mut jp = spatial.remove(join_pred);
        // Same orientation as the streaming executor: the planner's
        // costed choice of which side drives the loop.
        // The materializing executor never parallelizes, so plan with
        // a serial environment.
        if let Ok(plan) = crate::planner::plan_select(db, sel, &crate::planner::PlanEnv::serial()) {
            if plan.join.as_ref().map(|j| j.swap).unwrap_or(false) {
                jp = crate::planner::transpose_pred(jp)?;
            }
        }
        let node = profile.as_ref().map(|p| p.child(format!("NESTED LOOP JOIN ({})", jp.name)));
        let t0 = node.as_ref().map(|_| Instant::now());
        let before = node.as_ref().map(|_| db.counters().snapshot());
        {
            let _scope = node.clone().map(sdo_obs::enter);
            joined = nested_loop_join(db, &relations, &jp, ctx.snap)?;
        }
        if let (Some(n), Some(t0), Some(b)) = (&node, t0, &before) {
            n.add_rows(joined.len() as u64);
            n.add_wall(t0.elapsed());
            n.add_metric_deltas(&db.counters().diff(b).pairs());
        }
        joined_resident.set(joined.len() as u64)?;
        joined = apply_spatial_filters(db, &relations, joined, &spatial, ctx.snap)?;
    } else {
        let node = (relations.len() > 1)
            .then(|| profile.as_ref().map(|p| p.child("CARTESIAN PRODUCT")))
            .flatten();
        let t0 = node.as_ref().map(|_| Instant::now());
        joined = cross_product(&relations, &mut joined_resident)?;
        if let (Some(n), Some(t0)) = (&node, t0) {
            n.add_rows(joined.len() as u64);
            n.add_wall(t0.elapsed());
        }
        joined = apply_spatial_filters(db, &relations, joined, &spatial, ctx.snap)?;
    }
    joined_resident.set(joined.len() as u64)?;

    // Residual filters.
    if !residual.is_empty() {
        let mut kept = Vec::with_capacity(joined.len());
        for row in joined {
            let mut ok = true;
            for p in &residual {
                if !eval_predicate(&metas, &row, p)? {
                    ok = false;
                    break;
                }
            }
            if ok {
                kept.push(row);
            }
        }
        joined = kept;
    }

    // ORDER BY (evaluated over joined rows, so keys may reference
    // unprojected columns), then LIMIT.
    if !sel.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, Vec<RelRow>)> = Vec::with_capacity(joined.len());
        for row in joined {
            let keys = sel
                .order_by
                .iter()
                .map(|k| eval_expr(&metas, &row, &k.expr))
                .collect::<Result<Vec<_>, _>>()?;
            keyed.push((keys, row));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            for (i, key) in sel.order_by.iter().enumerate() {
                let ord = a[i].sql_cmp(&b[i]);
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        joined = keyed.into_iter().map(|(_, r)| r).collect();
    }
    if let Some(n) = sel.limit {
        joined.truncate(n);
    }

    project(&metas, joined, &sel.projection)
}

// ---------------------------------------------------------------------------
// Spatial predicate classification
// ---------------------------------------------------------------------------

pub(crate) struct SpatialPred {
    /// Operator name, uppercased.
    pub(crate) name: String,
    /// `(relation index, column index)` of the target geometry column.
    pub(crate) target: (usize, usize),
    /// Second argument: another column (join) or a constant geometry.
    pub(crate) other: SpatialOperand,
    /// Remaining evaluated arguments (mask / distance).
    pub(crate) extra: Vec<Value>,
}

pub(crate) enum SpatialOperand {
    Column(usize, usize),
    Const(Arc<Geometry>),
}

impl SpatialPred {
    pub(crate) fn is_join(&self) -> bool {
        matches!(self.other, SpatialOperand::Column(..))
    }
}

pub(crate) fn classify_spatial(
    metas: &[RelMeta],
    name: &str,
    args: &[Expr],
) -> Result<SpatialPred, DbError> {
    if args.len() < 2 {
        return Err(DbError::Plan(format!("{name} needs at least 2 arguments")));
    }
    let target = match &args[0] {
        Expr::Column(cr) => resolve_column_meta(metas, cr)?,
        _ => return Err(DbError::Plan(format!("{name}: first argument must be a column"))),
    };
    let other = match &args[1] {
        Expr::Column(cr) => {
            let (r, c) = resolve_column_meta(metas, cr)?;
            SpatialOperand::Column(r, c)
        }
        e => {
            let v = eval_const(e)?;
            let g = v.as_geometry().cloned().ok_or_else(|| {
                DbError::Plan(format!("{name}: second argument must be a geometry"))
            })?;
            SpatialOperand::Const(g)
        }
    };
    let extra = args[2..].iter().map(eval_const).collect::<Result<Vec<_>, _>>()?;
    Ok(SpatialPred { name: name.to_ascii_uppercase(), target, other, extra })
}

// ---------------------------------------------------------------------------
// Join strategies
// ---------------------------------------------------------------------------

/// The paper's table-function join: evaluate the subquery (typically a
/// `TABLE(SPATIAL_JOIN(...))` scan) into rowid pairs, then fetch the
/// paired base rows.
fn rowid_pair_join(
    ctx: &ExecCtx<'_>,
    relations: &[Relation],
    metas: &[RelMeta],
    left: &ColumnRef,
    right: &ColumnRef,
    subquery: &Select,
) -> Result<Vec<Vec<RelRow>>, DbError> {
    if relations.len() != 2 {
        return Err(DbError::Plan("rowid-pair IN requires exactly two tables".into()));
    }
    let (l_rel, l_col) = resolve_column_meta(metas, left)?;
    let (r_rel, r_col) = resolve_column_meta(metas, right)?;
    if l_col != usize::MAX || r_col != usize::MAX {
        return Err(DbError::Plan("rowid-pair IN requires ROWID references".into()));
    }
    if l_rel == r_rel {
        return Err(DbError::Plan("rowid pair must reference two distinct tables".into()));
    }
    let sub = run_subselect(ctx, subquery)?;
    if sub.columns.len() < 2 {
        return Err(DbError::Plan("rowid-pair subquery must project two rowid columns".into()));
    }
    // The pair buffer is an intermediate, not the client result: charge it.
    let mut sub_resident = ctx.resident("ROWID-PAIR SEMIJOIN");
    sub_resident.add(sub.rows.len() as u64)?;
    // Fetch the paired rows. Using Table::get here (not the already
    // materialized scan) deliberately charges the per-pair fetch I/O,
    // mirroring the semijoin's real cost profile.
    let lt = relations[l_rel]
        .table
        .as_ref()
        .ok_or_else(|| DbError::Plan("rowid pair over non-table".into()))?;
    let rt = relations[r_rel]
        .table
        .as_ref()
        .ok_or_else(|| DbError::Plan("rowid pair over non-table".into()))?;
    let mut out = Vec::with_capacity(sub.rows.len());
    let mut seen = std::collections::HashSet::with_capacity(sub.rows.len());
    for row in &sub.rows {
        let (Some(lrid), Some(rrid)) = (row[0].as_rowid(), row[1].as_rowid()) else {
            return Err(DbError::Plan("rowid-pair subquery produced non-rowid values".into()));
        };
        if !seen.insert((lrid, rrid)) {
            continue; // IN semantics deduplicate
        }
        // Snapshot-aware fetch: a pair whose row is not visible under
        // the statement snapshot (e.g. produced by a table function
        // pinned at a slightly newer view) is skipped, not an error.
        let lvals = match lt.read().get_at(lrid, &ctx.snap) {
            Ok(v) => v,
            Err(_) => continue,
        };
        let rvals = match rt.read().get_at(rrid, &ctx.snap) {
            Ok(v) => v,
            Err(_) => continue,
        };
        let mut jr = vec![RelRow { rid: None, values: Vec::new() }; relations.len()];
        jr[l_rel] = RelRow { rid: Some(lrid), values: lvals.to_vec() };
        jr[r_rel] = RelRow { rid: Some(rrid), values: rvals.to_vec() };
        out.push(jr);
    }
    Ok(out)
}

/// Nested-loop spatial join: iterate the outer relation, probe the
/// inner relation's domain index (or fall back to a scan) per row.
fn nested_loop_join(
    db: &Database,
    relations: &[Relation],
    pred: &SpatialPred,
    snap: sdo_storage::Snapshot,
) -> Result<Vec<Vec<RelRow>>, DbError> {
    let (outer_rel, outer_col) = pred.target;
    let SpatialOperand::Column(inner_rel, inner_col) = pred.other else {
        unreachable!("is_join checked by caller")
    };
    if outer_rel == inner_rel {
        return Err(DbError::Plan("spatial join requires two distinct tables".into()));
    }
    // Index available on the inner column?
    let inner = &relations[inner_rel];
    let index = inner.table_name.as_deref().and_then(|t| db.index_on(t, &inner.columns[inner_col]));
    // Rowid -> position map for index probes.
    let rid_pos: HashMap<RowId, usize> =
        inner.rows.iter().enumerate().filter_map(|(i, (rid, _))| rid.map(|r| (r, i))).collect();

    let mut out = Vec::new();
    for (orid, ovals) in &relations[outer_rel].rows {
        let Some(g) = ovals[outer_col].as_geometry() else { continue };
        let matches: Vec<usize> = if let Some((_, inst)) = &index {
            // The SQL predicate is OP(outer, inner, extra); the index
            // evaluates OP(inner_data, query, extra), so asymmetric
            // SDO_RELATE masks must be transposed for the probe.
            let mut args = vec![Value::Geometry(Arc::clone(g))];
            args.extend(transpose_spatial_extra(&pred.name, &pred.extra)?);
            let call = OperatorCall { name: pred.name.clone(), args, snap };
            inst.read()
                .evaluate(&call)?
                .into_iter()
                .filter_map(|rid| rid_pos.get(&rid).copied())
                .collect()
        } else {
            // Functional fallback: exact predicate against every row.
            inner
                .rows
                .iter()
                .enumerate()
                .filter(|(_, (_, ivals))| {
                    ivals[inner_col]
                        .as_geometry()
                        .map(|ig| eval_spatial_fn(&pred.name, g, ig, &pred.extra).unwrap_or(false))
                        .unwrap_or(false)
                })
                .map(|(i, _)| i)
                .collect()
        };
        for i in matches {
            let (irid, ivals) = &inner.rows[i];
            let mut jr = vec![RelRow { rid: None, values: Vec::new() }; relations.len()];
            jr[outer_rel] = RelRow { rid: *orid, values: ovals.clone() };
            jr[inner_rel] = RelRow { rid: *irid, values: ivals.clone() };
            out.push(jr);
        }
    }
    Ok(out)
}

/// Cartesian product, guarded by the resident-row gauge: every
/// expansion stage is charged, so a runaway product fails with the
/// session's `max_resident_rows` budget instead of a hard-coded cap.
fn cross_product(
    relations: &[Relation],
    resident: &mut Resident,
) -> Result<Vec<Vec<RelRow>>, DbError> {
    let mut acc: Vec<Vec<RelRow>> = vec![Vec::new()];
    for rel in relations {
        let mut next = Vec::with_capacity(acc.len() * rel.rows.len());
        for prefix in &acc {
            for (rid, vals) in &rel.rows {
                let mut row = prefix.clone();
                row.push(RelRow { rid: *rid, values: vals.clone() });
                next.push(row);
            }
        }
        acc = next;
        resident.set(acc.len() as u64)?;
    }
    Ok(acc)
}

/// Apply non-join spatial predicates (window queries) to joined rows,
/// using domain indexes when a whole-relation prefilter is possible.
fn apply_spatial_filters(
    db: &Database,
    relations: &[Relation],
    joined: Vec<Vec<RelRow>>,
    preds: &[SpatialPred],
    snap: sdo_storage::Snapshot,
) -> Result<Vec<Vec<RelRow>>, DbError> {
    let mut rows = joined;
    for p in preds {
        if p.is_join() {
            // A second join predicate: evaluate functionally per row.
            let SpatialOperand::Column(ir, ic) = p.other else { unreachable!() };
            let (or, oc) = p.target;
            rows.retain(|jr| match (jr[or].values.get(oc), jr[ir].values.get(ic)) {
                (Some(a), Some(b)) => match (a.as_geometry(), b.as_geometry()) {
                    (Some(ga), Some(gb)) => {
                        eval_spatial_fn(&p.name, ga, gb, &p.extra).unwrap_or(false)
                    }
                    _ => false,
                },
                _ => false,
            });
            continue;
        }
        let SpatialOperand::Const(qg) = &p.other else { unreachable!() };
        let (ri, ci) = p.target;
        // Index prefilter: compute the satisfying rowid set once.
        let rel = &relations[ri];
        let index = rel.table_name.as_deref().and_then(|t| db.index_on(t, &rel.columns[ci]));
        if let Some((_, inst)) = index {
            let mut args = vec![Value::Geometry(Arc::clone(qg))];
            args.extend(p.extra.iter().cloned());
            let call = OperatorCall { name: p.name.clone(), args, snap };
            let ok: std::collections::HashSet<RowId> =
                inst.read().evaluate(&call)?.into_iter().collect();
            rows.retain(|jr| jr[ri].rid.map(|r| ok.contains(&r)).unwrap_or(false));
        } else if p.name.eq_ignore_ascii_case("SDO_NN") {
            // Functional k-NN without an index: rank the relation's rows
            // by exact distance and keep the top k.
            let k = p
                .extra
                .first()
                .and_then(|v| v.as_integer())
                .filter(|&k| k >= 1)
                .ok_or_else(|| DbError::Plan("SDO_NN needs a result count".into()))?
                as usize;
            let mut ranked: Vec<(f64, RowId)> = rel
                .rows
                .iter()
                .filter_map(|(rid, vals)| {
                    let g = vals.get(ci)?.as_geometry()?;
                    Some((sdo_geom::distance(g, qg), (*rid)?))
                })
                .collect();
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let keep: std::collections::HashSet<RowId> =
                ranked.into_iter().take(k).map(|(_, r)| r).collect();
            rows.retain(|jr| jr[ri].rid.map(|r| keep.contains(&r)).unwrap_or(false));
        } else {
            rows.retain(|jr| {
                jr[ri]
                    .values
                    .get(ci)
                    .and_then(|v| v.as_geometry())
                    .is_some_and(|g| eval_spatial_fn(&p.name, g, qg, &p.extra).unwrap_or(false))
            });
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Evaluate a constant expression (no column references).
pub fn eval_const(e: &Expr) -> Result<Value, DbError> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(cr) => {
            Err(DbError::Plan(format!("column {} not allowed in constant expression", cr.column)))
        }
        Expr::FnCall { name, args } => eval_scalar_fn(name, args),
        Expr::Param(ordinal) => Err(DbError::Plan(format!(
            "unbound parameter ?{} — run via PREPARE/EXECUTE with bind values",
            ordinal + 1
        ))),
    }
}

fn eval_scalar_fn(name: &str, args: &[Expr]) -> Result<Value, DbError> {
    let vals = args.iter().map(eval_const).collect::<Result<Vec<_>, _>>()?;
    apply_scalar_fn(name, &vals)
}

/// Apply a scalar function to already-evaluated argument values. Covers
/// both geometry constructors (`SDO_GEOMETRY`, `SDO_POINT`) and the
/// `SDO_GEOM`-package-style measurement functions.
pub fn apply_scalar_fn(name: &str, vals: &[Value]) -> Result<Value, DbError> {
    let geom_arg = |i: usize| -> Result<&Arc<Geometry>, DbError> {
        vals.get(i)
            .and_then(|v| v.as_geometry())
            .ok_or_else(|| DbError::Plan(format!("{name}: argument {} must be a geometry", i + 1)))
    };
    match name.to_ascii_uppercase().as_str() {
        // SDO_GEOMETRY('<wkt>'): geometry literal constructor.
        "SDO_GEOMETRY" => {
            let wkt = vals
                .first()
                .and_then(|v| v.as_text())
                .ok_or_else(|| DbError::Plan("SDO_GEOMETRY takes one WKT string".into()))?;
            Ok(Value::geometry(sdo_geom::wkt::parse_wkt(wkt)?))
        }
        // SDO_POINT(x, y) convenience constructor.
        "SDO_POINT" => {
            let x = vals
                .first()
                .and_then(|v| v.as_double())
                .ok_or_else(|| DbError::Plan("SDO_POINT x must be numeric".into()))?;
            let y = vals
                .get(1)
                .and_then(|v| v.as_double())
                .ok_or_else(|| DbError::Plan("SDO_POINT y must be numeric".into()))?;
            Ok(Value::geometry(Geometry::Point(sdo_geom::Point::new(x, y))))
        }
        // SDO_GEOM package equivalents over geometry values.
        "SDO_AREA" => Ok(Value::Double(geom_arg(0)?.area())),
        "SDO_NUM_POINTS" => Ok(Value::Integer(geom_arg(0)?.num_points() as i64)),
        "SDO_DISTANCE" => {
            let a = Arc::clone(geom_arg(0)?);
            let b = Arc::clone(geom_arg(1)?);
            Ok(Value::Double(sdo_geom::distance(&a, &b)))
        }
        "SDO_CENTROID" => {
            let c = sdo_geom::algorithms::centroid(geom_arg(0)?);
            Ok(Value::geometry(Geometry::Point(c)))
        }
        "SDO_MBR" => {
            let bb = geom_arg(0)?.bbox();
            Ok(Value::geometry(Geometry::Polygon(sdo_geom::Polygon::from_rect(&bb))))
        }
        "SDO_WKT" => Ok(Value::text(sdo_geom::wkt::to_wkt(geom_arg(0)?))),
        "SDO_LENGTH" => Ok(Value::Double(geom_arg(0)?.length())),
        // SDO_GEOM.VALIDATE_GEOMETRY equivalent: 'TRUE' or the error text.
        "SDO_VALIDATE" => Ok(match sdo_geom::validate::validate(geom_arg(0)?) {
            Ok(()) => Value::text("TRUE"),
            Err(e) => Value::text(e.to_string()),
        }),
        other => Err(DbError::Plan(format!("unknown function {other}"))),
    }
}

/// Evaluate the exact (functional) form of a spatial operator.
pub fn eval_spatial_fn(
    name: &str,
    a: &Geometry,
    b: &Geometry,
    extra: &[Value],
) -> Result<bool, DbError> {
    match name.to_ascii_uppercase().as_str() {
        "SDO_RELATE" => {
            let mask = extra.first().and_then(|v| v.as_text()).unwrap_or("ANYINTERACT");
            let masks = RelateMask::parse_list(mask)?;
            Ok(sdo_geom::relate::relate_any(a, b, &masks))
        }
        "SDO_WITHIN_DISTANCE" => {
            let d = parse_distance(extra)?;
            Ok(sdo_geom::within_distance(a, b, d))
        }
        "SDO_FILTER" => Ok(a.bbox().intersects(&b.bbox())),
        "SDO_NN" => Err(DbError::Plan(
            "SDO_NN ranks rows and cannot be evaluated pairwise; \
             use it as a single-table predicate"
                .into(),
        )),
        other => Err(DbError::Plan(format!("unknown spatial operator {other}"))),
    }
}

/// Transpose operator arguments for a swapped-operand index probe:
/// `SDO_RELATE` masks transpose (INSIDE ⇄ CONTAINS, COVERS ⇄
/// COVEREDBY); distance and filter predicates are symmetric.
pub(crate) fn transpose_spatial_extra(name: &str, extra: &[Value]) -> Result<Vec<Value>, DbError> {
    if !name.eq_ignore_ascii_case("SDO_RELATE") {
        return Ok(extra.to_vec());
    }
    let mask = extra.first().and_then(|v| v.as_text()).unwrap_or("ANYINTERACT");
    let masks = RelateMask::parse_list(mask)?;
    let transposed = masks
        .iter()
        .map(|m| format!("{:?}", m.transpose()).to_ascii_uppercase())
        .collect::<Vec<_>>()
        .join("+");
    let mut out = vec![Value::text(transposed)];
    out.extend(extra.iter().skip(1).cloned());
    Ok(out)
}

/// Accept both `SDO_WITHIN_DISTANCE(a, b, 0.5)` and Oracle's
/// `SDO_WITHIN_DISTANCE(a, b, 'distance=0.5')`.
pub fn parse_distance(extra: &[Value]) -> Result<f64, DbError> {
    let v = extra
        .first()
        .ok_or_else(|| DbError::Plan("SDO_WITHIN_DISTANCE needs a distance".into()))?;
    if let Some(d) = v.as_double() {
        return Ok(d);
    }
    if let Some(s) = v.as_text() {
        let params = crate::extensible::parse_params(s);
        if let Some(d) = crate::extensible::param(&params, "distance") {
            return d.parse().map_err(|_| DbError::Plan(format!("bad distance '{d}'")));
        }
    }
    Err(DbError::Plan("SDO_WITHIN_DISTANCE needs a numeric distance".into()))
}

pub(crate) fn eval_expr(metas: &[RelMeta], joined: &[RelRow], e: &Expr) -> Result<Value, DbError> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::FnCall { name, args } => {
            let vals =
                args.iter().map(|a| eval_expr(metas, joined, a)).collect::<Result<Vec<_>, _>>()?;
            apply_scalar_fn(name, &vals)
        }
        Expr::Column(cr) => {
            let (ri, ci) = resolve_column_meta(metas, cr)?;
            if ci == usize::MAX {
                return joined[ri]
                    .rid
                    .map(Value::RowId)
                    .ok_or_else(|| DbError::Plan("relation has no rowids".into()));
            }
            joined[ri]
                .values
                .get(ci)
                .cloned()
                .ok_or_else(|| DbError::Plan(format!("column {} out of range", cr.column)))
        }
        Expr::Param(ordinal) => Err(DbError::Plan(format!(
            "unbound parameter ?{} — run via PREPARE/EXECUTE with bind values",
            ordinal + 1
        ))),
    }
}

pub(crate) fn resolve_column_meta(
    metas: &[RelMeta],
    cr: &ColumnRef,
) -> Result<(usize, usize), DbError> {
    let col = cr.column.to_ascii_uppercase();
    if let Some(q) = &cr.qualifier {
        let q = q.to_ascii_uppercase();
        let (ri, rel) = metas
            .iter()
            .enumerate()
            .find(|(_, r)| r.binding == q)
            .ok_or_else(|| DbError::Plan(format!("unknown binding {q}")))?;
        if cr.is_rowid() {
            return Ok((ri, usize::MAX));
        }
        let ci = rel
            .columns
            .iter()
            .position(|c| *c == col)
            .ok_or_else(|| DbError::Plan(format!("no column {col} in {q}")))?;
        return Ok((ri, ci));
    }
    if cr.is_rowid() && metas.len() == 1 {
        return Ok((0, usize::MAX));
    }
    let mut hit = None;
    for (ri, rel) in metas.iter().enumerate() {
        if let Some(ci) = rel.columns.iter().position(|c| *c == col) {
            if hit.is_some() {
                return Err(DbError::Plan(format!("ambiguous column {col}")));
            }
            hit = Some((ri, ci));
        }
    }
    hit.ok_or_else(|| DbError::Plan(format!("unknown column {col}")))
}

pub(crate) fn eval_predicate(
    metas: &[RelMeta],
    joined: &[RelRow],
    p: &Predicate,
) -> Result<bool, DbError> {
    match p {
        Predicate::Compare { left, op, right } => {
            // Spatial operators compared to 'TRUE' evaluate functionally
            // here (used as residuals after a join).
            if let Expr::FnCall { name, args } = left {
                if name.starts_with("SDO_") && args.len() >= 2 {
                    let a = eval_expr(metas, joined, &args[0])?;
                    let b = eval_expr(metas, joined, &args[1])?;
                    if let (Some(ga), Some(gb)) = (a.as_geometry(), b.as_geometry()) {
                        let extra =
                            args[2..].iter().map(eval_const).collect::<Result<Vec<_>, _>>()?;
                        let result = eval_spatial_fn(name, ga, gb, &extra)?;
                        let want = eval_expr(metas, joined, right)?;
                        return Ok(match want.as_text() {
                            Some("TRUE") => result == (*op == CmpOp::Eq),
                            Some("FALSE") => result != (*op == CmpOp::Eq),
                            _ => false,
                        });
                    }
                }
            }
            let l = eval_expr(metas, joined, left)?;
            let r = eval_expr(metas, joined, right)?;
            if l.is_null() || r.is_null() {
                return Ok(false);
            }
            Ok(op.eval(l.sql_cmp(&r)))
        }
        Predicate::RowidPairIn { .. } => Err(DbError::Plan(
            "rowid-pair IN must be the driving predicate of a two-table select".into(),
        )),
    }
}

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

/// Resolve the output column names of a projection, validating the
/// select list (`*` and `COUNT(*)` cannot mix with other items).
pub(crate) fn projection_columns(
    metas: &[RelMeta],
    items: &[SelectItem],
) -> Result<Vec<String>, DbError> {
    if items.len() == 1 && items[0] == SelectItem::CountStar {
        return Ok(vec!["COUNT(*)".into()]);
    }
    if items.len() == 1 && items[0] == SelectItem::Star {
        let qualify = metas.len() > 1;
        let mut columns = Vec::new();
        for m in metas {
            for c in &m.columns {
                columns.push(if qualify { format!("{}.{}", m.binding, c) } else { c.clone() });
            }
        }
        return Ok(columns);
    }
    let mut columns = Vec::with_capacity(items.len());
    for item in items {
        match item {
            SelectItem::CountStar => columns.push("COUNT(*)".to_string()),
            SelectItem::Star => {
                return Err(DbError::Plan("'*' cannot mix with other select items".into()))
            }
            SelectItem::Expr { expr, alias } => columns.push(match alias {
                Some(a) => a.clone(),
                None => match expr {
                    Expr::Column(cr) => cr.column.to_ascii_uppercase(),
                    _ => format!("COL{}", columns.len() + 1),
                },
            }),
        }
    }
    if items.contains(&SelectItem::CountStar) {
        return Err(DbError::Plan("COUNT(*) cannot mix with other select items".into()));
    }
    Ok(columns)
}

/// Project one joined row through a (pre-validated) select list.
/// `COUNT(*)` is aggregation, not projection — callers handle it.
pub(crate) fn project_row(
    metas: &[RelMeta],
    jr: &[RelRow],
    items: &[SelectItem],
) -> Result<Row, DbError> {
    if items.len() == 1 && items[0] == SelectItem::Star {
        return Ok(jr.iter().flat_map(|r| r.values.iter().cloned()).collect());
    }
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let SelectItem::Expr { expr, .. } = item else {
            return Err(DbError::Plan("COUNT(*) cannot be projected per row".into()));
        };
        out.push(eval_expr(metas, jr, expr)?);
    }
    Ok(out)
}

fn project(
    metas: &[RelMeta],
    joined: Vec<Vec<RelRow>>,
    items: &[SelectItem],
) -> Result<QueryResult, DbError> {
    let columns = projection_columns(metas, items)?;
    if items.len() == 1 && items[0] == SelectItem::CountStar {
        return Ok(QueryResult { columns, rows: vec![vec![Value::Integer(joined.len() as i64)]] });
    }
    let rows =
        joined.iter().map(|jr| project_row(metas, jr, items)).collect::<Result<Vec<_>, _>>()?;
    Ok(QueryResult { columns, rows })
}
