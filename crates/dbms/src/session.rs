//! Per-connection sessions.
//!
//! A [`Session`] owns everything Oracle scopes to a connection: the
//! `ALTER SESSION` options, the open explicit transaction, the last
//! statement's operator profile, and named prepared statements. The
//! engine itself ([`Database`]) holds only shared state — catalog,
//! MVCC manager, WAL, registries — plus engine-level *defaults* that
//! new sessions start from, so concurrent connections never observe
//! each other's `ALTER SESSION`, `BEGIN`, or `EXPLAIN ANALYZE` output.
//!
//! `Database::execute` and the other connectionless convenience APIs
//! keep working: they run against a built-in *default session* (id 0),
//! which behaves exactly like the pre-session single-connection engine.

use crate::db::{Database, QueryResult, SessionOptions, TxnCtx};
use crate::error::DbError;
use crate::sql::{self, Statement};
use parking_lot::{Mutex, RwLock};
use sdo_storage::{Snapshot, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How deep `EXECUTE` may nest within one statement. Prepared
/// statements may invoke each other, so a self- or mutually-referential
/// chain (`PREPARE a AS EXECUTE a`) would otherwise recurse until the
/// stack overflows and takes the whole server process with it.
pub(crate) const MAX_EXECUTE_DEPTH: usize = 16;

/// A parsed statement cached under a name by `PREPARE` /
/// [`Session::prepare`], with its `?` placeholder count.
pub(crate) struct Prepared {
    /// The statement body, placeholders intact.
    pub(crate) stmt: Statement,
    /// Number of `?` placeholders to bind at execute time.
    pub(crate) nparams: usize,
}

/// The state one connection owns. Interior-mutable so a shared
/// `Arc<SessionState>` can serve a whole connection lifetime.
pub(crate) struct SessionState {
    /// Session id (0 is the embedded default session).
    pub(crate) id: u64,
    /// This session's `ALTER SESSION` options.
    pub(crate) options: RwLock<SessionOptions>,
    /// The session's open explicit transaction, if any.
    pub(crate) txn: Mutex<Option<TxnCtx>>,
    /// Operator profile of the session's most recent statement.
    pub(crate) last_profile: RwLock<Option<sdo_obs::QueryProfile>>,
    /// Named prepared statements (`PREPARE name AS ...`).
    pub(crate) prepared: RwLock<HashMap<String, Arc<Prepared>>>,
    /// Current `EXECUTE` nesting depth (see [`MAX_EXECUTE_DEPTH`]).
    exec_depth: AtomicUsize,
}

/// RAII guard for one level of `EXECUTE` nesting; restores the
/// session's depth on drop, error paths included.
pub(crate) struct ExecDepthGuard<'a>(&'a AtomicUsize);

impl Drop for ExecDepthGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl SessionState {
    pub(crate) fn new(id: u64, options: SessionOptions) -> Self {
        SessionState {
            id,
            options: RwLock::new(options),
            txn: Mutex::new(None),
            last_profile: RwLock::new(None),
            prepared: RwLock::new(HashMap::new()),
            exec_depth: AtomicUsize::new(0),
        }
    }

    /// Enter one level of `EXECUTE` nesting, erroring past
    /// [`MAX_EXECUTE_DEPTH`] so self-referential prepared statements
    /// (`PREPARE a AS EXECUTE a`, or mutually recursive chains) fail
    /// cleanly instead of overflowing the stack.
    pub(crate) fn enter_execute(&self) -> Result<ExecDepthGuard<'_>, DbError> {
        let prev = self.exec_depth.fetch_add(1, Ordering::Relaxed);
        // Build the guard first so the increment is undone even on
        // the error path.
        let guard = ExecDepthGuard(&self.exec_depth);
        if prev >= MAX_EXECUTE_DEPTH {
            return Err(DbError::Plan(format!(
                "EXECUTE nesting exceeds depth limit {MAX_EXECUTE_DEPTH} \
                 (self-referential prepared statement?)"
            )));
        }
        Ok(guard)
    }

    /// Cache a parsed statement under `name` (replacing any previous
    /// statement of that name), returning its placeholder count.
    pub(crate) fn insert_prepared(&self, name: &str, stmt: Statement) -> usize {
        let nparams = sql::param_count(&stmt);
        self.prepared
            .write()
            .insert(name.to_ascii_uppercase(), Arc::new(Prepared { stmt, nparams }));
        nparams
    }

    pub(crate) fn get_prepared(&self, name: &str) -> Result<Arc<Prepared>, DbError> {
        self.prepared
            .read()
            .get(&name.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| DbError::Plan(format!("no prepared statement named {name}")))
    }

    pub(crate) fn remove_prepared(&self, name: &str) -> Result<(), DbError> {
        self.prepared
            .write()
            .remove(&name.to_ascii_uppercase())
            .map(|_| ())
            .ok_or_else(|| DbError::Plan(format!("no prepared statement named {name}")))
    }
}

/// A connection handle: shared engine + per-connection state.
///
/// Created via [`Database::session`]. Dropping a session rolls back
/// its open explicit transaction, like a connection reset.
pub struct Session {
    db: Arc<Database>,
    state: Arc<SessionState>,
}

impl Session {
    pub(crate) fn attach(db: Arc<Database>) -> Self {
        let state = db.new_session_state();
        Session { db, state }
    }

    /// This session's id (unique per engine; 0 is the default session).
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// The engine this session is connected to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Parse and execute one SQL statement in this session.
    pub fn execute(&self, sql_text: &str) -> Result<QueryResult, DbError> {
        let stmt = sql::parse(sql_text)?;
        crate::exec::execute_in(&self.db, &self.state, &stmt)
    }

    /// Cache a parsed statement under `name`; returns how many `?`
    /// placeholders it expects. Equivalent to `PREPARE name AS sql`.
    pub fn prepare(&self, name: &str, sql_text: &str) -> Result<usize, DbError> {
        let stmt = sql::parse(sql_text)?;
        if matches!(stmt, Statement::Prepare { .. }) {
            return Err(DbError::Plan("cannot PREPARE a PREPARE statement".into()));
        }
        Ok(self.state.insert_prepared(name, stmt))
    }

    /// Execute a prepared statement with positional bind values.
    pub fn execute_prepared(&self, name: &str, params: &[Value]) -> Result<QueryResult, DbError> {
        let prepared = self.state.get_prepared(name)?;
        if params.len() != prepared.nparams {
            return Err(DbError::Plan(format!(
                "prepared statement {name} expects {} bind values, got {}",
                prepared.nparams,
                params.len()
            )));
        }
        let bound = sql::bind_statement(&prepared.stmt, params)?;
        crate::exec::execute_in(&self.db, &self.state, &bound)
    }

    /// Drop a prepared statement. Equivalent to `DEALLOCATE name`.
    pub fn deallocate(&self, name: &str) -> Result<(), DbError> {
        self.state.remove_prepared(name)
    }

    /// Current options of this session (copy).
    pub fn options(&self) -> SessionOptions {
        self.state.options.read().clone()
    }

    /// Set one of this session's options (see
    /// [`SessionOptions::set`]); other sessions are unaffected.
    pub fn set_option(&self, name: &str, value: &str) -> Result<(), DbError> {
        self.state.options.write().set(name, value)
    }

    /// The operator profile of this session's most recent statement.
    pub fn last_profile(&self) -> Option<sdo_obs::QueryProfile> {
        self.state.last_profile.read().clone()
    }

    /// Whether this session has an open explicit transaction.
    pub fn in_txn(&self) -> bool {
        self.state.txn.lock().is_some()
    }

    /// The MVCC read view a statement would run under right now.
    pub fn read_snapshot(&self) -> Snapshot {
        self.db.read_snapshot_in(&self.state)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // A dropped connection rolls back whatever it left open.
        let ctx = self.state.txn.lock().take();
        if let Some(ctx) = ctx {
            self.db.abort_ctx(ctx);
        }
        self.db.release_session();
    }
}
