//! Parallel index creation: the paper's Table 3 / Figure 2 scenario.
//!
//! Builds quadtree and R-tree indexes over complex block-group polygons
//! at increasing degrees of parallelism and prints per-stage timings
//! (the Figure 2 pipeline made visible).
//!
//! ```sh
//! cargo run --release --example parallel_indexing [n_polygons]
//! ```

use parking_lot::RwLock;
use sdo_core::create;
use sdo_core::params::{IndexKindParam, SpatialIndexParams};
use sdo_datagen::{block_groups, US_EXTENT};
use sdo_geom::Rect;
use sdo_storage::{Counters, DataType, Schema, Table, Value};
use std::sync::Arc;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1500);
    println!("generating {n} complex block-group polygons...");
    let data = block_groups::generate(n, &US_EXTENT, 7);
    let avg_vertices: usize =
        data.iter().map(|g| g.num_points()).sum::<usize>() / data.len().max(1);
    println!("average vertex count: {avg_vertices}");

    let mut table =
        Table::new("BG", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
    for (i, g) in data.into_iter().enumerate() {
        table.insert(vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
    let table = Arc::new(RwLock::new(table));
    let counters = Arc::new(Counters::new());
    let extent = Rect::new(-125.0, 24.0, -66.0, 50.0);

    println!("\n{:>5} {:>22} {:>22}", "dop", "quadtree (tess+pack)", "r-tree (cluster+merge)");
    for dop in [1usize, 2, 4] {
        let qp = SpatialIndexParams {
            kind: IndexKindParam::Quadtree,
            sdo_level: 8,
            extent: Some(extent),
            ..Default::default()
        };
        let (qt, qstats) =
            create::build_quadtree(&table, 1, &qp, dop, Arc::clone(&counters)).unwrap();

        let rp = SpatialIndexParams { extent: Some(extent), ..Default::default() };
        let (rt, rstats) = create::build_rtree(&table, 1, &rp, dop, Arc::clone(&counters)).unwrap();

        println!(
            "{:>5} {:>12.1?} +{:>7.1?} {:>12.1?} +{:>7.1?}",
            dop,
            qstats.parallel_stage,
            qstats.merge_stage,
            rstats.parallel_stage,
            rstats.merge_stage
        );
        if dop == 1 {
            println!(
                "      quadtree: {} tile rows over {} geometries; r-tree: {} items, height {}",
                qt.tile_entries(),
                qt.len(),
                rt.len(),
                rt.height()
            );
        }
    }

    println!("\nFigure 2 pipeline trace (dop=4 quadtree):");
    let qp = SpatialIndexParams {
        kind: IndexKindParam::Quadtree,
        sdo_level: 8,
        extent: Some(extent),
        ..Default::default()
    };
    let (_, stats) = create::build_quadtree(&table, 1, &qp, 4, counters).unwrap();
    println!("  partition sizes: {:?}", stats.partition_sizes);
    println!("  tessellation (parallel table functions): {:?}", stats.parallel_stage);
    println!("  tile rows produced: {}", stats.stage_rows);
    println!("  B-tree pack (bulk build): {:?}", stats.merge_stage);
}
