//! Interactive SQL session against the spatial engine.
//!
//! ```sh
//! cargo run --example sql_session
//! sql> CREATE TABLE t (id NUMBER, geom SDO_GEOMETRY)
//! sql> INSERT INTO t VALUES (1, SDO_GEOMETRY('POINT (1 2)'))
//! sql> SELECT * FROM t
//! ```
//!
//! Pipe a script: `cargo run --example sql_session < script.sql`

use sdo_dbms::Database;
use std::io::{BufRead, Write};

fn main() {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    println!("spatial SQL session — statements end at end-of-line; 'quit' exits");

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("sql> ");
        std::io::stdout().flush().ok();
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let sql = line.trim().trim_end_matches(';');
        if sql.is_empty() {
            continue;
        }
        if sql.eq_ignore_ascii_case("quit") || sql.eq_ignore_ascii_case("exit") {
            break;
        }
        match db.execute(sql) {
            Ok(res) => {
                if res.columns.is_empty() {
                    println!("ok");
                } else {
                    println!("{}", res.columns.join(" | "));
                    for row in res.rows.iter().take(50) {
                        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                        println!("{}", cells.join(" | "));
                    }
                    if res.rows.len() > 50 {
                        println!("... ({} rows total)", res.rows.len());
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
