//! Quickstart: create a spatial table, index it, query it, join it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sdo_dbms::Database;

fn main() {
    // A session = a Database with the spatial cartridge registered.
    let db = Database::new();
    sdo_core::register_spatial(&db);

    // 1. Create a table with an SDO_GEOMETRY column and load a few
    //    polygons (WKT literals through the SDO_GEOMETRY constructor).
    db.execute("CREATE TABLE parks (name VARCHAR2, geom SDO_GEOMETRY)").unwrap();
    let parks = [
        ("north", "POLYGON ((0 10, 6 10, 6 16, 0 16, 0 10))"),
        ("river", "POLYGON ((4 0, 6 0, 6 20, 4 20, 4 0))"),
        ("east", "POLYGON ((12 2, 18 2, 18 8, 12 8, 12 2))"),
        ("downtown", "POLYGON ((2 2, 8 2, 8 8, 2 8, 2 2))"),
    ];
    for (name, wkt) in parks {
        db.execute(&format!("INSERT INTO parks VALUES ('{name}', SDO_GEOMETRY('{wkt}'))")).unwrap();
    }

    // 2. Create an R-tree spatial index through the extensible-indexing
    //    DDL (swap the parameters for 'sdo_level=8' to get a quadtree).
    db.execute(
        "CREATE INDEX parks_sidx ON parks(geom) \
         INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=8')",
    )
    .unwrap();

    // 3. Window query: which parks interact with a query rectangle?
    let res = db
        .execute(
            "SELECT name FROM parks WHERE \
             SDO_RELATE(geom, SDO_GEOMETRY('POLYGON ((5 5, 13 5, 13 12, 5 12, 5 5))'), \
             'ANYINTERACT') = 'TRUE'",
        )
        .unwrap();
    println!("parks touching the window:");
    for row in &res.rows {
        println!("  {}", row[0]);
    }

    // 4. Spatial self-join via the pipelined table function: which park
    //    pairs overlap each other?
    let res = db
        .execute(
            "SELECT COUNT(*) FROM parks a, parks b \
             WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE( \
              SPATIAL_JOIN('parks', 'geom', 'parks', 'geom', 'intersect')))",
        )
        .unwrap();
    println!("interacting park pairs (including self pairs): {}", res.count().unwrap());

    // 5. Distance query: everything within 3 units of a point.
    let res = db
        .execute(
            "SELECT name FROM parks WHERE \
             SDO_WITHIN_DISTANCE(geom, SDO_POINT(10, 5), 3) = 'TRUE'",
        )
        .unwrap();
    println!("parks within 3 of (10, 5):");
    for row in &res.rows {
        println!("  {}", row[0]);
    }
}
