//! Star-catalog self-join scaling: the paper's Table 2 scenario.
//!
//! Self-joins growing subsets of a clustered star catalog, comparing
//! the serial table-function join against parallel execution over
//! subtree pairs.
//!
//! ```sh
//! cargo run --release --example star_catalog [max_stars]
//! ```

use sdo_datagen::{stars, SKY_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;
use std::time::Instant;

fn main() {
    let max: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2000);
    let all = stars::generate(max, &SKY_EXTENT, 1977);

    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>8}",
        "stars", "pairs", "join dop=1", "join dop=2", "speedup"
    );
    let mut size = max / 16;
    while size <= max {
        // Table 2 "chooses subsets of the original data": prefixes.
        let subset = &all[..size];
        let db = Database::new();
        sdo_core::register_spatial(&db);
        db.execute("CREATE TABLE s (id NUMBER, geom SDO_GEOMETRY)").unwrap();
        for (i, g) in subset.iter().enumerate() {
            db.insert_row("s", vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
        }
        db.execute(
            "CREATE INDEX s_sidx ON s(geom) INDEXTYPE IS SPATIAL_INDEX \
             PARAMETERS ('tree_fanout=32')",
        )
        .unwrap();

        let run = |dop: usize| {
            let t = Instant::now();
            let count = db
                .execute(&format!(
                    "SELECT COUNT(*) FROM TABLE( \
                     SPATIAL_JOIN('s','geom','s','geom','intersect', {dop}))"
                ))
                .unwrap()
                .count()
                .unwrap();
            (count, t.elapsed())
        };
        let (c1, t1) = run(1);
        let (c2, t2) = run(2);
        assert_eq!(c1, c2);
        println!(
            "{:>8} {:>10} {:>12.1?} {:>12.1?} {:>7.2}x",
            size,
            c1,
            t1,
            t2,
            t1.as_secs_f64() / t2.as_secs_f64().max(1e-9)
        );
        size *= 2;
    }
}
