//! Using the crates as libraries, without the SQL layer: build R-trees
//! and quadtrees directly, run window/kNN queries, drive the pipelined
//! spatial join by hand, and execute a parallel table function.
//!
//! ```sh
//! cargo run --release --example library_api
//! ```

use parking_lot::RwLock;
use sdo_core::join::{ExactPredicate, JoinSide, SpatialJoin, SpatialJoinConfig};
use sdo_datagen::{counties, US_EXTENT};
use sdo_geom::{Point, Rect, RelateMask};
use sdo_quadtree::QuadtreeIndex;
use sdo_rtree::{RTree, RTreeParams};
use sdo_storage::{Counters, DataType, RowId, Schema, Table, Value};
use sdo_tablefunc::parallel::execute_parallel;
use sdo_tablefunc::partition::{partition_sources, PartitionMethod};
use sdo_tablefunc::pipeline::CursorFn;
use sdo_tablefunc::{collect_all, Row, TableFunction};
use std::sync::Arc;

fn main() {
    // --- data -----------------------------------------------------------
    let geoms = counties::generate(500, &US_EXTENT, 42);
    println!("generated {} county polygons", geoms.len());

    // --- R-tree: bulk load + queries -------------------------------------
    let items: Vec<(Rect, usize)> = geoms.iter().enumerate().map(|(i, g)| (g.bbox(), i)).collect();
    let rtree = RTree::bulk_load(items, RTreeParams::with_fanout(32));
    println!(
        "R-tree: {} items, height {}, {} nodes",
        rtree.len(),
        rtree.height(),
        rtree.node_count()
    );
    let window = Rect::new(-105.0, 32.0, -95.0, 42.0);
    println!("  window candidates: {}", rtree.query_window(&window).len());
    let knn = rtree.query_knn(&Point::new(-100.0, 38.0), 5);
    println!(
        "  5 nearest MBRs to (-100, 38): items {:?}",
        knn.iter().map(|(_, _, i)| *i).collect::<Vec<_>>()
    );

    // --- quadtree: tessellation + window query ---------------------------
    let mut qt = QuadtreeIndex::new(US_EXTENT, 7);
    for (i, g) in geoms.iter().enumerate() {
        qt.insert(RowId::new(i as u64), g);
    }
    let candidates = qt.query_window(&geoms[0]);
    let definite = candidates.iter().filter(|c| c.definite).count();
    println!(
        "quadtree: {} tile rows; county 0 interacts with {} candidates ({} proven by tiles)",
        qt.tile_entries(),
        candidates.len(),
        definite
    );

    // --- pipelined spatial join, driven manually -------------------------
    let mut table =
        Table::new("C", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
    let mut join_items = Vec::new();
    for (i, g) in geoms.iter().enumerate() {
        let bb = g.bbox();
        let rid = table.insert(vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
        join_items.push((bb, rid));
    }
    let table = Arc::new(RwLock::new(table));
    let tree = Arc::new(RTree::bulk_load(join_items, RTreeParams::with_fanout(32)));
    let side = || JoinSide { table: Arc::clone(&table), column: 1, tree: Arc::clone(&tree) };
    let mut join = SpatialJoin::new(
        side(),
        side(),
        ExactPredicate::Masks(vec![RelateMask::Touch]),
        SpatialJoinConfig::default(),
        Arc::new(Counters::new()),
    );
    // drive start/fetch/close by hand, like the paper's §4.2 loop
    join.start().unwrap();
    let mut touching_pairs = 0usize;
    loop {
        let batch = join.fetch(256).unwrap();
        if batch.is_empty() {
            break;
        }
        touching_pairs += batch.len();
    }
    join.close();
    println!("TOUCH self-join (pipelined, 256-row fetches): {touching_pairs} pairs");

    // --- a parallel table function from scratch --------------------------
    // Compute polygon areas in 4 parallel slaves over an ANY-partitioned
    // cursor, then sum them.
    let rows: Vec<Row> = geoms.iter().map(|g| vec![Value::geometry(g.clone())]).collect();
    let parts = partition_sources(rows, PartitionMethod::Any, 4);
    let instances: Vec<Box<dyn TableFunction>> = parts
        .into_iter()
        .map(|p| {
            Box::new(CursorFn::new(p, |row: Row| {
                let g = row[0].as_geometry().unwrap();
                Ok(vec![vec![Value::Double(g.area())]])
            })) as Box<dyn TableFunction>
        })
        .collect();
    let out = execute_parallel(instances, 128).unwrap();
    let total: f64 = out.iter().map(|r| r[0].as_double().unwrap()).sum();
    println!(
        "total county area via 4-slave parallel table function: {total:.1} \
         (US extent area {:.1})",
        US_EXTENT.area()
    );

    // single-instance sanity check through collect_all
    let rows2: Vec<Row> = geoms.iter().map(|g| vec![Value::geometry(g.clone())]).collect();
    let mut serial = CursorFn::new(sdo_tablefunc::VecSource::new(rows2), |row: Row| {
        let g = row[0].as_geometry().unwrap();
        Ok(vec![vec![Value::Double(g.area())]])
    });
    let serial_total: f64 =
        collect_all(&mut serial, 128).unwrap().iter().map(|r| r[0].as_double().unwrap()).sum();
    assert!((total - serial_total).abs() < 1e-6);
    println!("parallel == serial ✓");
}
