//! County self-join: the paper's Table 1 scenario at example scale.
//!
//! Joins a synthetic county map with itself by intersection and by
//! distance, comparing the nested-loop plan against the table-function
//! spatial join.
//!
//! ```sh
//! cargo run --release --example gis_county_join [n_counties]
//! ```

use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(300);
    let db = Database::new();
    sdo_core::register_spatial(&db);

    println!("loading {n} synthetic counties...");
    db.execute("CREATE TABLE counties (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in counties::generate(n, &US_EXTENT, 2003).into_iter().enumerate() {
        db.insert_row("counties", vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
    db.execute(
        "CREATE INDEX counties_sidx ON counties(geom) \
         INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=32')",
    )
    .unwrap();

    println!("{:>10} {:>10} {:>14} {:>14}", "distance", "result", "nested-loop", "spatial-join");
    for d in [0.0f64, 0.25, 0.5, 1.0] {
        let (nl_pred, tf_pred) = if d == 0.0 {
            (
                "SDO_RELATE(a.geom, b.geom, 'intersect') = 'TRUE'".to_string(),
                "'intersect'".to_string(),
            )
        } else {
            (
                format!("SDO_WITHIN_DISTANCE(a.geom, b.geom, {d}) = 'TRUE'"),
                format!("'distance={d}'"),
            )
        };

        let t = Instant::now();
        let nl = db
            .execute(&format!("SELECT COUNT(*) FROM counties a, counties b WHERE {nl_pred}"))
            .unwrap()
            .count()
            .unwrap();
        let nl_time = t.elapsed();

        let t = Instant::now();
        let tf = db
            .execute(&format!(
                "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
                 'counties','geom','counties','geom',{tf_pred}))"
            ))
            .unwrap()
            .count()
            .unwrap();
        let tf_time = t.elapsed();

        assert_eq!(nl, tf, "join strategies disagree");
        println!("{:>10} {:>10} {:>12.1?} {:>12.1?}", d, nl, nl_time, tf_time);
    }
}
