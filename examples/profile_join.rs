//! Profile a parallel spatial join end to end.
//!
//! Demonstrates the three ways to observe a query:
//!
//! 1. `EXPLAIN ANALYZE <stmt>` — execute and render the operator tree
//!    as result rows,
//! 2. `Database::last_profile()` — the same tree as a data structure,
//!    here exported as JSON,
//! 3. the global metrics registry — cross-query counters and span
//!    histograms recorded while profiling is active.
//!
//! Run with `cargo run --example profile_join`.

use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;

fn main() {
    let db = Database::new();
    sdo_core::register_spatial(&db);

    for (table, seed) in [("city_table", 1u64), ("river_table", 2)] {
        db.execute(&format!("CREATE TABLE {table} (id NUMBER, geom SDO_GEOMETRY)")).unwrap();
        for (i, g) in counties::generate(250, &US_EXTENT, seed).into_iter().enumerate() {
            db.insert_row(table, vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
        }
        db.execute(&format!(
            "CREATE INDEX {table}_sidx ON {table}(geom) \
             INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=16')"
        ))
        .unwrap();
    }

    // 1. EXPLAIN ANALYZE renders the profile tree as PLAN rows.
    let plan = db
        .execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
             'city_table', 'geom', 'river_table', 'geom', 'intersect', 2))",
        )
        .unwrap();
    println!("== EXPLAIN ANALYZE ==");
    for row in &plan.rows {
        println!("{}", row[0].as_text().unwrap());
    }

    // 2. Plain statements record the same profile on the session.
    let n = db
        .execute(
            "SELECT COUNT(*) FROM city_table a, river_table b \
             WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
              'city_table', 'geom', 'river_table', 'geom', 'intersect')))",
        )
        .unwrap()
        .count()
        .unwrap();
    let profile = db.last_profile().expect("every statement records a profile");
    println!("\n== last_profile() of the semijoin form ({n} pairs) ==");
    print!("{}", profile.render_text());
    println!("\n== as JSON ==");
    println!("{}", sdo_obs::export::profile_to_json(&profile));

    // 3. Global registry: counters bumped while profiling was active.
    println!("\n== metrics registry ==");
    print!("{}", sdo_obs::export::registry_to_text(&sdo_obs::global().snapshot()));
}
