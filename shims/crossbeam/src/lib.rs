//! Offline stand-in for the `crossbeam` crate, backed by
//! `std::sync::mpsc`. Only the bounded-channel subset the workspace
//! uses is provided.

/// Multi-producer channels (`crossbeam::channel` subset).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Sending half of a bounded channel. Cloneable.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or the channel closes).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives (or the channel closes empty).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive: `Some(v)` if a message is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        /// Iterate over messages until the channel closes.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip() {
            let (tx, rx) = bounded(2);
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![2]);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
