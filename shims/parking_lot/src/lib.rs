//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: [`Mutex`]
//! and [`RwLock`] with non-poisoning guards. Poisoned std locks are
//! recovered transparently (parking_lot has no poisoning at all, so
//! this matches its semantics).

use std::sync::PoisonError;

/// Reader guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Writer guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Reader-writer lock with the `parking_lot` calling convention
/// (`read()` / `write()` return guards directly, no `Result`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert!(l.try_read().is_some());
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
