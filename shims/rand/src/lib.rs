//! Offline stand-in for the `rand` crate, providing the 0.9 API subset
//! the workspace's data generators use: a seedable [`rngs::StdRng`]
//! (xoshiro256++), [`Rng::random_range`] over half-open ranges of
//! floats and integers, and [`Rng::random_bool`].

use std::ops::Range;

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a small integer seed.
pub trait SeedableRng: Sized {
    /// Deterministically seed from a `u64` (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a half-open range can sample into.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )+
    };
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Small generator alias — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.random_range(-3.0f64..7.0);
            assert!((-3.0..7.0).contains(&x));
            assert_eq!(x, b.random_range(-3.0f64..7.0));
            let n = a.random_range(5usize..17);
            assert!((5..17).contains(&n));
            b.random_range(5usize..17);
            let i = a.random_range(-50i64..-40);
            assert!((-50..-40).contains(&i));
            b.random_range(-50i64..-40);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
