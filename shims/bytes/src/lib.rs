//! Offline stand-in for the `bytes` crate: cheaply-cloneable immutable
//! byte buffers ([`Bytes`]), growable builders ([`BytesMut`]), and the
//! little-endian cursor traits ([`Buf`] / [`BufMut`]) the workspace's
//! codecs use.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted byte buffer. Clones and slices share
/// the same backing allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Buffer backed by a static slice (copied here — the shim has no
    /// zero-copy static storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes)
    }

    /// Length in bytes of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if no bytes remain visible.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copy the visible window into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// Growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        Self { buf: s.to_vec() }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", self.buf)
    }
}

macro_rules! get_le {
    ($(#[$doc:meta] $name:ident -> $t:ty),+ $(,)?) => {
        $(
            #[$doc]
            fn $name(&mut self) -> $t {
                let mut raw = [0u8; std::mem::size_of::<$t>()];
                self.copy_to_slice(&mut raw);
                <$t>::from_le_bytes(raw)
            }
        )+
    };
}

/// Read cursor over a byte buffer. Reads advance the cursor; running
/// past the end panics, mirroring the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// `true` if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read exactly `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    get_le! {
        /// Read a little-endian `u16`.
        get_u16_le -> u16,
        /// Read a little-endian `u32`.
        get_u32_le -> u32,
        /// Read a little-endian `u64`.
        get_u64_le -> u64,
        /// Read a little-endian `i64`.
        get_i64_le -> i64,
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, n: usize) {
        (**self).advance(n)
    }
}

macro_rules! put_le {
    ($(#[$doc:meta] $name:ident($t:ty)),+ $(,)?) => {
        $(
            #[$doc]
            fn $name(&mut self, v: $t) {
                self.put_slice(&v.to_le_bytes());
            }
        )+
    };
}

/// Append-only write cursor.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le! {
        /// Append a little-endian `u16`.
        put_u16_le(u16),
        /// Append a little-endian `u32`.
        put_u32_le(u32),
        /// Append a little-endian `u64`.
        put_u64_le(u64),
        /// Append a little-endian `i64`.
        put_i64_le(i64),
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(513);
        b.put_u32_le(70_000);
        b.put_i64_le(-5);
        b.put_f64_le(1.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_mutate() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b.slice(1..3)[..], &[2, 3]);
        assert_eq!(&b.slice(..2)[..], &[1, 2]);
        let mut m = BytesMut::from(&b[..]);
        m[0] ^= 0xFF;
        assert_eq!(m[0], 0xFE);
    }
}
