//! Offline stand-in for `serde_derive`: the derive macros expand to
//! nothing. The workspace tags types with `#[derive(Serialize,
//! Deserialize)]` for forward compatibility but performs all real
//! encoding through its own codecs, so no generated impls are needed.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
