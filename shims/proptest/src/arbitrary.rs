//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of `Self`.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary_value(rng))
    }
}

/// Full-domain strategy for `T` (`any::<i64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    // Bias 1-in-8 draws toward boundary values, which
                    // is where integer bugs live.
                    if rng.below(8) == 0 {
                        let specials = [0 as $t, 1 as $t, <$t>::MIN, <$t>::MAX];
                        specials[rng.below(specials.len() as u64) as usize]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        if rng.below(8) == 0 {
            let specials = [0.0, -0.0, 1.0, -1.0, f64::MAX, f64::MIN, f64::EPSILON];
            specials[rng.below(specials.len() as u64) as usize]
        } else {
            (rng.unit_f64() - 0.5) * 2e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_domain() {
        let mut rng = TestRng::from_seed(3);
        let bools: Vec<bool> =
            (0..32).map(|_| any::<bool>().gen_value(&mut rng).unwrap()).collect();
        assert!(bools.iter().any(|b| *b) && bools.iter().any(|b| !*b));
        let mut saw_extreme = false;
        for _ in 0..200 {
            let v = any::<i64>().gen_value(&mut rng).unwrap();
            saw_extreme |= v == i64::MIN || v == i64::MAX;
        }
        assert!(saw_extreme, "boundary bias should surface extremes");
    }
}
