//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Element-generation retries before a collection draw is abandoned.
const ELEMENT_RETRIES: usize = 8;

/// Inclusive-exclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty collection size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }

    fn min(&self) -> usize {
        self.lo
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` (output of [`vec`]).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Vector of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = self.size.draw(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let v = (0..ELEMENT_RETRIES).find_map(|_| self.element.gen_value(rng))?;
            out.push(v);
        }
        Some(out)
    }
}

/// Strategy for `BTreeSet<S::Value>` (output of [`btree_set`]).
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Set of values from `element`; duplicates are redrawn, so a narrow
/// element domain may yield fewer than the requested length.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Option<BTreeSet<S::Value>> {
        let target = self.size.draw(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * ELEMENT_RETRIES + ELEMENT_RETRIES {
            attempts += 1;
            if let Some(v) = self.element.gen_value(rng) {
                out.insert(v);
            }
        }
        (out.len() >= self.size.min()).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_elements() {
        let mut rng = TestRng::from_seed(4);
        let s = vec(0i32..100, 2..7);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng).unwrap();
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0..100).contains(x)));
        }
    }

    #[test]
    fn btree_set_is_deduplicated() {
        let mut rng = TestRng::from_seed(5);
        let s = btree_set(0i32..1000, 10..50);
        for _ in 0..50 {
            let set = s.gen_value(&mut rng).unwrap();
            assert!(set.len() >= 10);
        }
    }
}
