//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// How many times filtering combinators retry their inner strategy
/// before giving up on the current case.
const FILTER_RETRIES: usize = 16;

/// A recipe for generating values of `Self::Value`.
///
/// `gen_value` returns `None` when a filter rejected the draw; the
/// test runner retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value, or `None` on a filtered-out draw.
    fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value and draw
    /// from it — dependent generation (real proptest's `prop_flat_map`).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values for which `f` returns `true`.
    fn prop_filter<R, F>(self, _reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: std::fmt::Display,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Transform values, dropping those for which `f` returns `None`.
    fn prop_filter_map<R, U, F>(self, _reason: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        R: std::fmt::Display,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Option<S2::Value> {
        (self.f)(self.inner.gen_value(rng)?).gen_value(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = self.inner.gen_value(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// Output of [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> Option<U> {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = self.inner.gen_value(rng) {
                if let Some(u) = (self.f)(v) {
                    return Some(u);
                }
            }
        }
        None
    }
}

/// Strategy producing a single cloned constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Type-erased strategy handle (output of [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> Option<V> {
        self.0.gen_value(rng)
    }
}

/// Uniform choice over boxed strategies (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Build from the alternative strategies. Must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> Option<V> {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].gen_value(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty f64 range strategy");
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    Some((self.start as i128 + draw as i128) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    Some((lo as i128 + draw as i128) as $t)
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.gen_value(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

impl Strategy for &str {
    type Value = String;

    /// String literals act as generation-only regex patterns, matching
    /// real proptest's `&str` strategy.
    fn gen_value(&self, rng: &mut TestRng) -> Option<String> {
        Some(crate::string::gen_from_pattern(self, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_filter_union() {
        let mut rng = TestRng::from_seed(1);
        let s = (0i32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng).unwrap();
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
        let odd = (0i32..10).prop_filter("odd", |v| v % 2 == 1);
        for _ in 0..50 {
            assert!(odd.gen_value(&mut rng).unwrap() % 2 == 1);
        }
        let u = Union::new(vec![Just(1i32).boxed(), Just(2i32).boxed()]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(u.gen_value(&mut rng).unwrap());
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn tuple_and_ranges() {
        let mut rng = TestRng::from_seed(2);
        let s = (0u8..4, -5i64..5, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = s.gen_value(&mut rng).unwrap();
            assert!(a < 4);
            assert!((-5..5).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }
}
