//! Test execution support: config, RNG, and case-level errors.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Failure of a single generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

/// Result type of a proptest body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic xoshiro256++ generator used for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary integer.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Seed deterministically from a test name (FNV-1a hash), so every
    /// run of a given test explores the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
