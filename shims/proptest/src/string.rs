//! Generation-only regex engine backing the `&str` strategy.
//!
//! Supports the pattern subset the workspace's tests use: literals,
//! alternation groups `(a|b)`, character classes `[a-z0-9_]` (with
//! ranges and negation), `.` and `\PC` (printable), `\d` / `\w`, and
//! the quantifiers `*`, `+`, `?`, `{m}`, `{m,}`, `{m,n}`. Unbounded
//! quantifiers draw lengths in `0..=8`.

use crate::test_runner::TestRng;

/// Maximum repetitions drawn for `*`, `+`, and `{m,}`.
const MAX_UNBOUNDED_REPS: u32 = 8;

#[derive(Debug)]
enum Node {
    Lit(char),
    Class(Vec<char>),
    Seq(Vec<Node>),
    Alt(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
    // A few multi-byte characters so lexers see non-ASCII input too.
    pool.extend(['é', 'λ', '中', '→']);
    pool
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alt(&mut self) -> Node {
        let mut arms = vec![self.parse_seq()];
        while self.eat('|') {
            arms.push(self.parse_seq());
        }
        if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Node::Alt(arms)
        }
    }

    fn parse_seq(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            items.push(self.parse_quant(atom));
        }
        Node::Seq(items)
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump().expect("parse_atom at end of pattern") {
            '(' => {
                let inner = self.parse_alt();
                self.eat(')');
                inner
            }
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '.' => Node::Class(printable_pool()),
            c => Node::Lit(c),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.bump().unwrap_or('\\') {
            // Unicode category escape: `\PC` = "not control" ≈ printable.
            // `\p{..}`/`\P{..}` braces are consumed if present.
            'P' | 'p' => {
                if self.eat('{') {
                    while let Some(c) = self.bump() {
                        if c == '}' {
                            break;
                        }
                    }
                } else {
                    self.bump();
                }
                Node::Class(printable_pool())
            }
            'd' => Node::Class(('0'..='9').collect()),
            'w' => {
                let mut pool: Vec<char> = ('a'..='z').collect();
                pool.extend('A'..='Z');
                pool.extend('0'..='9');
                pool.push('_');
                Node::Class(pool)
            }
            's' => Node::Class(vec![' ', '\t', '\n']),
            'n' => Node::Lit('\n'),
            't' => Node::Lit('\t'),
            'r' => Node::Lit('\r'),
            c => Node::Lit(c),
        }
    }

    fn parse_class(&mut self) -> Node {
        let negated = self.eat('^');
        let mut members = Vec::new();
        while let Some(c) = self.peek() {
            if c == ']' {
                self.pos += 1;
                break;
            }
            self.pos += 1;
            let lo = if c == '\\' { self.bump().unwrap_or('\\') } else { c };
            // `x-y` is a range unless `-` is the final member.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).copied() != Some(']') {
                self.pos += 1;
                let hi = self.bump().unwrap_or(lo);
                members.extend(lo..=hi);
            } else {
                members.push(lo);
            }
        }
        if negated {
            let excluded: std::collections::BTreeSet<char> = members.into_iter().collect();
            members = printable_pool().into_iter().filter(|c| !excluded.contains(c)).collect();
            if members.is_empty() {
                members.push('?');
            }
            return Node::Class(members);
        }
        if members.is_empty() {
            members.push('?');
        }
        Node::Class(members)
    }

    fn parse_quant(&mut self, atom: Node) -> Node {
        match self.peek() {
            Some('*') => {
                self.pos += 1;
                Node::Repeat(Box::new(atom), 0, MAX_UNBOUNDED_REPS)
            }
            Some('+') => {
                self.pos += 1;
                Node::Repeat(Box::new(atom), 1, MAX_UNBOUNDED_REPS)
            }
            Some('?') => {
                self.pos += 1;
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('{') => {
                self.pos += 1;
                let mut lo = 0u32;
                let mut cur = String::new();
                let mut saw_comma = false;
                while let Some(c) = self.bump() {
                    match c {
                        '}' => break,
                        ',' => {
                            lo = cur.parse().unwrap_or(0);
                            cur.clear();
                            saw_comma = true;
                        }
                        d => cur.push(d),
                    }
                }
                let hi = if saw_comma {
                    cur.parse().unwrap_or(lo + MAX_UNBOUNDED_REPS)
                } else {
                    lo = cur.parse().unwrap_or(0);
                    lo
                };
                Node::Repeat(Box::new(atom), lo, hi.max(lo))
            }
            _ => atom,
        }
    }
}

fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(pool) => {
            out.push(pool[rng.below(pool.len() as u64) as usize]);
        }
        Node::Seq(items) => {
            for item in items {
                generate(item, rng, out);
            }
        }
        Node::Alt(arms) => {
            let idx = rng.below(arms.len() as u64) as usize;
            generate(&arms[idx], rng, out);
        }
        Node::Repeat(inner, lo, hi) => {
            let reps = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..reps {
                generate(inner, rng, out);
            }
        }
    }
}

/// Generate one string matching `pattern`.
pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser { chars: pattern.chars().collect(), pos: 0 };
    let ast = parser.parse_alt();
    let mut out = String::new();
    generate(&ast, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(6)
    }

    #[test]
    fn identifier_pattern() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = gen_from_pattern("[a-z][a-z0-9_]{0,10}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 11, "bad len: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn alternation_prefix() {
        let mut rng = rng();
        let keywords = ["SELECT", "INSERT", "CREATE", "DROP"];
        for _ in 0..100 {
            let s = gen_from_pattern("(SELECT|INSERT|CREATE|DROP)[ a-z0-9_'(),.*=<>]*", &mut rng);
            assert!(keywords.iter().any(|k| s.starts_with(k)), "bad prefix: {s:?}");
        }
    }

    #[test]
    fn printable_star() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = gen_from_pattern("\\PC*", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }
    }

    #[test]
    fn literal_dash_and_class_symbols() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = gen_from_pattern("[a-zA-Z0-9 +=_,.-]*", &mut rng);
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || " +=_,.-".contains(c)),
                "unexpected char in {s:?}"
            );
        }
    }
}
