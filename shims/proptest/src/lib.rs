//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors
//! the subset of the proptest 1.x API the workspace's property tests
//! use: the [`proptest!`] / [`prop_assert!`] / [`prop_oneof!`] macros,
//! the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_filter_map` combinators, range / tuple / regex-string
//! strategies, and [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from real proptest: generation is *deterministic* per
//! test name (stable CI, no regression files needed) and failing
//! cases are reported without shrinking.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Common imports for property tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function that runs `config.cases` generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut __accepted: u32 = 0;
                let mut __rejected: u32 = 0;
                while __accepted < __config.cases {
                    $(
                        let $arg = {
                            let __strategy = &$strat;
                            match $crate::strategy::Strategy::gen_value(__strategy, &mut __rng) {
                                Some(v) => v,
                                None => {
                                    __rejected += 1;
                                    assert!(
                                        __rejected <= 20_000,
                                        "proptest {}: too many rejected cases",
                                        stringify!($name)
                                    );
                                    continue;
                                }
                            }
                        };
                    )*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        Ok(()) => __accepted += 1,
                        Err(e) => panic!(
                            "proptest case {} failed: {}\n(deterministic seed; rerun reproduces)",
                            stringify!($name),
                            e
                        ),
                    }
                }
            }
        )*
    };
}

/// Assert inside a proptest body; failure aborts the current case with
/// a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, "assertion failed: `{:?} == {:?}`", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?} != {:?}`", __l, __r);
    }};
}

/// Uniform choice between heterogeneous strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
