//! Offline stand-in for the `criterion` crate: a minimal measuring
//! harness with the same surface the workspace's benches use
//! (`bench_function`, `benchmark_group`, `bench_with_input`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros).
//!
//! Measurement is simple mean-of-iterations timing (no statistics or
//! HTML reports). When invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), each benchmark runs exactly once
//! to smoke-test it.

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Wall-clock target for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);

/// Identifier for a parameterized benchmark (`group/function/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units-of-work declaration used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    test_mode: bool,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: one untimed iteration, then scale to the sample target.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    if test_mode {
        println!("Testing {label} ... ok");
        return;
    }
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.0} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => format!("  {:.0} B/s", n as f64 / mean),
        None => String::new(),
    };
    println!("{label:50} time: {:>12.3?} ({iters} iters){rate}", Duration::from_secs_f64(mean));
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.test_mode, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_bench(&label, self.criterion.test_mode, self.throughput, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_bench(&label, self.criterion.test_mode, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion { test_mode: true };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
