//! Offline stand-in for `serde`: marker traits plus no-op derive
//! macros. The workspace's persistent formats are hand-written codecs
//! (see `sdo-geom::codec` and `sdo-storage::snapshot`); the serde
//! derives on types are declarative only.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
