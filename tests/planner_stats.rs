//! The cost-based planner end to end: ANALYZE statistics persisted
//! through checkpoint/WAL and reopen, plain EXPLAIN without execution,
//! plan-choice equivalence across access paths, the stats-driven
//! `method=auto` flip, kNN/ORDER-BY pushdown, and the EXPLAIN output
//! contract the CI golden check relies on.

use proptest::prelude::*;
use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;

fn session() -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db
}

fn load_counties(db: &Database, table: &str, n: usize, seed: u64) {
    db.execute(&format!("CREATE TABLE {table} (id NUMBER, geom SDO_GEOMETRY)")).unwrap();
    for (i, g) in counties::generate(n, &US_EXTENT, seed).into_iter().enumerate() {
        db.insert_row(table, vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
}

/// Run `EXPLAIN <sql>` and join the plan lines.
fn explain(db: &Database, sql: &str) -> String {
    let r = db.execute(&format!("EXPLAIN {sql}")).unwrap();
    r.rows.iter().map(|r| r[0].as_text().unwrap().to_string()).collect::<Vec<_>>().join("\n")
}

fn sorted_ids(db: &Database, sql: &str) -> Vec<i64> {
    let mut ids: Vec<i64> =
        db.execute(sql).unwrap().rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    ids.sort_unstable();
    ids
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("sdo-planner-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn reopen(dir: &std::path::Path) -> Database {
    let db = Database::open(dir).unwrap();
    sdo_core::register_spatial(&db);
    db.recover_indexes().unwrap();
    db
}

const WINDOW_Q: &str = "SELECT id FROM t WHERE \
     SDO_RELATE(geom, SDO_GEOMETRY('POLYGON ((-110 30, -90 30, -90 45, -110 45, -110 30))'), \
     'ANYINTERACT') = 'TRUE'";

const WITHIN_Q: &str = "SELECT id FROM t WHERE \
     SDO_WITHIN_DISTANCE(geom, SDO_GEOMETRY('POINT (-100 38)'), 'distance=5') = 'TRUE'";

const JOIN_Q: &str = "SELECT COUNT(*) FROM t a, t b \
     WHERE SDO_RELATE(a.geom, b.geom, 'intersect') = 'TRUE'";

// -- persisted statistics ---------------------------------------------------

/// ANALYZE estimates survive a checkpoint + reopen bit-for-bit: the
/// EXPLAIN text (estimated rows, costs, and the histogram provenance
/// notes) is identical before and after.
#[test]
fn analyze_survives_checkpoint_and_reopen() {
    let dir = fresh_dir("ckpt");
    let db = Database::open(&dir).unwrap();
    sdo_core::register_spatial(&db);
    load_counties(&db, "t", 120, 7);
    db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();

    assert!(explain(&db, WINDOW_Q).contains("stats: none"), "fresh table has no stats");
    db.execute("ANALYZE TABLE t").unwrap();

    let before = [explain(&db, WINDOW_Q), explain(&db, WITHIN_Q), explain(&db, JOIN_Q)];
    assert!(before[0].contains("histogram"), "window estimate uses the histogram:\n{}", before[0]);
    assert!(before[1].contains("histogram"), "distance estimate uses the histogram");

    db.checkpoint().unwrap();
    drop(db);

    let db = reopen(&dir);
    let after = [explain(&db, WINDOW_Q), explain(&db, WITHIN_Q), explain(&db, JOIN_Q)];
    assert_eq!(before, after, "estimates must be identical across checkpoint+reopen");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a checkpoint the stats come back through WAL replay alone.
#[test]
fn analyze_survives_wal_replay() {
    let dir = fresh_dir("wal");
    let db = Database::open(&dir).unwrap();
    sdo_core::register_spatial(&db);
    load_counties(&db, "t", 80, 8);
    db.execute("ANALYZE TABLE t").unwrap();
    let before = explain(&db, WINDOW_Q);
    assert!(before.contains("histogram"), "{before}");
    drop(db); // no checkpoint: recovery must replay the ANALYZE record

    let db = reopen(&dir);
    assert_eq!(before, explain(&db, WINDOW_Q));
    let _ = std::fs::remove_dir_all(&dir);
}

/// DML after ANALYZE ages the statistics: once churn passes the
/// staleness threshold the planner still uses them but flags it.
#[test]
fn dml_churn_marks_stats_stale() {
    let db = session();
    load_counties(&db, "t", 100, 9);
    db.execute("ANALYZE TABLE t").unwrap();
    assert!(!explain(&db, WINDOW_Q).contains("STALE"));

    for (i, g) in counties::generate(80, &US_EXTENT, 10).into_iter().enumerate() {
        db.insert_row("t", vec![Value::Integer(1000 + i as i64), Value::geometry(g)]).unwrap();
    }
    let p = explain(&db, WINDOW_Q);
    assert!(p.contains("STALE"), "heavy churn must be flagged: {p}");

    db.execute("ANALYZE TABLE t").unwrap();
    assert!(!explain(&db, WINDOW_Q).contains("STALE"), "re-ANALYZE clears staleness");
}

// -- plain EXPLAIN ----------------------------------------------------------

/// `EXPLAIN` costs the statement without instantiating table functions
/// or opening CURSOR arguments: a join that cannot execute (forced
/// tree join, no index) still EXPLAINs.
#[test]
fn explain_does_not_instantiate_table_functions() {
    let db = session();
    load_counties(&db, "a", 30, 11);
    load_counties(&db, "b", 30, 12);
    let sql = "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
               'a', 'geom', 'b', 'geom', 'intersect', 1, -1, 'method=rtree'))";
    assert!(db.execute(sql).is_err(), "forced tree join without indexes cannot run");
    let p = explain(&db, sql);
    assert!(p.contains("TABLE FUNCTION SCAN"), "{p}");
    assert!(p.contains("cost="), "{p}");
}

// -- plan-choice equivalence ------------------------------------------------

/// Every access path the planner can pick returns the same rows:
/// streaming vs. materialized executor, indexed vs. unindexed tables
/// (index prefilter vs. functional evaluation, probe vs. build join),
/// analyzed vs. unanalyzed statistics.
#[test]
fn all_access_paths_agree() {
    let queries = [
        WINDOW_Q,
        WITHIN_Q,
        "SELECT a.id FROM t a, t b WHERE SDO_RELATE(a.geom, b.geom, 'overlap') = 'TRUE'",
    ];
    let mut baseline: Vec<Option<Vec<i64>>> = vec![None; queries.len()];
    for indexed in [false, true] {
        for analyzed in [false, true] {
            let db = session();
            load_counties(&db, "t", 60, 13);
            if indexed {
                db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
            }
            if analyzed {
                db.execute("ANALYZE TABLE t").unwrap();
            }
            for mode in ["off", "on"] {
                db.execute(&format!("ALTER SESSION SET materialize = {mode}")).unwrap();
                for (qi, q) in queries.iter().enumerate() {
                    let got = sorted_ids(&db, q);
                    match &baseline[qi] {
                        None => baseline[qi] = Some(got),
                        Some(want) => assert_eq!(
                            want, &got,
                            "query {qi} diverged (indexed={indexed}, analyzed={analyzed}, \
                             materialize={mode})"
                        ),
                    }
                }
            }
        }
    }
}

// -- method=auto flip -------------------------------------------------------

/// On dense self-overlapping data at dop=4, `method=auto` picks the
/// tree join under the default one-match-per-row guess but flips to
/// the partition join once ANALYZE reveals the quadratic pair count —
/// and the reason string carries the numbers.
#[test]
fn auto_flips_to_partition_after_analyze() {
    let db = session();
    db.execute("CREATE TABLE dense (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    // 200 near-identical overlapping squares: every pair intersects.
    for i in 0..200 {
        let d = (i % 10) as f64 * 0.01;
        let (x0, y0, x1, y1) = (d, d, 10.0 + d, 10.0 + d);
        db.insert_row(
            "dense",
            vec![
                Value::Integer(i),
                Value::geometry(
                    sdo_geom::wkt::parse_wkt(&format!(
                        "POLYGON (({x0} {y0}, {x1} {y0}, {x1} {y1}, {x0} {y1}, {x0} {y0}))"
                    ))
                    .unwrap(),
                ),
            ],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX dense_x ON dense(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let sql = "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
               'dense', 'geom', 'dense', 'geom', 'intersect', 4, -1, 'method=auto'))";
    let run = |db: &Database| -> (String, String) {
        db.execute(sql).unwrap();
        let profile = db.last_profile().unwrap();
        let op = profile.root.find("PIPELINED COUNT").unwrap();
        let get = |k: &str| {
            op.attrs.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone()).unwrap_or_default()
        };
        (get("method_chosen"), get("method_reason"))
    };

    let (chosen, reason) = run(&db);
    assert_eq!(chosen, "rtree", "default estimate keeps the tree join: {reason}");
    assert!(reason.contains("no stats"), "{reason}");

    db.execute("ANALYZE TABLE dense").unwrap();
    let (chosen, reason) = run(&db);
    assert_eq!(chosen, "partition", "quadratic pair estimate flips the engine: {reason}");
    assert!(reason.contains("histogram overlay"), "{reason}");
    assert!(reason.contains("pairs"), "{reason}");
    assert!(reason.contains("tiles"), "{reason}");
}

// -- kNN pushdown -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `ORDER BY SDO_DISTANCE(...) LIMIT k` through the R-tree
    /// best-first search returns exactly the same ordered prefix as
    /// the functional sort on an unindexed copy of the data.
    #[test]
    fn knn_pushdown_matches_full_sort(
        n in 30usize..100,
        seed in 0u64..500,
        k in 1usize..20,
        px in -120f64..-80f64,
        py in 28f64..45f64,
    ) {
        let order_q = format!(
            "SELECT id FROM t ORDER BY SDO_DISTANCE(geom, SDO_POINT({px}, {py})) LIMIT {k}"
        );
        let run = |indexed: bool| -> Vec<i64> {
            let db = session();
            load_counties(&db, "t", n, seed);
            if indexed {
                db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
                let p = explain(&db, &order_q);
                assert!(p.contains("KNN SCAN"), "indexed top-k must push down:\n{p}");
            }
            db.execute(&order_q)
                .unwrap()
                .rows
                .iter()
                .map(|r| r[0].as_integer().unwrap())
                .collect()
        };
        let pushed = run(true);
        let full = run(false);
        prop_assert_eq!(&pushed, &full, "pushdown must preserve the exact order");
        prop_assert_eq!(pushed.len(), k.min(n));
    }
}

/// The pushdown's point: the sort path holds the whole table resident,
/// the kNN scan holds only the k results (≥10× fewer at k=10).
#[test]
fn knn_pushdown_bounds_resident_rows() {
    let db = session();
    load_counties(&db, "t", 500, 14);
    db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let q = "SELECT id FROM t ORDER BY SDO_DISTANCE(geom, SDO_POINT(-100, 38)) LIMIT 10";
    let peak = |sql: &str| {
        db.execute(sql).unwrap();
        db.last_profile().unwrap().root.metric("peak_resident_rows").unwrap()
    };
    let pushed = peak(q);
    // Defeat the pushdown with a second (no-op) sort key: full sort.
    let full =
        peak("SELECT id FROM t ORDER BY SDO_DISTANCE(geom, SDO_POINT(-100, 38)), id LIMIT 10");
    assert!(
        pushed * 10 <= full,
        "kNN scan must hold ≥10x fewer rows: pushed={pushed}, full-sort={full}"
    );
}

// -- EXPLAIN output contract ------------------------------------------------

/// Every EXPLAIN line follows `{indent}{LABEL} (rows=N, cost=N)[ -- reason]`
/// with two-space indent steps — the contract the CI golden check and
/// external tooling parse against.
#[test]
fn explain_lines_are_parseable() {
    let db = session();
    load_counties(&db, "t", 60, 15);
    db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    db.execute("ANALYZE TABLE t").unwrap();
    let queries = [
        "SELECT * FROM t".to_string(),
        WINDOW_Q.to_string(),
        WITHIN_Q.to_string(),
        JOIN_Q.to_string(),
        "SELECT id FROM t ORDER BY SDO_DISTANCE(geom, SDO_POINT(-100, 38)) LIMIT 5".to_string(),
        "SELECT id FROM t ORDER BY id DESC LIMIT 3".to_string(),
        "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('t','geom','t','geom','intersect'))".to_string(),
        "SELECT a.id FROM t a, t b WHERE (a.rowid, b.rowid) IN \
         (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('t','geom','t','geom','intersect')))"
            .to_string(),
    ];
    for q in &queries {
        let plan = explain(&db, q);
        let mut prev_depth = 0usize;
        for (ln, line) in plan.lines().enumerate() {
            let trimmed = line.trim_start();
            let indent = line.len() - trimmed.len();
            assert_eq!(indent % 2, 0, "odd indent at line {ln} of {q}:\n{plan}");
            let depth = indent / 2;
            assert!(
                ln == 0 && depth == 0 || depth <= prev_depth + 1,
                "indentation jumps at line {ln} of {q}:\n{plan}"
            );
            prev_depth = depth;
            // LABEL (rows=N, cost=N)[ -- reason]
            let open = trimmed.rfind("(rows=").unwrap_or_else(|| {
                panic!("line {ln} of {q} lacks estimates: {line}");
            });
            let rest = &trimmed[open..];
            let close = rest.find(')').expect("unclosed estimate group");
            let body = &rest["(".len()..close];
            let mut parts = body.split(", ");
            let rows = parts.next().unwrap().strip_prefix("rows=").expect("rows field");
            let cost = parts.next().unwrap().strip_prefix("cost=").expect("cost field");
            assert!(rows.chars().all(|c| c.is_ascii_digit()), "rows not integer: {line}");
            assert!(cost.chars().all(|c| c.is_ascii_digit()), "cost not integer: {line}");
            let tail = &rest[close + 1..];
            assert!(
                tail.is_empty() || tail.starts_with(" -- "),
                "unexpected tail at line {ln} of {q}: {line}"
            );
        }
    }
}
