//! Domain-index maintenance: inserts and deletes through the engine
//! must keep both index kinds consistent with functional truth
//! ("inserts and updates ... automatically trigger an update of the
//! corresponding spatial indexes", paper §3).

use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;

fn session(params: &str) -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db.execute("CREATE TABLE t (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in counties::generate(50, &US_EXTENT, 42).into_iter().enumerate() {
        db.insert_row("t", vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
    db.execute(&format!(
        "CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('{params}')"
    ))
    .unwrap();
    db
}

const WINDOW: &str = "SDO_GEOMETRY('POLYGON ((-110 30, -95 30, -95 42, -110 42, -110 30))')";

fn window_count(db: &Database) -> i64 {
    db.execute(&format!(
        "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {WINDOW}, 'ANYINTERACT') = 'TRUE'"
    ))
    .unwrap()
    .count()
    .unwrap()
}

fn run_dml_cycle(params: &str) {
    let db = session(params);
    let before = window_count(&db);
    assert!(before > 0);

    // Insert a polygon inside the window; the index must see it.
    db.execute(
        "INSERT INTO t VALUES (999, \
         SDO_GEOMETRY('POLYGON ((-105 35, -104 35, -104 36, -105 36, -105 35))'))",
    )
    .unwrap();
    assert_eq!(window_count(&db), before + 1, "params={params}");

    // Delete it again.
    db.execute("DELETE FROM t WHERE id = 999").unwrap();
    assert_eq!(window_count(&db), before, "params={params}");

    // Delete everything intersecting the window via ids.
    let ids: Vec<i64> = db
        .execute(&format!(
            "SELECT id FROM t WHERE SDO_RELATE(geom, {WINDOW}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_integer().unwrap())
        .collect();
    for id in ids {
        db.execute(&format!("DELETE FROM t WHERE id = {id}")).unwrap();
    }
    assert_eq!(window_count(&db), 0, "params={params}");
}

#[test]
fn rtree_index_tracks_dml() {
    run_dml_cycle("tree_fanout=8");
}

#[test]
fn quadtree_index_tracks_dml() {
    run_dml_cycle("sdo_level=7, extent=-125:24:-66:50");
}

#[test]
fn join_sees_post_creation_inserts() {
    let db = session("tree_fanout=8");
    db.execute("CREATE TABLE probe (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    db.insert_row(
        "probe",
        vec![
            Value::Integer(0),
            Value::geometry(
                sdo_geom::wkt::parse_wkt("POLYGON ((-105 35, -104 35, -104 36, -105 36))").unwrap(),
            ),
        ],
    )
    .unwrap();
    db.execute("CREATE INDEX probe_x ON probe(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let before = db
        .execute("SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('probe','geom','t','geom','intersect'))")
        .unwrap()
        .count()
        .unwrap();
    // Insert a county-overlapping polygon into t; the (snapshot-based)
    // join function picks it up on the next invocation.
    db.execute(
        "INSERT INTO t VALUES (1000, \
         SDO_GEOMETRY('POLYGON ((-104.5 35.2, -104.2 35.2, -104.2 35.5, -104.5 35.5))'))",
    )
    .unwrap();
    let after = db
        .execute("SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('probe','geom','t','geom','intersect'))")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(after, before + 1);
}

#[test]
fn update_moves_rows_in_both_index_kinds() {
    for params in ["tree_fanout=8", "sdo_level=7, extent=-200:-200:200:200"] {
        let db = session(params);
        let before = window_count(&db);
        assert!(before > 0);
        // Move every in-window county far away; the index must follow.
        let ids: Vec<i64> = db
            .execute(&format!(
                "SELECT id FROM t WHERE SDO_RELATE(geom, {WINDOW}, 'ANYINTERACT') = 'TRUE'"
            ))
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_integer().unwrap())
            .collect();
        for id in &ids {
            db.execute(&format!(
                "UPDATE t SET geom = SDO_GEOMETRY('POLYGON ((150 150, 151 150, 151 151, 150 151, 150 150))') \
                 WHERE id = {id}"
            ))
            .unwrap();
        }
        assert_eq!(window_count(&db), 0, "params={params}");
        // ...and back again
        for id in &ids {
            db.execute(&format!(
                "UPDATE t SET geom = SDO_GEOMETRY('POLYGON ((-105 35, -104 35, -104 36, -105 36, -105 35))') \
                 WHERE id = {id}"
            ))
            .unwrap();
        }
        assert_eq!(window_count(&db), before.max(ids.len() as i64), "params={params}");
    }
}
