//! MVCC transaction semantics end-to-end: SQL transactions, snapshot
//! isolation under concurrent writers, first-updater-wins conflicts,
//! domain-index enlistment in rollback, and crash recovery replayed at
//! every WAL truncation point.

use sdo_dbms::{Database, DbError, Durability};
use sdo_geom::wkt::parse_wkt;
use sdo_storage::{RowId, StorageError, Value};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Barrier;

fn session() -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db
}

/// The unit square at "location" `loc` — locations are 10 apart so
/// squares at different locations never interact, and the two rows of
/// one transaction's pair (same location) always intersect each other.
fn pair_poly(loc: i64) -> Value {
    let x = (loc * 10) as f64;
    let x1 = x + 1.0;
    Value::geometry(parse_wkt(&format!("POLYGON (({x} 0, {x1} 0, {x1} 1, {x} 1, {x} 0))")).unwrap())
}

/// Index-backed window count at `loc` (the window covers exactly that
/// location's square and nothing else).
fn window_count(db: &Database, table: &str, loc: i64) -> i64 {
    let x0 = (loc * 10) as f64 - 0.5;
    let x1 = (loc * 10) as f64 + 1.5;
    db.execute(&format!(
        "SELECT COUNT(*) FROM {table} WHERE SDO_RELATE(geom, SDO_GEOMETRY('POLYGON (({x0} -0.5, \
         {x1} -0.5, {x1} 1.5, {x0} 1.5, {x0} -0.5))'), 'ANYINTERACT') = 'TRUE'"
    ))
    .unwrap()
    .count()
    .unwrap()
}

fn count(db: &Database, sql: &str) -> i64 {
    db.execute(sql).unwrap().count().unwrap()
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("sdo-mvcc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn sql_txn_lifecycle_commit_rollback_and_errors() {
    let db = session();
    db.execute("CREATE TABLE t (id NUMBER)").unwrap();

    // Rolled-back work vanishes; the transaction saw its own writes.
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 1, "own writes visible in-txn");
    db.execute("ROLLBACK").unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 0, "rollback undoes the insert");

    // Committed work persists.
    db.execute("BEGIN WORK").unwrap();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 1);

    // Errors: COMMIT/ROLLBACK without a transaction, nested BEGIN,
    // DDL inside an explicit transaction.
    let e = db.execute("COMMIT").unwrap_err().to_string();
    assert!(e.contains("COMMIT"), "bad error: {e}");
    let e = db.execute("ROLLBACK").unwrap_err().to_string();
    assert!(e.contains("ROLLBACK"), "bad error: {e}");
    db.execute("BEGIN").unwrap();
    let e = db.execute("BEGIN").unwrap_err().to_string();
    assert!(e.contains("already in progress"), "bad error: {e}");
    let e = db.execute("CREATE TABLE t2 (id NUMBER)").unwrap_err().to_string();
    assert!(e.contains("transaction"), "DDL in txn must be rejected: {e}");
    db.execute("ROLLBACK").unwrap();
}

#[test]
fn session_txn_snapshot_is_repeatable_despite_concurrent_commits() {
    let db = session();
    db.execute("CREATE TABLE t (id NUMBER)").unwrap();

    db.execute("BEGIN").unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 0);

    // A detached transaction commits while the session txn is open.
    let mut w = db.begin();
    w.insert("t", vec![Value::Integer(99)]).unwrap();
    w.commit().unwrap();

    // The session still reads its BEGIN-time snapshot.
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 0, "snapshot must be repeatable");
    db.execute("COMMIT").unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 1, "new snapshot sees the commit");
}

#[test]
fn write_write_conflict_first_updater_wins() {
    let db = session();
    db.execute("CREATE TABLE t (id NUMBER)").unwrap();
    let rid = db.insert_row("t", vec![Value::Integer(1)]).unwrap();

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    t1.update("t", rid, vec![Value::Integer(10)]).unwrap();
    match t2.update("t", rid, vec![Value::Integer(20)]) {
        Err(DbError::Storage(StorageError::WriteConflict(r))) => assert_eq!(r, rid),
        other => panic!("expected WriteConflict, got {other:?}"),
    }
    t2.rollback();
    t1.commit().unwrap();

    // The conflict clears once the first updater is done.
    let mut t3 = db.begin();
    t3.update("t", rid, vec![Value::Integer(30)]).unwrap();
    t3.commit().unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t WHERE id = 30"), 1);
}

#[test]
fn rollback_restores_heap_and_spatial_index_together() {
    let db = session();
    db.execute("CREATE TABLE t (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    db.insert_row("t", vec![Value::Integer(5), pair_poly(5)]).unwrap();
    db.insert_row("t", vec![Value::Integer(5), pair_poly(5)]).unwrap();
    db.execute(
        "CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=8')",
    )
    .unwrap();

    // Inserted geometry is index-visible to the inserting transaction,
    // and rollback removes it from heap and index alike.
    db.execute("BEGIN").unwrap();
    db.execute(&format!("INSERT INTO t VALUES (7, {})", wkt_literal(7))).unwrap();
    db.execute(&format!("INSERT INTO t VALUES (7, {})", wkt_literal(7))).unwrap();
    assert_eq!(window_count(&db, "t", 7), 2, "own inserts visible through the index");
    db.execute("ROLLBACK").unwrap();
    assert_eq!(window_count(&db, "t", 7), 0, "rolled-back rows gone from the index");
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 2, "heap agrees");

    // A rolled-back DELETE leaves the rows index-findable.
    db.execute("BEGIN").unwrap();
    db.execute("DELETE FROM t WHERE id = 5").unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 0, "own deletes visible in-txn");
    db.execute("ROLLBACK").unwrap();
    assert_eq!(window_count(&db, "t", 5), 2, "rolled-back delete restores index hits");

    // A committed transactional insert is durable in both.
    db.execute("BEGIN").unwrap();
    db.execute(&format!("INSERT INTO t VALUES (9, {})", wkt_literal(9))).unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(window_count(&db, "t", 9), 1);
}

fn wkt_literal(loc: i64) -> String {
    let x = (loc * 10) as f64;
    let x1 = x + 1.0;
    format!("SDO_GEOMETRY('POLYGON (({x} 0, {x1} 0, {x1} 1, {x} 1, {x} 0))')")
}

/// The acceptance centrepiece: ≥4 concurrent writer transactions
/// (inserts, pair-moves, pair-deletes, rollbacks) against concurrent
/// snapshot readers, one of which streams a parallel SPATIAL_JOIN
/// mid-commit. Every transaction writes its two rows as an identical
/// square at a transaction-unique location, so any consistent snapshot
/// holds complete pairs only: COUNT(*) must be even, and the
/// self-join count must be an exact multiple of one pair's
/// contribution. A torn read (half a pair visible, or an index entry
/// without its heap row) breaks the modulus.
#[test]
fn concurrent_writers_and_snapshot_readers_see_no_torn_state() {
    let db = session();
    db.execute("CREATE TABLE a (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    db.execute(
        "CREATE INDEX a_x ON a(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=8')",
    )
    .unwrap();

    // Calibrate one complete pair's contribution to the self-join.
    db.insert_row("a", vec![Value::Integer(0), pair_poly(0)]).unwrap();
    db.insert_row("a", vec![Value::Integer(0), pair_poly(0)]).unwrap();
    let join_sql = "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('a','geom','a','geom','intersect', 2))";
    let per_pair = count(&db, join_sql);
    assert!(per_pair > 0, "calibration pair must self-join");

    const WRITERS: usize = 4;
    const TXNS: i64 = 60;
    let net_pairs = AtomicI64::new(1); // the calibration pair
    let done = AtomicBool::new(false);
    let barrier = Barrier::new(WRITERS + 2);

    std::thread::scope(|s| {
        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            let (db, barrier, net_pairs) = (&db, &barrier, &net_pairs);
            writer_handles.push(s.spawn(move || {
                barrier.wait();
                for j in 0..TXNS {
                    let loc = 1 + (w as i64) * 1000 + j;
                    let mut t = db.begin();
                    let r1 = t.insert("a", vec![Value::Integer(loc), pair_poly(loc)]).unwrap();
                    let r2 = t.insert("a", vec![Value::Integer(loc), pair_poly(loc)]).unwrap();
                    if j % 5 == 4 {
                        t.rollback();
                        continue;
                    }
                    t.commit().unwrap();
                    net_pairs.fetch_add(1, Ordering::Relaxed);
                    match j % 3 {
                        // Move the pair: one transaction updates both
                        // rows to a new (still unique) location.
                        0 => {
                            let dest = loc + 500_000;
                            let mut t = db.begin();
                            t.update("a", r1, vec![Value::Integer(loc), pair_poly(dest)]).unwrap();
                            t.update("a", r2, vec![Value::Integer(loc), pair_poly(dest)]).unwrap();
                            t.commit().unwrap();
                        }
                        // Remove the pair: one transaction deletes both.
                        1 => {
                            let mut t = db.begin();
                            t.delete("a", r1).unwrap();
                            t.delete("a", r2).unwrap();
                            t.commit().unwrap();
                            net_pairs.fetch_sub(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                }
            }));
        }
        for _ in 0..2 {
            let (db, barrier, done) = (&db, &barrier, &done);
            s.spawn(move || {
                barrier.wait();
                let mut iters = 0u64;
                while !done.load(Ordering::Relaxed) || iters < 3 {
                    let c = count(db, "SELECT COUNT(*) FROM a");
                    assert_eq!(c % 2, 0, "torn heap read: COUNT(*) = {c}");
                    let j = count(db, join_sql);
                    assert_eq!(j % per_pair, 0, "torn join read: {j} not a multiple of {per_pair}");
                    iters += 1;
                }
            });
        }
        for h in writer_handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });

    // Quiesced final state: exact counts, heap and index in agreement.
    let pairs = net_pairs.load(Ordering::Relaxed);
    assert_eq!(count(&db, "SELECT COUNT(*) FROM a"), 2 * pairs);
    assert_eq!(count(&db, join_sql), pairs * per_pair);
}

/// Crash the WAL at *every* frame boundary (plus mid-frame cuts) of a
/// scripted workload and reopen: the recovered state must be exactly
/// the serial prefix of committed transactions — each transaction's
/// pair all-or-nothing — and the rebuilt R-tree must agree with the
/// recovered heap at every location.
#[test]
fn crash_recovery_at_every_wal_point_yields_a_committed_prefix() {
    let dir = fresh_dir("crash-src");

    // Scripted workload: five committed transactions (insert, insert,
    // move, delete, insert) and one left uncommitted at the end.
    {
        let db = Database::open(&dir).unwrap();
        sdo_core::register_spatial(&db);
        db.execute("CREATE TABLE a (id NUMBER, geom SDO_GEOMETRY)").unwrap();
        db.execute(
            "CREATE INDEX a_x ON a(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=8')",
        )
        .unwrap();

        let insert_pair = |t: &mut sdo_dbms::Txn<'_>, id: i64, loc: i64| -> (RowId, RowId) {
            let r1 = t.insert("a", vec![Value::Integer(id), pair_poly(loc)]).unwrap();
            let r2 = t.insert("a", vec![Value::Integer(id), pair_poly(loc)]).unwrap();
            (r1, r2)
        };
        let mut t1 = db.begin();
        let (p1a, p1b) = insert_pair(&mut t1, 1, 1);
        t1.commit().unwrap();
        let mut t2 = db.begin();
        let (p2a, p2b) = insert_pair(&mut t2, 2, 2);
        t2.commit().unwrap();
        let mut t3 = db.begin();
        t3.update("a", p1a, vec![Value::Integer(1), pair_poly(8)]).unwrap();
        t3.update("a", p1b, vec![Value::Integer(1), pair_poly(8)]).unwrap();
        t3.commit().unwrap();
        let mut t4 = db.begin();
        t4.delete("a", p2a).unwrap();
        t4.delete("a", p2b).unwrap();
        t4.commit().unwrap();
        let mut t5 = db.begin();
        insert_pair(&mut t5, 3, 3);
        t5.commit().unwrap();
        let mut t6 = db.begin();
        insert_pair(&mut t6, 4, 4);
        drop(t6); // in flight at the crash — abort record is advisory
    }

    // Expected (id, loc) multiset after each committed prefix.
    let states: [&[(i64, i64)]; 6] =
        [&[], &[(1, 1)], &[(1, 1), (2, 2)], &[(1, 8), (2, 2)], &[(1, 8)], &[(1, 8), (3, 3)]];
    let all_ids = [1i64, 2, 3, 4];
    let all_locs = [1i64, 2, 3, 4, 8];

    // Frame boundaries from the on-disk [len][crc][payload] framing.
    let wal_bytes = std::fs::read(dir.join(sdo_dbms::db::WAL_FILE)).unwrap();
    let mut cuts = vec![wal_bytes.len()];
    let mut pos = 0usize;
    while pos + 8 <= wal_bytes.len() {
        let len = u32::from_le_bytes(wal_bytes[pos..pos + 4].try_into().unwrap()) as usize;
        cuts.push(pos); // clean cut at the frame start
        cuts.push(pos + 3); // torn cut inside the frame header
        if len > 1 {
            cuts.push(pos + 8 + len / 2); // torn cut inside the payload
        }
        pos += 8 + len;
    }
    cuts.sort_unstable();
    cuts.dedup();
    assert!(cuts.len() > 20, "workload produced too few WAL frames: {}", cuts.len());

    for (case, &cut) in cuts.iter().enumerate() {
        let crash_dir = fresh_dir(&format!("crash-{case}"));
        std::fs::write(crash_dir.join(sdo_dbms::db::WAL_FILE), &wal_bytes[..cut]).unwrap();

        let db = Database::open(&crash_dir).unwrap();
        sdo_core::register_spatial(&db);
        let rebuilt = db.recover_indexes().unwrap();
        let report = db.last_recovery().unwrap();
        let k = report.committed_txns;
        assert!(k <= 5, "cut {cut}: impossible commit count {k}");

        if db.execute("SELECT COUNT(*) FROM a").is_err() {
            // The cut fell before CREATE TABLE reached the log.
            assert_eq!(k, 0, "cut {cut}: table lost but commits found");
            let _ = std::fs::remove_dir_all(&crash_dir);
            continue;
        }
        let expected = states[k];
        assert_eq!(
            count(&db, "SELECT COUNT(*) FROM a"),
            2 * expected.len() as i64,
            "cut {cut}: row count is not the k={k} prefix"
        );
        for id in all_ids {
            let want = if expected.iter().any(|&(e, _)| e == id) { 2 } else { 0 };
            assert_eq!(
                count(&db, &format!("SELECT COUNT(*) FROM a WHERE id = {id}")),
                want,
                "cut {cut}: transaction {id} not all-or-nothing"
            );
        }
        // The rebuilt R-tree answers every location exactly like the
        // recovered heap says it should.
        if rebuilt > 0 {
            for loc in all_locs {
                let want = if expected.iter().any(|&(_, l)| l == loc) { 2 } else { 0 };
                assert_eq!(
                    window_count(&db, "a", loc),
                    want,
                    "cut {cut}: index disagrees with heap at location {loc}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&crash_dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn alter_session_durability_and_value_validation() {
    let dir = fresh_dir("buffered");
    let db = Database::open(&dir).unwrap();
    sdo_core::register_spatial(&db);

    assert_eq!(db.options().durability, Durability::Fsync, "fsync is the default");
    db.execute("ALTER SESSION SET durability = buffered").unwrap();
    assert_eq!(db.options().durability, Durability::Buffered);

    // Unknown values are rejected with the option named.
    let e = db.execute("ALTER SESSION SET durability = sometimes").unwrap_err().to_string();
    assert!(e.contains("DURABILITY") && e.contains("sometimes"), "bad error: {e}");
    let e = db.execute("ALTER SESSION SET materialize = maybe").unwrap_err().to_string();
    assert!(e.contains("MATERIALIZE") && e.contains("maybe"), "bad error: {e}");
    let e = db.execute("ALTER SESSION SET frobnicate = on").unwrap_err().to_string();
    assert!(e.contains("frobnicate"), "bad error: {e}");

    // Buffered commits still reach the log file and replay on reopen.
    db.execute("CREATE TABLE t (id NUMBER)").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    db.execute("COMMIT").unwrap();
    drop(db);

    let db = Database::open(&dir).unwrap();
    sdo_core::register_spatial(&db);
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
