//! Parallel execution must be invisible in results: any DOP, any
//! descent level, any fetch size yields the serial row-pair multiset
//! (Figure 1's decomposition is a pure partitioning of the work).

use sdo_datagen::{stars, SKY_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;

fn session(n: usize) -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    let s = stars::generate(n, &SKY_EXTENT, 7);
    for t in ["a", "b"] {
        db.execute(&format!("CREATE TABLE {t} (id NUMBER, geom SDO_GEOMETRY)")).unwrap();
        for (i, g) in s.iter().enumerate() {
            db.insert_row(t, vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
        }
        db.execute(&format!(
            "CREATE INDEX {t}_x ON {t}(geom) INDEXTYPE IS SPATIAL_INDEX \
             PARAMETERS ('tree_fanout=8')"
        ))
        .unwrap();
    }
    db
}

fn pairs(db: &Database, sql: &str) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = db
        .execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| (r[0].as_rowid().unwrap().as_u64(), r[1].as_rowid().unwrap().as_u64()))
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn dop_sweep_preserves_results() {
    let db = session(300);
    let serial =
        pairs(&db, "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('a','geom','b','geom','intersect'))");
    assert!(!serial.is_empty());
    for dop in [2, 3, 4, 8] {
        let par = pairs(
            &db,
            &format!(
                "SELECT rid1, rid2 FROM TABLE( \
                 SPATIAL_JOIN('a','geom','b','geom','intersect', {dop}))"
            ),
        );
        assert_eq!(par, serial, "dop={dop}");
    }
}

#[test]
fn descent_level_sweep_preserves_results() {
    let db = session(250);
    let serial =
        pairs(&db, "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('a','geom','b','geom','intersect'))");
    for level in [0, 1, 2] {
        let par = pairs(
            &db,
            &format!(
                "SELECT rid1, rid2 FROM TABLE( \
                 SPATIAL_JOIN('a','geom','b','geom','intersect', 2, {level}))"
            ),
        );
        assert_eq!(par, serial, "level={level}");
    }
}

#[test]
fn options_do_not_change_results() {
    let db = session(200);
    let baseline =
        pairs(&db, "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('a','geom','b','geom','intersect'))");
    for opts in [
        "fetch_order=arrival",
        "candidates=3",
        "cache=0",
        "fetch_order=arrival, candidates=10, cache=4",
    ] {
        let got = pairs(
            &db,
            &format!(
                "SELECT rid1, rid2 FROM TABLE( \
                 SPATIAL_JOIN('a','geom','b','geom','intersect', 2, 1, '{opts}'))"
            ),
        );
        assert_eq!(got, baseline, "opts={opts}");
    }
}

#[test]
fn distance_join_parallel_equivalence() {
    let db = session(200);
    let serial = pairs(
        &db,
        "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('a','geom','b','geom','distance=2'))",
    );
    let par = pairs(
        &db,
        "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('a','geom','b','geom','distance=2', 4))",
    );
    assert_eq!(par, serial);
    assert!(serial.len() > 200, "distance join should match beyond identity pairs");
}
