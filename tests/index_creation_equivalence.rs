//! Parallel index creation must produce indexes indistinguishable from
//! serially created ones (paper §5: the parallel build is a pure
//! performance optimization).

use sdo_datagen::{block_groups, US_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;

fn fresh_session(n: usize) -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db.execute("CREATE TABLE bg (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in block_groups::generate(n, &US_EXTENT, 5).into_iter().enumerate() {
        db.insert_row("bg", vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
    db
}

const WINDOWS: [&str; 3] = [
    "SDO_GEOMETRY('POLYGON ((-120 30, -110 30, -110 40, -120 40, -120 30))')",
    "SDO_GEOMETRY('POLYGON ((-90 25, -70 25, -70 49, -90 49, -90 25))')",
    "SDO_GEOMETRY('POINT (-100 35)')",
];

fn query_fingerprint(db: &Database) -> Vec<Vec<i64>> {
    WINDOWS
        .iter()
        .map(|w| {
            let mut ids: Vec<i64> = db
                .execute(&format!(
                    "SELECT id FROM bg WHERE SDO_RELATE(geom, {w}, 'ANYINTERACT') = 'TRUE'"
                ))
                .unwrap()
                .rows
                .iter()
                .map(|r| r[0].as_integer().unwrap())
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

fn fingerprint_with(params: &str, parallel: usize, n: usize) -> Vec<Vec<i64>> {
    let db = fresh_session(n);
    db.execute(&format!(
        "CREATE INDEX bg_x ON bg(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('{params}') PARALLEL {parallel}"
    ))
    .unwrap();
    query_fingerprint(&db)
}

#[test]
fn rtree_creation_dop_equivalence() {
    let n = 150;
    let serial = fingerprint_with("tree_fanout=16", 1, n);
    for dop in [2, 4] {
        assert_eq!(fingerprint_with("tree_fanout=16", dop, n), serial, "dop={dop}");
    }
}

#[test]
fn quadtree_creation_dop_equivalence() {
    let n = 120;
    let params = "sdo_level=7, extent=-125:24:-66:50";
    let serial = fingerprint_with(params, 1, n);
    for dop in [2, 4] {
        assert_eq!(fingerprint_with(params, dop, n), serial, "dop={dop}");
    }
}

#[test]
fn creation_metadata_records_dop_and_kind() {
    let db = fresh_session(40);
    db.execute(
        "CREATE INDEX bg_x ON bg(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('sdo_level=6, extent=-125:24:-66:50') PARALLEL 4",
    )
    .unwrap();
    let meta = db.catalog().index_metadata("bg_x").unwrap();
    assert_eq!(meta.kind, sdo_storage::IndexKind::Quadtree);
    assert_eq!(meta.create_dop, 4);
    assert_eq!(meta.tiling_level, Some(6));
    assert_eq!(meta.table_name, "BG");
}

#[test]
fn split_strategies_answer_identically() {
    let n = 100;
    let base = fingerprint_with("tree_fanout=8, split=quadratic", 1, n);
    for split in ["linear", "rstar"] {
        assert_eq!(
            fingerprint_with(&format!("tree_fanout=8, split={split}"), 1, n),
            base,
            "split={split}"
        );
    }
}
