//! Whole-database snapshots: tables, rowids and spatial indexes survive
//! a save/load cycle, and queries answer identically afterwards.

use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;

fn session() -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db
}

fn build_source() -> Database {
    let db = session();
    db.execute("CREATE TABLE t (id NUMBER, name VARCHAR2, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in counties::generate(80, &US_EXTENT, 77).into_iter().enumerate() {
        db.insert_row(
            "t",
            vec![Value::Integer(i as i64), Value::text(format!("county{i}")), Value::geometry(g)],
        )
        .unwrap();
    }
    // tombstones must survive
    db.execute("DELETE FROM t WHERE id = 10").unwrap();
    db.execute("DELETE FROM t WHERE id = 20").unwrap();
    db.execute(
        "CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('tree_fanout=16') PARALLEL 2",
    )
    .unwrap();
    db
}

const WINDOW: &str = "SDO_GEOMETRY('POLYGON ((-110 28, -92 28, -92 44, -110 44, -110 28))')";

fn fingerprint(db: &Database) -> (i64, i64, Vec<i64>) {
    let window_count = db
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {WINDOW}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count()
        .unwrap();
    let join_count = db
        .execute("SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('t','geom','t','geom','intersect'))")
        .unwrap()
        .count()
        .unwrap();
    let ids: Vec<i64> = db
        .execute("SELECT id FROM t ORDER BY id LIMIT 25")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_integer().unwrap())
        .collect();
    (window_count, join_count, ids)
}

#[test]
fn snapshot_roundtrip_preserves_queries_and_indexes() {
    let src = build_source();
    let before = fingerprint(&src);
    let bytes = src.save_snapshot();

    let dst = session();
    dst.load_snapshot(bytes).unwrap();
    // the index was rebuilt with its recorded parameters
    let meta = dst.catalog().index_metadata("t_x").unwrap();
    assert_eq!(meta.kind, sdo_storage::IndexKind::RTree);
    assert_eq!(meta.parameters, "tree_fanout=16");
    assert_eq!(meta.create_dop, 2);
    assert_eq!(fingerprint(&dst), before);
    // tombstoned ids are really gone
    assert_eq!(dst.execute("SELECT COUNT(*) FROM t WHERE id = 10").unwrap().count(), Some(0));
    // and the restored session accepts further DML + queries
    dst.execute(
        "INSERT INTO t VALUES (999, 'new', \
         SDO_GEOMETRY('POLYGON ((-100 30, -99 30, -99 31, -100 31, -100 30))'))",
    )
    .unwrap();
    let after_insert = fingerprint(&dst);
    assert_eq!(after_insert.0, before.0 + 1, "rebuilt index must track new DML");
}

#[test]
fn quadtree_snapshot_roundtrip() {
    let db = session();
    db.execute("CREATE TABLE t (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in counties::generate(40, &US_EXTENT, 13).into_iter().enumerate() {
        db.insert_row("t", vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
    db.execute(
        "CREATE INDEX t_q ON t(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('sdo_level=7, extent=-125:24:-66:50')",
    )
    .unwrap();
    let before = db
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {WINDOW}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count();
    let bytes = db.save_snapshot();
    let dst = session();
    dst.load_snapshot(bytes).unwrap();
    assert_eq!(dst.catalog().index_metadata("t_q").unwrap().tiling_level, Some(7));
    let after = dst
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {WINDOW}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count();
    assert_eq!(before, after);
}

#[test]
fn load_into_nonempty_session_fails_cleanly() {
    let src = build_source();
    let bytes = src.save_snapshot();
    let dst = session();
    dst.execute("CREATE TABLE t (id NUMBER)").unwrap(); // name collision
    assert!(dst.load_snapshot(bytes).is_err());
}

#[test]
fn garbage_snapshot_rejected() {
    let dst = session();
    assert!(dst.load_snapshot(bytes::Bytes::from_static(b"not a snapshot")).is_err());
}

// -- durable on-disk roundtrips (pager base image + WAL) --------------------

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("sdo-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn build_source_at(dir: &std::path::Path) -> Database {
    let db = Database::open(dir).unwrap();
    sdo_core::register_spatial(&db);
    db.execute("CREATE TABLE t (id NUMBER, name VARCHAR2, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in counties::generate(80, &US_EXTENT, 77).into_iter().enumerate() {
        db.insert_row(
            "t",
            vec![Value::Integer(i as i64), Value::text(format!("county{i}")), Value::geometry(g)],
        )
        .unwrap();
    }
    db.execute("DELETE FROM t WHERE id = 10").unwrap();
    db.execute("DELETE FROM t WHERE id = 20").unwrap();
    db.execute(
        "CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('tree_fanout=16') PARALLEL 2",
    )
    .unwrap();
    db
}

fn reopen(dir: &std::path::Path) -> Database {
    let db = Database::open(dir).unwrap();
    sdo_core::register_spatial(&db);
    db.recover_indexes().unwrap();
    db
}

#[test]
fn wal_replay_roundtrip_preserves_queries_and_indexes() {
    let dir = fresh_dir("wal-only");
    let src = build_source_at(&dir);
    let before = fingerprint(&src);
    drop(src);

    // No checkpoint was taken: the whole state replays from the WAL.
    let dst = reopen(&dir);
    assert_eq!(fingerprint(&dst), before);
    assert_eq!(dst.execute("SELECT COUNT(*) FROM t WHERE id = 10").unwrap().count(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_then_reopen_truncates_wal_and_preserves_state() {
    let dir = fresh_dir("checkpoint");
    let src = build_source_at(&dir);
    let before = fingerprint(&src);
    src.checkpoint().unwrap();
    assert!(dir.join(sdo_dbms::db::BASE_FILE).exists(), "checkpoint writes the base image");
    assert_eq!(
        std::fs::metadata(dir.join(sdo_dbms::db::WAL_FILE)).unwrap().len(),
        0,
        "checkpoint truncates the log"
    );
    drop(src);

    // Everything now loads from the page-backed base image alone.
    let dst = reopen(&dir);
    assert_eq!(fingerprint(&dst), before);
    let meta = dst.catalog().index_metadata("t_x").unwrap();
    assert_eq!(meta.parameters, "tree_fanout=16");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_plus_wal_tail_combine_on_reopen() {
    let dir = fresh_dir("base-plus-tail");
    let src = build_source_at(&dir);
    src.checkpoint().unwrap();
    // Post-checkpoint DML lands in the fresh WAL tail only.
    src.execute("BEGIN").unwrap();
    src.execute(
        "INSERT INTO t VALUES (999, 'new', \
         SDO_GEOMETRY('POLYGON ((-100 30, -99 30, -99 31, -100 31, -100 30))'))",
    )
    .unwrap();
    src.execute("COMMIT").unwrap();
    src.execute("DELETE FROM t WHERE id = 30").unwrap();
    let before = fingerprint(&src);
    drop(src);

    // Reopen must apply base image *and* the log tail, in order.
    let dst = reopen(&dir);
    assert_eq!(fingerprint(&dst), before);
    assert_eq!(dst.execute("SELECT COUNT(*) FROM t WHERE id = 999").unwrap().count(), Some(1));
    assert_eq!(dst.execute("SELECT COUNT(*) FROM t WHERE id = 30").unwrap().count(), Some(0));

    // A second checkpoint over the combined state is stable too.
    dst.checkpoint().unwrap();
    let dst2 = reopen(&dir);
    assert_eq!(fingerprint(&dst2), before);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_refuses_in_flight_transactions() {
    let dir = fresh_dir("quiesce");
    let db = Database::open(&dir).unwrap();
    sdo_core::register_spatial(&db);
    db.execute("CREATE TABLE t (id NUMBER)").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let e = db.checkpoint().unwrap_err().to_string();
    assert!(e.contains("transaction"), "bad error: {e}");
    db.execute("COMMIT").unwrap();
    db.checkpoint().unwrap();

    // An in-memory session has no backing directory to checkpoint to.
    let mem = session();
    assert!(mem.checkpoint().is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
