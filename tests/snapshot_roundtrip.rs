//! Whole-database snapshots: tables, rowids and spatial indexes survive
//! a save/load cycle, and queries answer identically afterwards.

use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;

fn session() -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db
}

fn build_source() -> Database {
    let db = session();
    db.execute("CREATE TABLE t (id NUMBER, name VARCHAR2, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in counties::generate(80, &US_EXTENT, 77).into_iter().enumerate() {
        db.insert_row(
            "t",
            vec![Value::Integer(i as i64), Value::text(format!("county{i}")), Value::geometry(g)],
        )
        .unwrap();
    }
    // tombstones must survive
    db.execute("DELETE FROM t WHERE id = 10").unwrap();
    db.execute("DELETE FROM t WHERE id = 20").unwrap();
    db.execute(
        "CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('tree_fanout=16') PARALLEL 2",
    )
    .unwrap();
    db
}

const WINDOW: &str = "SDO_GEOMETRY('POLYGON ((-110 28, -92 28, -92 44, -110 44, -110 28))')";

fn fingerprint(db: &Database) -> (i64, i64, Vec<i64>) {
    let window_count = db
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {WINDOW}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count()
        .unwrap();
    let join_count = db
        .execute("SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('t','geom','t','geom','intersect'))")
        .unwrap()
        .count()
        .unwrap();
    let ids: Vec<i64> = db
        .execute("SELECT id FROM t ORDER BY id LIMIT 25")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_integer().unwrap())
        .collect();
    (window_count, join_count, ids)
}

#[test]
fn snapshot_roundtrip_preserves_queries_and_indexes() {
    let src = build_source();
    let before = fingerprint(&src);
    let bytes = src.save_snapshot();

    let dst = session();
    dst.load_snapshot(bytes).unwrap();
    // the index was rebuilt with its recorded parameters
    let meta = dst.catalog().index_metadata("t_x").unwrap();
    assert_eq!(meta.kind, sdo_storage::IndexKind::RTree);
    assert_eq!(meta.parameters, "tree_fanout=16");
    assert_eq!(meta.create_dop, 2);
    assert_eq!(fingerprint(&dst), before);
    // tombstoned ids are really gone
    assert_eq!(dst.execute("SELECT COUNT(*) FROM t WHERE id = 10").unwrap().count(), Some(0));
    // and the restored session accepts further DML + queries
    dst.execute(
        "INSERT INTO t VALUES (999, 'new', \
         SDO_GEOMETRY('POLYGON ((-100 30, -99 30, -99 31, -100 31, -100 30))'))",
    )
    .unwrap();
    let after_insert = fingerprint(&dst);
    assert_eq!(after_insert.0, before.0 + 1, "rebuilt index must track new DML");
}

#[test]
fn quadtree_snapshot_roundtrip() {
    let db = session();
    db.execute("CREATE TABLE t (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in counties::generate(40, &US_EXTENT, 13).into_iter().enumerate() {
        db.insert_row("t", vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
    db.execute(
        "CREATE INDEX t_q ON t(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('sdo_level=7, extent=-125:24:-66:50')",
    )
    .unwrap();
    let before = db
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {WINDOW}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count();
    let bytes = db.save_snapshot();
    let dst = session();
    dst.load_snapshot(bytes).unwrap();
    assert_eq!(dst.catalog().index_metadata("t_q").unwrap().tiling_level, Some(7));
    let after = dst
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {WINDOW}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count();
    assert_eq!(before, after);
}

#[test]
fn load_into_nonempty_session_fails_cleanly() {
    let src = build_source();
    let bytes = src.save_snapshot();
    let dst = session();
    dst.execute("CREATE TABLE t (id NUMBER)").unwrap(); // name collision
    assert!(dst.load_snapshot(bytes).is_err());
}

#[test]
fn garbage_snapshot_rejected() {
    let dst = session();
    assert!(dst.load_snapshot(bytes::Bytes::from_static(b"not a snapshot")).is_err());
}
