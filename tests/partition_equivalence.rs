//! Partitioned-join equivalence: `method=partition` must return the
//! exact rowid-pair set of the R-tree traversal and of a nested-loop
//! oracle — with **zero duplicates and no dedup pass** (the two-layer
//! tile classes route every qualifying pair to exactly one tile), at
//! any DOP, under every kernel/prepare/sweep_threshold combination.

use proptest::prelude::*;
use sdo_datagen::{counties, hotspot, US_EXTENT};
use sdo_dbms::Database;
use sdo_geom::{Geometry, Polygon, Rect};
use sdo_storage::Value;

fn load(db: &Database, table: &str, geoms: &[Geometry]) {
    db.execute(&format!("CREATE TABLE {table} (id NUMBER, geom SDO_GEOMETRY)")).unwrap();
    for (i, g) in geoms.iter().enumerate() {
        db.insert_row(table, vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
    }
}

/// Session with `ta`/`tb` loaded; `indexed` controls R-tree creation.
fn session(a: &[Geometry], b: &[Geometry], indexed: bool) -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    load(&db, "ta", a);
    load(&db, "tb", b);
    if indexed {
        for t in ["ta", "tb"] {
            db.execute(&format!(
                "CREATE INDEX {t}_x ON {t}(geom) INDEXTYPE IS SPATIAL_INDEX \
                 PARAMETERS ('tree_fanout=8')"
            ))
            .unwrap();
        }
    }
    db
}

/// Sorted pair list — duplicates are PRESERVED so tests can prove the
/// partition join never emits one (no hidden dedup in the harness).
fn pairs(db: &Database, sql: &str) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = db
        .execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| (r[0].as_rowid().unwrap().as_u64(), r[1].as_rowid().unwrap().as_u64()))
        .collect();
    out.sort_unstable();
    out
}

fn assert_no_duplicates(set: &[(u64, u64)], ctx: &str) {
    assert!(set.windows(2).all(|w| w[0] != w[1]), "duplicate pair emitted: {ctx}");
}

fn brute(a: &[Geometry], b: &[Geometry], pred: &str) -> Vec<(u64, u64)> {
    #[allow(clippy::type_complexity)]
    let keep: Box<dyn Fn(&Geometry, &Geometry) -> bool> = match pred {
        "intersect" => Box::new(|ga, gb| {
            sdo_geom::relate::relate_any(ga, gb, &[sdo_geom::RelateMask::AnyInteract])
        }),
        "mask=touch+overlap" => Box::new(|ga, gb| {
            sdo_geom::relate::relate_any(
                ga,
                gb,
                &[sdo_geom::RelateMask::Touch, sdo_geom::RelateMask::Overlap],
            )
        }),
        "distance=2.5" => Box::new(|ga, gb| sdo_geom::within_distance(ga, gb, 2.5)),
        "FILTER" => Box::new(|ga, gb| ga.bbox().intersects(&gb.bbox())),
        _ => panic!("unknown pred {pred}"),
    };
    let mut out = Vec::new();
    for (i, ga) in a.iter().enumerate() {
        for (j, gb) in b.iter().enumerate() {
            if keep(ga, gb) {
                out.push((i as u64, j as u64));
            }
        }
    }
    out.sort_unstable();
    out
}

fn join_sql(pred: &str, dop: usize, opts: &str) -> String {
    format!(
        "SELECT rid1, rid2 FROM TABLE( \
         SPATIAL_JOIN('ta','geom','tb','geom','{pred}', {dop}, -1, '{opts}'))"
    )
}

#[test]
fn partition_equals_rtree_and_nested_loop_across_dops() {
    let a = counties::generate(70, &US_EXTENT, 910);
    let b = counties::generate(70, &US_EXTENT, 911);
    let db = session(&a, &b, true);
    for pred in ["intersect", "mask=touch+overlap", "distance=2.5", "FILTER"] {
        let oracle = brute(&a, &b, pred);
        assert!(!oracle.is_empty(), "{pred} must produce pairs");
        let rtree = pairs(&db, &join_sql(pred, 1, "method=rtree"));
        assert_eq!(rtree, oracle, "rtree vs oracle, pred={pred}");
        for dop in [1, 2, 4] {
            let part = pairs(&db, &join_sql(pred, dop, "method=partition"));
            assert_no_duplicates(&part, &format!("pred={pred} dop={dop}"));
            assert_eq!(part, oracle, "partition vs oracle, pred={pred} dop={dop}");
        }
    }
}

#[test]
fn partition_handles_hotspot_skew() {
    // A dense cluster overflows single tiles; occupancy-based task
    // splitting must not double-emit across the split ranges.
    let a = hotspot::generate(300, &US_EXTENT, 0.7, 42);
    let b = hotspot::generate(300, &US_EXTENT, 0.7, 43);
    let db = session(&a, &b, false);
    let oracle = brute(&a, &b, "intersect");
    for (dop, split) in [(1, ""), (4, "split=4"), (4, "split=1000000")] {
        let opts = if split.is_empty() {
            "method=partition".into()
        } else {
            format!("method=partition,{split}")
        };
        let got = pairs(&db, &join_sql("intersect", dop, &opts));
        assert_no_duplicates(&got, &format!("dop={dop} {split}"));
        assert_eq!(got, oracle, "dop={dop} {split}");
    }
}

#[test]
fn partition_needs_no_index_and_rtree_does() {
    let a = counties::generate(50, &US_EXTENT, 920);
    let b = counties::generate(50, &US_EXTENT, 921);
    let db = session(&a, &b, false);
    let oracle = brute(&a, &b, "intersect");

    // The paper's tree join cannot run without indexes…
    assert!(db.execute(&join_sql("intersect", 2, "method=rtree")).is_err());
    // …the grid partition join can, and auto routes around the gap.
    assert_eq!(pairs(&db, &join_sql("intersect", 2, "method=partition")), oracle);
    assert_eq!(pairs(&db, &join_sql("intersect", 2, "method=auto")), oracle);
}

#[test]
fn auto_matches_fixed_methods_when_indexed() {
    let a = counties::generate(60, &US_EXTENT, 930);
    let b = counties::generate(60, &US_EXTENT, 931);
    let db = session(&a, &b, true);
    let oracle = brute(&a, &b, "distance=2.5");
    for dop in [1, 4] {
        assert_eq!(pairs(&db, &join_sql("distance=2.5", dop, "method=auto")), oracle, "dop={dop}");
    }
}

#[test]
fn kernel_prepare_and_sweep_threshold_combos_preserve_results() {
    let a = counties::generate(60, &US_EXTENT, 940);
    let b = counties::generate(60, &US_EXTENT, 941);
    let db = session(&a, &b, true);
    for pred in ["intersect", "mask=touch+overlap", "distance=2.5"] {
        let oracle = brute(&a, &b, pred);
        for method in ["rtree", "partition"] {
            for opts in [
                "kernel=scalar",
                "kernel=batch,prepare=on",
                "kernel=scalar,prepare=off",
                "kernel=batch,sweep_threshold=0",
                "kernel=batch,sweep_threshold=max",
                "kernel=batch,sweep_threshold=64,prepare=on",
            ] {
                let got = pairs(&db, &join_sql(pred, 2, &format!("method={method},{opts}")));
                assert_no_duplicates(&got, &format!("{method} {opts} {pred}"));
                assert_eq!(got, oracle, "pred={pred} method={method} opts={opts}");
            }
        }
    }
}

#[test]
fn streaming_options_preserve_partition_results() {
    // Tiny candidate arrays, caches, and fetch orders exercise the
    // carry/secondary-filter streaming path of the partition join.
    let a = counties::generate(55, &US_EXTENT, 950);
    let b = counties::generate(55, &US_EXTENT, 951);
    let db = session(&a, &b, false);
    let oracle = brute(&a, &b, "intersect");
    for opts in [
        "method=partition,candidates=3",
        "method=partition,cache=0",
        "method=partition,fetch_order=arrival,candidates=7,cache=2",
        "method=partition,fetch_order=sorted,candidates=1",
    ] {
        assert_eq!(pairs(&db, &join_sql("intersect", 3, opts)), oracle, "opts={opts}");
    }
}

#[test]
fn partition_rejects_explicit_descent_level() {
    let a = counties::generate(20, &US_EXTENT, 960);
    let db = session(&a, &a, true);
    let err = db
        .execute(
            "SELECT rid1, rid2 FROM TABLE( \
             SPATIAL_JOIN('ta','geom','tb','geom','intersect', 2, 1, 'method=partition'))",
        )
        .unwrap_err();
    assert!(format!("{err}").contains("method=rtree"), "unexpected error: {err}");
}

#[test]
fn bad_method_and_threshold_are_plan_errors() {
    let a = counties::generate(10, &US_EXTENT, 970);
    let db = session(&a, &a, false);
    assert!(db.execute(&join_sql("intersect", 1, "method=bogus")).is_err());
    assert!(db.execute(&join_sql("intersect", 1, "sweep_threshold=many")).is_err());
}

fn arb_rect_poly() -> impl Strategy<Value = Geometry> {
    ((0.0f64..200.0), (0.0f64..200.0), (0.5f64..30.0), (0.5f64..30.0)).prop_map(|(x, y, w, h)| {
        Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary rectangle sets, predicates, DOPs and kernels, the
    /// partition join equals the nested-loop oracle with zero
    /// duplicates — the exactly-once tile-class argument, empirically.
    #[test]
    fn partition_join_equals_brute_force(
        a in proptest::collection::vec(arb_rect_poly(), 1..50),
        b in proptest::collection::vec(arb_rect_poly(), 1..50),
        pred in prop_oneof![
            Just("intersect"),
            Just("distance=2.5"),
            Just("FILTER"),
        ],
        dop in prop_oneof![Just(1usize), Just(2), Just(4)],
        kernel in prop_oneof![Just("scalar"), Just("batch")],
    ) {
        let db = session(&a, &b, false);
        let oracle = brute(&a, &b, pred);
        let got = pairs(&db, &join_sql(pred, dop, &format!("method=partition,kernel={kernel}")));
        prop_assert!(got.windows(2).all(|w| w[0] != w[1]), "duplicate pair emitted");
        prop_assert_eq!(got, oracle);
    }
}
