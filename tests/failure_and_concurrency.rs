//! Failure injection and concurrency: a slave failure surfaces as a
//! SQL error without hanging the session, and concurrent queries /
//! DML against one session stay consistent.

use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::db::TfInstance;
use sdo_dbms::Database;
use sdo_storage::Value;
use sdo_tablefunc::parallel::ParallelTableFunction;
use sdo_tablefunc::table_function::BufferedFn;
use sdo_tablefunc::{Row, TableFunction, TfError};
use std::sync::Arc;

fn session_with_counties(n: usize, seed: u64) -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db.execute("CREATE TABLE t (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in counties::generate(n, &US_EXTENT, seed).into_iter().enumerate() {
        db.insert_row("t", vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
    db
}

struct PanickingFn;

impl TableFunction for PanickingFn {
    fn start(&mut self) -> Result<(), TfError> {
        Ok(())
    }
    fn fetch(&mut self, _: usize) -> Result<Vec<Row>, TfError> {
        panic!("injected slave failure")
    }
    fn close(&mut self) {}
}

#[test]
fn slave_panic_surfaces_as_sql_error() {
    let db = Database::new();
    db.register_table_function("FLAKY_PARALLEL", |_db, _args| {
        let good: Box<dyn TableFunction> =
            Box::new(BufferedFn::new(|| Ok((0..100).map(|i| vec![Value::Integer(i)]).collect())));
        let bad: Box<dyn TableFunction> = Box::new(PanickingFn);
        Ok(TfInstance {
            func: Box::new(ParallelTableFunction::new(vec![good, bad])),
            columns: vec!["N".into()],
        })
    });
    let err = db.execute("SELECT COUNT(*) FROM TABLE(FLAKY_PARALLEL())");
    match err {
        Err(sdo_dbms::DbError::TableFunction(TfError::SlavePanic(_))) => {}
        other => panic!("expected slave panic to surface, got {other:?}"),
    }
    // the session stays usable afterwards
    db.execute("CREATE TABLE ok (id NUMBER)").unwrap();
    db.execute("INSERT INTO ok VALUES (1)").unwrap();
    assert_eq!(db.execute("SELECT COUNT(*) FROM ok").unwrap().count(), Some(1));
}

#[test]
fn failing_table_function_error_propagates() {
    let db = Database::new();
    db.register_table_function("FAILS_MIDWAY", |_db, _args| {
        struct F(usize);
        impl TableFunction for F {
            fn start(&mut self) -> Result<(), TfError> {
                Ok(())
            }
            fn fetch(&mut self, _: usize) -> Result<Vec<Row>, TfError> {
                self.0 += 1;
                if self.0 > 3 {
                    Err(TfError::Execution("disk on fire".into()))
                } else {
                    Ok(vec![vec![Value::Integer(self.0 as i64)]])
                }
            }
            fn close(&mut self) {}
        }
        Ok(TfInstance { func: Box::new(F(0)), columns: vec!["N".into()] })
    });
    let err = db.execute("SELECT * FROM TABLE(FAILS_MIDWAY())").unwrap_err();
    assert!(err.to_string().contains("disk on fire"), "{err}");
}

#[test]
fn concurrent_readers_and_writers() {
    let db = Arc::new(session_with_counties(120, 31));
    db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let window = "SDO_GEOMETRY('POLYGON ((-110 28, -90 28, -90 45, -110 45, -110 28))')";
    let baseline = db
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {window}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count()
        .unwrap();
    assert!(baseline > 0);

    // 4 reader threads hammer window queries and joins while a writer
    // thread inserts and deletes rows far outside the window.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for _ in 0..20 {
                    let c = db
                        .execute(&format!(
                            "SELECT COUNT(*) FROM t WHERE \
                             SDO_RELATE(geom, {window}, 'ANYINTERACT') = 'TRUE'"
                        ))
                        .unwrap()
                        .count()
                        .unwrap();
                    assert_eq!(c, baseline, "reader saw torn state");
                    let j = db
                        .execute(
                            "SELECT COUNT(*) FROM TABLE( \
                             SPATIAL_JOIN('t','geom','t','geom','intersect', 2))",
                        )
                        .unwrap()
                        .count()
                        .unwrap();
                    assert!(j >= 120, "self join lost identity pairs: {j}");
                }
            });
        }
        let db_w = Arc::clone(&db);
        s.spawn(move || {
            for i in 0..20 {
                // Far outside the query window and the US extent.
                db_w.execute(&format!(
                    "INSERT INTO t VALUES ({}, \
                     SDO_GEOMETRY('POLYGON ((300 300, 301 300, 301 301, 300 301, 300 300))'))",
                    10_000 + i
                ))
                .unwrap();
                db_w.execute(&format!("DELETE FROM t WHERE id = {}", 10_000 + i)).unwrap();
            }
        });
    });

    // steady state: identical to the baseline
    let after = db
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {window}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(after, baseline);
    assert_eq!(db.table("t").unwrap().read().len(), 120);
}

// -- WAL fault injection ----------------------------------------------------

fn crash_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("sdo-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Kill the log mid-commit: the transaction whose commit record is
/// torn off must vanish entirely on recovery, and heap and spatial
/// index must agree on what survived.
#[test]
fn wal_torn_mid_commit_recovers_all_or_nothing() {
    let dir = crash_dir("torn-commit");
    {
        let db = Database::open(&dir).unwrap();
        sdo_core::register_spatial(&db);
        db.execute("CREATE TABLE t (id NUMBER, geom SDO_GEOMETRY)").unwrap();
        db.execute(
            "CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX \
             PARAMETERS ('tree_fanout=8')",
        )
        .unwrap();
        for (i, g) in counties::generate(12, &US_EXTENT, 5).into_iter().enumerate() {
            db.insert_row("t", vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
        }
        // The victim: a multi-row transaction committed last.
        db.execute("BEGIN").unwrap();
        db.execute(
            "INSERT INTO t VALUES (100, \
             SDO_GEOMETRY('POLYGON ((-100 30, -99 30, -99 31, -100 31, -100 30))'))",
        )
        .unwrap();
        db.execute(
            "INSERT INTO t VALUES (100, \
             SDO_GEOMETRY('POLYGON ((-100 30, -99 30, -99 31, -100 31, -100 30))'))",
        )
        .unwrap();
        db.execute("COMMIT").unwrap();
    }

    // Tear the final frame (the victim's commit record): cut its last
    // byte so the length/CRC check rejects it as a torn tail.
    let wal_path = dir.join(sdo_dbms::db::WAL_FILE);
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 1]).unwrap();

    let db = Database::open(&dir).unwrap();
    sdo_core::register_spatial(&db);
    db.recover_indexes().unwrap();
    let report = db.last_recovery().unwrap();
    assert!(report.discarded_txns >= 1, "victim transaction must be discarded");

    // All-or-nothing: neither of the victim's two rows survives.
    assert_eq!(db.execute("SELECT COUNT(*) FROM t WHERE id = 100").unwrap().count(), Some(0));
    assert_eq!(db.execute("SELECT COUNT(*) FROM t").unwrap().count(), Some(12));
    // Heap and index agree: the index finds nothing at the victim's
    // location, and exactly the surviving rows elsewhere.
    let probe = "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, \
                 SDO_GEOMETRY('POLYGON ((-101 29, -98 29, -98 32, -101 32, -101 29))'), \
                 'ANYINTERACT') = 'TRUE'";
    let full = "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, \
                SDO_GEOMETRY('POLYGON ((-130 20, -60 20, -60 55, -130 55, -130 20))'), \
                'ANYINTERACT') = 'TRUE'";
    let at_victim = db.execute(probe).unwrap().count().unwrap();
    let everywhere = db.execute(full).unwrap().count().unwrap();
    // The victim polygon sat alone at (-100,30)..(-99,31); counties may
    // overlap the probe window, so compare against a fresh rebuild.
    let rebuilt = {
        let db2 = Database::new();
        sdo_core::register_spatial(&db2);
        db2.execute("CREATE TABLE t (id NUMBER, geom SDO_GEOMETRY)").unwrap();
        for (i, g) in counties::generate(12, &US_EXTENT, 5).into_iter().enumerate() {
            db2.insert_row("t", vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
        }
        db2.execute(
            "CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX \
             PARAMETERS ('tree_fanout=8')",
        )
        .unwrap();
        (db2.execute(probe).unwrap().count().unwrap(), db2.execute(full).unwrap().count().unwrap())
    };
    assert_eq!((at_victim, everywhere), rebuilt, "recovered index must equal a fresh build");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted (bit-flipped) record ends the durable prefix at the
/// corruption point — recovery keeps everything before it and never
/// errors out.
#[test]
fn wal_corrupt_record_ends_the_replayable_prefix() {
    let dir = crash_dir("bitflip");
    {
        let db = Database::open(&dir).unwrap();
        sdo_core::register_spatial(&db);
        db.execute("CREATE TABLE t (id NUMBER)").unwrap();
        for i in 0..5 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
    }
    let wal_path = dir.join(sdo_dbms::db::WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    // Flip one payload byte three quarters of the way in.
    let victim = bytes.len() * 3 / 4;
    bytes[victim] ^= 0xFF;
    std::fs::write(&wal_path, &bytes).unwrap();

    let db = Database::open(&dir).unwrap();
    sdo_core::register_spatial(&db);
    db.recover_indexes().unwrap();
    let n = db.execute("SELECT COUNT(*) FROM t").unwrap().count().unwrap();
    assert!(n < 5, "the corrupted transaction and everything after must be gone");
    // Survivors form a prefix 0..n of the insert order.
    for i in 0..5 {
        let want = if (i as i64) < n { 1 } else { 0 };
        let c = db.execute(&format!("SELECT COUNT(*) FROM t WHERE id = {i}")).unwrap().count();
        assert_eq!(c, Some(want), "prefix property violated at id {i}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
