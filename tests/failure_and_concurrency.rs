//! Failure injection and concurrency: a slave failure surfaces as a
//! SQL error without hanging the session, and concurrent queries /
//! DML against one session stay consistent.

use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::db::TfInstance;
use sdo_dbms::Database;
use sdo_storage::Value;
use sdo_tablefunc::parallel::ParallelTableFunction;
use sdo_tablefunc::table_function::BufferedFn;
use sdo_tablefunc::{Row, TableFunction, TfError};
use std::sync::Arc;

fn session_with_counties(n: usize, seed: u64) -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db.execute("CREATE TABLE t (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in counties::generate(n, &US_EXTENT, seed).into_iter().enumerate() {
        db.insert_row("t", vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
    db
}

struct PanickingFn;

impl TableFunction for PanickingFn {
    fn start(&mut self) -> Result<(), TfError> {
        Ok(())
    }
    fn fetch(&mut self, _: usize) -> Result<Vec<Row>, TfError> {
        panic!("injected slave failure")
    }
    fn close(&mut self) {}
}

#[test]
fn slave_panic_surfaces_as_sql_error() {
    let db = Database::new();
    db.register_table_function("FLAKY_PARALLEL", |_db, _args| {
        let good: Box<dyn TableFunction> =
            Box::new(BufferedFn::new(|| Ok((0..100).map(|i| vec![Value::Integer(i)]).collect())));
        let bad: Box<dyn TableFunction> = Box::new(PanickingFn);
        Ok(TfInstance {
            func: Box::new(ParallelTableFunction::new(vec![good, bad])),
            columns: vec!["N".into()],
        })
    });
    let err = db.execute("SELECT COUNT(*) FROM TABLE(FLAKY_PARALLEL())");
    match err {
        Err(sdo_dbms::DbError::TableFunction(TfError::SlavePanic(_))) => {}
        other => panic!("expected slave panic to surface, got {other:?}"),
    }
    // the session stays usable afterwards
    db.execute("CREATE TABLE ok (id NUMBER)").unwrap();
    db.execute("INSERT INTO ok VALUES (1)").unwrap();
    assert_eq!(db.execute("SELECT COUNT(*) FROM ok").unwrap().count(), Some(1));
}

#[test]
fn failing_table_function_error_propagates() {
    let db = Database::new();
    db.register_table_function("FAILS_MIDWAY", |_db, _args| {
        struct F(usize);
        impl TableFunction for F {
            fn start(&mut self) -> Result<(), TfError> {
                Ok(())
            }
            fn fetch(&mut self, _: usize) -> Result<Vec<Row>, TfError> {
                self.0 += 1;
                if self.0 > 3 {
                    Err(TfError::Execution("disk on fire".into()))
                } else {
                    Ok(vec![vec![Value::Integer(self.0 as i64)]])
                }
            }
            fn close(&mut self) {}
        }
        Ok(TfInstance { func: Box::new(F(0)), columns: vec!["N".into()] })
    });
    let err = db.execute("SELECT * FROM TABLE(FAILS_MIDWAY())").unwrap_err();
    assert!(err.to_string().contains("disk on fire"), "{err}");
}

#[test]
fn concurrent_readers_and_writers() {
    let db = Arc::new(session_with_counties(120, 31));
    db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let window = "SDO_GEOMETRY('POLYGON ((-110 28, -90 28, -90 45, -110 45, -110 28))')";
    let baseline = db
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {window}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count()
        .unwrap();
    assert!(baseline > 0);

    // 4 reader threads hammer window queries and joins while a writer
    // thread inserts and deletes rows far outside the window.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for _ in 0..20 {
                    let c = db
                        .execute(&format!(
                            "SELECT COUNT(*) FROM t WHERE \
                             SDO_RELATE(geom, {window}, 'ANYINTERACT') = 'TRUE'"
                        ))
                        .unwrap()
                        .count()
                        .unwrap();
                    assert_eq!(c, baseline, "reader saw torn state");
                    let j = db
                        .execute(
                            "SELECT COUNT(*) FROM TABLE( \
                             SPATIAL_JOIN('t','geom','t','geom','intersect', 2))",
                        )
                        .unwrap()
                        .count()
                        .unwrap();
                    assert!(j >= 120, "self join lost identity pairs: {j}");
                }
            });
        }
        let db_w = Arc::clone(&db);
        s.spawn(move || {
            for i in 0..20 {
                // Far outside the query window and the US extent.
                db_w.execute(&format!(
                    "INSERT INTO t VALUES ({}, \
                     SDO_GEOMETRY('POLYGON ((300 300, 301 300, 301 301, 300 301, 300 300))'))",
                    10_000 + i
                ))
                .unwrap();
                db_w.execute(&format!("DELETE FROM t WHERE id = {}", 10_000 + i)).unwrap();
            }
        });
    });

    // steady state: identical to the baseline
    let after = db
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {window}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(after, baseline);
    assert_eq!(db.table("t").unwrap().read().len(), 120);
}
