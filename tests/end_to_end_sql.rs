//! End-to-end SQL workflow: the paper's statements, verbatim shapes,
//! against synthetic county data.

use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;

fn load_counties(db: &Database, table: &str, n: usize, seed: u64) {
    db.execute(&format!("CREATE TABLE {table} (id NUMBER, geom SDO_GEOMETRY)")).unwrap();
    for (i, g) in counties::generate(n, &US_EXTENT, seed).into_iter().enumerate() {
        db.insert_row(table, vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
}

fn session() -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db
}

#[test]
fn paper_section4_join_queries() {
    let db = session();
    load_counties(&db, "city_table", 60, 1);
    load_counties(&db, "river_table", 60, 2);
    db.execute(
        "CREATE INDEX city_sidx ON city_table(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('tree_fanout=8')",
    )
    .unwrap();
    db.execute(
        "CREATE INDEX river_sidx ON river_table(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('tree_fanout=8')",
    )
    .unwrap();

    // Nested-loop form (paper §4 first listing).
    let nl = db
        .execute(
            "SELECT COUNT(*) FROM city_table a, river_table b \
             WHERE SDO_RELATE(a.geom, b.geom, 'intersect') = 'TRUE'",
        )
        .unwrap()
        .count()
        .unwrap();

    // Table-function form (paper §4 second listing).
    let tf = db
        .execute(
            "SELECT COUNT(*) FROM city_table a, river_table b \
             WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
              'city_table', 'geom', 'river_table', 'geom', 'intersect')))",
        )
        .unwrap()
        .count()
        .unwrap();

    assert_eq!(nl, tf, "nested-loop and table-function joins must agree");
    assert!(nl > 60, "county grids overlap across seeds: expected many pairs, got {nl}");

    // Parallel table-function form with an explicit DOP.
    let par = db
        .execute(
            "SELECT COUNT(*) FROM city_table a, river_table b \
             WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
              'city_table', 'geom', 'river_table', 'geom', 'intersect', 2)))",
        )
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(nl, par);
}

#[test]
fn cursor_driven_parallel_join_matches() {
    let db = session();
    load_counties(&db, "t1", 50, 3);
    load_counties(&db, "t2", 50, 4);
    db.execute("CREATE INDEX t1_sidx ON t1(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    db.execute("CREATE INDEX t2_sidx ON t2(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();

    let serial = db
        .execute("SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('t1','geom','t2','geom','intersect'))")
        .unwrap()
        .count()
        .unwrap();

    // The paper's cursor-driven decomposition: subtree pairs flow in
    // through CURSOR(SELECT ... FROM TABLE(SUBTREE_PAIRS(...))).
    let cursor_driven = db
        .execute(
            "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
               CURSOR(SELECT lnode, rnode FROM TABLE( \
                 SUBTREE_PAIRS('t1_sidx', 't2_sidx', 1, 'intersect'))), \
               't1','geom','t2','geom','intersect', 2))",
        )
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(serial, cursor_driven);
}

#[test]
fn subtree_root_function_exposes_index_structure() {
    let db = session();
    load_counties(&db, "t", 120, 5);
    db.execute(
        "CREATE INDEX t_sidx ON t(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=8')",
    )
    .unwrap();
    let roots0 = db.execute("SELECT * FROM TABLE(SUBTREE_ROOT('t_sidx', 0))").unwrap();
    assert_eq!(roots0.rows.len(), 1, "level 0 = the root itself");
    let roots1 = db.execute("SELECT * FROM TABLE(SUBTREE_ROOT('t_sidx', 1))").unwrap();
    assert!(roots1.rows.len() > 1, "descending one level must expose children");
    assert_eq!(roots0.columns[0], "NODE");
}

#[test]
fn window_queries_and_within_distance() {
    let db = session();
    load_counties(&db, "t", 100, 6);
    // Functional truth before indexing.
    let window = "SDO_GEOMETRY('POLYGON ((-100 30, -90 30, -90 40, -100 40, -100 30))')";
    let functional = db
        .execute(&format!(
            "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {window}, 'ANYINTERACT') = 'TRUE'"
        ))
        .unwrap()
        .count()
        .unwrap();
    assert!(functional > 0);

    for params in ["tree_fanout=8", "sdo_level=7"] {
        let db = session();
        load_counties(&db, "t", 100, 6);
        db.execute(&format!(
            "CREATE INDEX t_sidx ON t(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('{params}')"
        ))
        .unwrap();
        let indexed = db
            .execute(&format!(
                "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, {window}, 'ANYINTERACT') = 'TRUE'"
            ))
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(indexed, functional, "params={params}");

        let d1 = db
            .execute(&format!(
                "SELECT COUNT(*) FROM t WHERE SDO_WITHIN_DISTANCE(geom, {window}, 3) = 'TRUE'"
            ))
            .unwrap()
            .count()
            .unwrap();
        assert!(d1 >= indexed, "distance query must be a superset");
    }
}

#[test]
fn tessellate_table_function_runs_from_sql() {
    let db = session();
    load_counties(&db, "t", 30, 7);
    let tiles = db.execute("SELECT * FROM TABLE(TESSELLATE('t', 'geom', 6))").unwrap();
    assert_eq!(tiles.columns, vec!["TILE_CODE", "RID", "INTERIOR"]);
    assert!(tiles.rows.len() >= 30, "every county produces at least one tile");
    // every rowid appears
    let mut rids: Vec<u64> = tiles.rows.iter().map(|r| r[1].as_rowid().unwrap().as_u64()).collect();
    rids.sort_unstable();
    rids.dedup();
    assert_eq!(rids.len(), 30);
}

#[test]
fn quadtree_spatial_join_from_sql() {
    let db = session();
    load_counties(&db, "t1", 40, 8);
    load_counties(&db, "t2", 40, 9);
    db.execute(
        "CREATE INDEX t1_q ON t1(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('sdo_level=7')",
    )
    .unwrap();
    db.execute(
        "CREATE INDEX t2_q ON t2(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('sdo_level=7')",
    )
    .unwrap();
    let qt = db
        .execute("SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('t1','geom','t2','geom','intersect'))")
        .unwrap()
        .count()
        .unwrap();
    // functional truth
    let nl = db
        .execute(
            "SELECT COUNT(*) FROM t1 a, t2 b \
             WHERE SDO_RELATE(a.geom, b.geom, 'intersect') = 'TRUE'",
        )
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(qt, nl);
}

#[test]
fn mixed_index_kinds_rejected_for_join() {
    let db = session();
    load_counties(&db, "t1", 20, 10);
    load_counties(&db, "t2", 20, 11);
    db.execute("CREATE INDEX t1_r ON t1(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    db.execute(
        "CREATE INDEX t2_q ON t2(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('sdo_level=6')",
    )
    .unwrap();
    let err =
        db.execute("SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('t1','geom','t2','geom','intersect'))");
    assert!(err.is_err(), "joining an R-tree with a quadtree must fail cleanly");
}

#[test]
fn join_without_index_is_an_error() {
    let db = session();
    load_counties(&db, "t1", 10, 12);
    load_counties(&db, "t2", 10, 13);
    assert!(db
        .execute("SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('t1','geom','t2','geom','intersect'))")
        .is_err());
}

#[test]
fn sdo_nn_nearest_neighbours() {
    let db = session();
    load_counties(&db, "t", 100, 14);
    // functional truth: 5 counties nearest to a probe point
    let probe = "SDO_POINT(-100, 35)";
    let truth = db
        .execute(&format!("SELECT id FROM t ORDER BY SDO_DISTANCE(geom, {probe}) LIMIT 5"))
        .unwrap();
    let truth_ids: std::collections::HashSet<i64> =
        truth.rows.iter().map(|r| r[0].as_integer().unwrap()).collect();

    // without an index: functional SDO_NN path
    let r =
        db.execute(&format!("SELECT id FROM t WHERE SDO_NN(geom, {probe}, 5) = 'TRUE'")).unwrap();
    assert_eq!(r.rows.len(), 5);
    for row in &r.rows {
        assert!(truth_ids.contains(&row[0].as_integer().unwrap()));
    }

    // with an R-tree index: filter-refine SDO_NN
    db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let r = db
        .execute(&format!("SELECT id FROM t WHERE SDO_NN(geom, {probe}, 'sdo_num_res=5') = 'TRUE'"))
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    for row in &r.rows {
        assert!(truth_ids.contains(&row[0].as_integer().unwrap()));
    }

    // quadtree indexes reject SDO_NN cleanly
    let db2 = session();
    load_counties(&db2, "t", 30, 15);
    db2.execute(
        "CREATE INDEX t_q ON t(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('sdo_level=6')",
    )
    .unwrap();
    assert!(db2
        .execute(&format!("SELECT id FROM t WHERE SDO_NN(geom, {probe}, 3) = 'TRUE'"))
        .is_err());
}

#[test]
fn sdo_nn_more_than_table_size() {
    let db = session();
    load_counties(&db, "t", 10, 16);
    db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let r = db
        .execute("SELECT COUNT(*) FROM t WHERE SDO_NN(geom, SDO_POINT(0, 0), 50) = 'TRUE'")
        .unwrap();
    assert_eq!(r.count(), Some(10));
}

#[test]
fn explain_reports_chosen_strategies() {
    let db = session();
    load_counties(&db, "a", 20, 21);
    load_counties(&db, "b", 20, 22);
    db.execute("CREATE INDEX a_x ON a(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    db.execute("CREATE INDEX b_x ON b(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();

    let plan = |sql: &str| -> String {
        db.execute(sql)
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };

    // nested loop with an indexed inner
    let p = plan(
        "EXPLAIN SELECT COUNT(*) FROM a x, b y \
         WHERE SDO_RELATE(x.geom, y.geom, 'intersect') = 'TRUE'",
    );
    assert!(p.contains("NESTED LOOP JOIN"), "{p}");
    assert!(p.contains("INDEX PROBE"), "{p}");
    assert!(p.contains("AGGREGATE COUNT(*)"), "{p}");

    // table-function join
    let p = plan(
        "EXPLAIN SELECT COUNT(*) FROM a x, b y WHERE (x.rowid, y.rowid) IN \
         (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('a','geom','b','geom','intersect')))",
    );
    assert!(p.contains("ROWID-PAIR SEMIJOIN"), "{p}");
    assert!(p.contains("SPATIAL_JOIN"), "{p}");

    // pipelined count fast path
    let p =
        plan("EXPLAIN SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('a','geom','b','geom','intersect'))");
    assert!(p.contains("PIPELINED COUNT"), "{p}");

    // window query through the domain index, plus sort and limit
    let p = plan(
        "EXPLAIN SELECT id FROM a WHERE \
         SDO_RELATE(geom, SDO_GEOMETRY('POINT (-100 35)'), 'ANYINTERACT') = 'TRUE' \
         ORDER BY id DESC LIMIT 3",
    );
    assert!(p.contains("domain index"), "{p}");
    assert!(p.contains("SORT"), "{p}");
    assert!(p.contains("LIMIT 3"), "{p}");

    // functional evaluation when no index exists
    let db2 = session();
    load_counties(&db2, "c", 10, 23);
    let p2 = db2
        .execute(
            "EXPLAIN SELECT COUNT(*) FROM c WHERE \
             SDO_RELATE(geom, SDO_GEOMETRY('POINT (0 0)'), 'ANYINTERACT') = 'TRUE'",
        )
        .unwrap();
    let text: String =
        p2.rows.iter().map(|r| r[0].as_text().unwrap().to_string()).collect::<Vec<_>>().join("\n");
    assert!(text.contains("functional evaluation"), "{text}");
}

#[test]
fn sdo_join_alias_matches_spatial_join() {
    let db = session();
    load_counties(&db, "t", 30, 40);
    db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let a = db
        .execute("SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('t','geom','t','geom','intersect'))")
        .unwrap()
        .count();
    let b = db
        .execute("SELECT COUNT(*) FROM TABLE(SDO_JOIN('t','geom','t','geom','intersect'))")
        .unwrap()
        .count();
    assert_eq!(a, b);
}
