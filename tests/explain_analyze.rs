//! `EXPLAIN ANALYZE` integration: the operator profile's row counts
//! must agree with the cardinality of the plain query, including the
//! per-slave breakdown of a parallel table function.

use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;

fn load_counties(db: &Database, table: &str, n: usize, seed: u64) {
    db.execute(&format!("CREATE TABLE {table} (id NUMBER, geom SDO_GEOMETRY)")).unwrap();
    for (i, g) in counties::generate(n, &US_EXTENT, seed).into_iter().enumerate() {
        db.insert_row(table, vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
}

fn session_with_tables() -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    load_counties(&db, "city_table", 60, 1);
    load_counties(&db, "river_table", 60, 2);
    for (idx, table) in [("city_sidx", "city_table"), ("river_sidx", "river_table")] {
        db.execute(&format!(
            "CREATE INDEX {idx} ON {table}(geom) INDEXTYPE IS SPATIAL_INDEX \
             PARAMETERS ('tree_fanout=8')"
        ))
        .unwrap();
    }
    // The parallel-profile tests below shrink the process-global morsel
    // size; pin everything else to serial so profile shapes stay
    // independent of which test touched the knob first.
    db.execute("ALTER SESSION SET parallel_dop = 1").unwrap();
    db
}

#[test]
fn pipelined_count_profile_matches_cardinality_with_per_slave_rows() {
    let db = session_with_tables();
    let sql = "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
               'city_table', 'geom', 'river_table', 'geom', 'intersect', 2))";

    // Plain execution: result plus an implicitly recorded profile.
    let n = db.execute(sql).unwrap().count().unwrap();
    assert!(n > 0, "county grids overlap: expected a non-empty join");
    let plain = db.last_profile().expect("plain statements record a profile");
    assert_eq!(plain.root.name, "SELECT");

    // EXPLAIN ANALYZE: renders the profile as PLAN rows...
    let res = db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    assert_eq!(res.columns, vec!["PLAN".to_string()]);
    assert!(res.rows.len() > 1, "expected a rendered profile tree");

    // ...and records the same tree on the session.
    let profile = db.last_profile().unwrap();
    let op = profile
        .root
        .find("PIPELINED COUNT")
        .expect("COUNT(*) over TABLE() takes the pipelined fast path");
    assert_eq!(op.rows, n as u64, "operator rows must equal the query cardinality");
    assert!(op.batches > 0);
    assert!(op.attrs.iter().any(|(k, v)| k == "dop" && v == "2"));

    // Per-slave rows of the parallel table function sum to the total.
    let slaves: Vec<_> = op.children.iter().filter(|c| c.name.starts_with("slave")).collect();
    assert_eq!(slaves.len(), 2, "dop=2 must report two slave operators");
    assert_eq!(slaves.iter().map(|s| s.rows).sum::<u64>(), n as u64);
    for s in &slaves {
        assert!(s.find("exact filter").is_some(), "join phases nest under each slave");
    }
}

#[test]
fn semijoin_profile_matches_two_table_join_cardinality() {
    let db = session_with_tables();
    let sql = "SELECT a.id, b.id FROM city_table a, river_table b \
               WHERE (a.rowid, b.rowid) IN \
               (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
                'city_table', 'geom', 'river_table', 'geom', 'intersect')))";

    let res = db.execute(sql).unwrap();
    let n = res.rows.len() as u64;
    assert!(n > 0);

    let profile = db.last_profile().unwrap();
    assert_eq!(profile.root.rows, n, "root rows = statement result rows");
    // The streaming semijoin fetches paired base rows by rowid as pairs
    // arrive — it must NOT full-scan the base tables.
    assert!(profile.root.find("TABLE SCAN CITY_TABLE").is_none());
    assert!(profile.root.find("TABLE SCAN RIVER_TABLE").is_none());

    let semi = profile.root.find("ROWID-PAIR SEMIJOIN").unwrap();
    assert_eq!(semi.rows, n, "semijoin output rows = result rows");
    assert!(semi.batches > 0, "the semijoin streams in batches");

    // Pipeline memory is bounded by batches in flight, not the result.
    let peak = profile.root.metric("peak_resident_rows").expect("statement reports peak");
    assert!(peak > 0 && peak <= 4 * 1024, "peak {peak} should be O(batch), result {n}");

    // The pair-producing table function nests under the semijoin and
    // produced exactly the joined pairs.
    let tf = semi.find("TABLE FUNCTION SCAN SPATIAL_JOIN").unwrap();
    assert_eq!(tf.rows, n, "rowid pairs = joined rows (pairs are distinct)");

    // EXPLAIN ANALYZE of the same statement renders every operator.
    let plan = db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    let text: Vec<String> = plan.rows.iter().map(|r| r[0].as_text().unwrap().to_string()).collect();
    assert!(text.iter().any(|l| l.contains("ROWID-PAIR SEMIJOIN")));
    assert!(text.iter().any(|l| l.contains("TABLE FUNCTION SCAN SPATIAL_JOIN")));
}

#[test]
fn partition_join_profile_reports_method_tiles_and_cache_accuracy() {
    let db = session_with_tables();
    let sql = "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
               'city_table', 'geom', 'river_table', 'geom', 'intersect', \
               2, -1, 'method=partition'))";
    let n = db.execute(sql).unwrap().count().unwrap();
    assert!(n > 0, "partitioned county join must produce pairs");

    let profile = db.last_profile().unwrap();
    let op = profile.root.find("PIPELINED COUNT").unwrap();
    assert!(
        op.attrs.iter().any(|(k, v)| k == "method_chosen" && v == "partition"),
        "planner verdict rides on the operator: {:?}",
        op.attrs
    );
    let tiles = op.metric("partition_tiles").expect("grid size is recorded");
    assert!(tiles >= 1);
    assert!(op.metric("tile_max_occupancy").expect("occupancy is recorded") >= 1);

    let slaves: Vec<_> = op.children.iter().filter(|c| c.name.starts_with("slave")).collect();
    assert_eq!(slaves.len(), 2, "dop=2 must report two slave operators");
    assert_eq!(slaves.iter().map(|s| s.rows).sum::<u64>(), n as u64);

    // GeomCache accuracy: the secondary filter fetches exactly one
    // geometry per side per surviving MBR candidate, so per slave
    // hits + misses == 2 × the mbr-join phase's candidate rows.
    let mut executed_total = 0;
    for s in &slaves {
        let mbr = s.find("mbr join").expect("partition slaves share the join phase names");
        let hits = s.metric("geom_cache_hits").unwrap_or(0);
        let misses = s.metric("geom_cache_misses").unwrap_or(0);
        assert_eq!(
            hits + misses,
            2 * mbr.rows,
            "cache lookups must track candidates exactly (slave {})",
            s.name
        );
        executed_total += s.metric("tasks_executed").expect("tasks_executed renders even at zero");
    }
    assert!(executed_total > 0, "some tile task must have run");
}

#[test]
fn partition_primary_only_join_touches_no_geometry_cache() {
    let db = session_with_tables();
    db.execute(
        "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
         'city_table', 'geom', 'river_table', 'geom', 'FILTER', \
         2, -1, 'method=partition'))",
    )
    .unwrap();
    let profile = db.last_profile().unwrap();
    let op = profile.root.find("PIPELINED COUNT").unwrap();
    for s in op.children.iter().filter(|c| c.name.starts_with("slave")) {
        assert_eq!(
            s.metric("geom_cache_hits").unwrap_or(0) + s.metric("geom_cache_misses").unwrap_or(0),
            0,
            "a primary-only join emits rowid pairs without fetching geometries"
        );
    }
}

#[test]
fn simd_kernel_metrics_surface_in_explain_analyze() {
    let db = session_with_tables();

    // sweep_threshold=max keeps every node pair under the sweep cutoff,
    // forcing the quantized scan path so its funnel counters move.
    db.execute(
        "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
         'city_table', 'geom', 'river_table', 'geom', 'intersect', \
         2, -1, 'kernel=simd,sweep_threshold=max'))",
    )
    .unwrap();
    let profile = db.last_profile().unwrap();
    let op = profile.root.find("PIPELINED COUNT").unwrap();
    let slaves: Vec<_> = op.children.iter().filter(|c| c.name.starts_with("slave")).collect();
    assert_eq!(slaves.len(), 2, "dop=2 must report two slave operators");
    let isa = sdo_rtree::dispatched().name();
    let mut quantized_hits = 0;
    for s in &slaves {
        assert!(
            s.attrs.iter().any(|(k, v)| k == "kernel_isa" && v == isa),
            "each slave records the dispatched ISA ({isa}): {:?}",
            s.attrs
        );
        // set_metric: the counters must render even when zero.
        quantized_hits += s.metric("quantized_hits").expect("quantized_hits renders");
        s.metric("exact_rejects").expect("exact_rejects renders");
        s.metric("packet_descents").expect("packet_descents renders");
    }
    assert!(quantized_hits > 0, "forced quantized scans must record hits");

    // A scalar-kernel join must NOT carry the SIMD metrics — they are
    // meaningful only when the simd kernel was requested.
    db.execute(
        "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
         'city_table', 'geom', 'river_table', 'geom', 'intersect', \
         2, -1, 'kernel=scalar'))",
    )
    .unwrap();
    let profile = db.last_profile().unwrap();
    let op = profile.root.find("PIPELINED COUNT").unwrap();
    for s in op.children.iter().filter(|c| c.name.starts_with("slave")) {
        assert!(
            !s.attrs.iter().any(|(k, _)| k == "kernel_isa"),
            "scalar kernel must not report an ISA"
        );
        assert_eq!(s.metric("quantized_hits"), None);
    }

    // The partition method records the same ISA and funnel metrics.
    db.execute(
        "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
         'city_table', 'geom', 'river_table', 'geom', 'intersect', \
         2, -1, 'kernel=simd,sweep_threshold=max,method=partition'))",
    )
    .unwrap();
    let profile = db.last_profile().unwrap();
    let op = profile.root.find("PIPELINED COUNT").unwrap();
    let mut part_hits = 0;
    for s in op.children.iter().filter(|c| c.name.starts_with("slave")) {
        assert!(
            s.attrs.iter().any(|(k, v)| k == "kernel_isa" && v == isa),
            "partition slaves record the dispatched ISA: {:?}",
            s.attrs
        );
        part_hits += s.metric("quantized_hits").expect("quantized_hits renders");
        s.metric("exact_rejects").expect("exact_rejects renders");
    }
    assert!(part_hits > 0, "partition tiles under the sweep cutoff take the quantized path");
}

#[test]
fn method_chosen_covers_rtree_and_auto_with_reason() {
    let db = session_with_tables();
    db.execute(
        "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
         'city_table', 'geom', 'river_table', 'geom', 'intersect', 2))",
    )
    .unwrap();
    let profile = db.last_profile().unwrap();
    let op = profile.root.find("PIPELINED COUNT").unwrap();
    assert!(op.attrs.iter().any(|(k, v)| k == "method_chosen" && v == "rtree"));
    assert!(
        !op.attrs.iter().any(|(k, _)| k == "method_reason"),
        "an explicit method needs no justification"
    );

    // auto on small indexed tables picks the tree join and says why.
    db.execute(
        "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
         'city_table', 'geom', 'river_table', 'geom', 'intersect', \
         2, -1, 'method=auto'))",
    )
    .unwrap();
    let profile = db.last_profile().unwrap();
    let op = profile.root.find("PIPELINED COUNT").unwrap();
    assert!(op.attrs.iter().any(|(k, v)| k == "method_chosen" && v == "rtree"));
    assert!(
        op.attrs.iter().any(|(k, v)| k == "method_reason"
            && v.contains("pairs")
            && v.contains("picked rtree")),
        "auto records its numeric reasoning: {:?}",
        op.attrs
    );
}

#[test]
fn nested_loop_profile_reports_strategy_and_counters() {
    let db = session_with_tables();
    let res = db
        .execute(
            "SELECT a.id, b.id FROM city_table a, river_table b \
             WHERE SDO_RELATE(a.geom, b.geom, 'intersect') = 'TRUE'",
        )
        .unwrap();
    let profile = db.last_profile().unwrap();
    let nl = profile
        .root
        .find("NESTED LOOP JOIN")
        .expect("two-table spatial predicate takes the nested-loop strategy");
    assert_eq!(nl.rows, res.rows.len() as u64);
    assert!(
        nl.metric("exact_tests").unwrap_or(0) > 0,
        "work-counter deltas ride on the join operator"
    );
}

/// A morsel-parallel scan renders as an EXCHANGE with per-worker
/// children whose tallies reconcile exactly: worker rows sum to the
/// statement cardinality, morsels_executed sums to the morsel count,
/// and morsels_stolen renders even when a worker stole nothing.
#[test]
fn parallel_scan_exchange_profile_reports_worker_breakdown() {
    sdo_dbms::set_morsel_rows(8);
    let db = session_with_tables();
    db.execute("ALTER SESSION SET parallel_dop = 4").unwrap();
    let sql = "SELECT id FROM city_table WHERE id >= 0";

    // Plain EXPLAIN already shows the exchange and its dop reasoning.
    let plan = db.execute(&format!("EXPLAIN {sql}")).unwrap();
    let text: Vec<String> = plan.rows.iter().map(|r| r[0].as_text().unwrap().to_string()).collect();
    assert!(text.iter().any(|l| l.contains("EXCHANGE")), "plan renders the exchange: {text:?}");
    assert!(text.iter().any(|l| l.contains("dop")), "plan names the chosen dop: {text:?}");

    let n = db.execute(sql).unwrap().rows.len() as u64;
    assert_eq!(n, 60);
    let profile = db.last_profile().unwrap();
    let ex = profile.root.find("EXCHANGE").expect("60 rows at morsel 8 fan out");
    assert!(ex.attrs.iter().any(|(k, v)| k == "dop" && v == "4"), "{:?}", ex.attrs);
    assert!(
        ex.attrs.iter().any(|(k, _)| k == "plan_reason"),
        "the planner's dop reasoning rides on the exchange: {:?}",
        ex.attrs
    );

    let workers: Vec<_> = ex.children.iter().filter(|c| c.name.starts_with("worker")).collect();
    assert_eq!(workers.len(), 4, "dop=4 must report four workers");
    assert_eq!(workers.iter().map(|w| w.rows).sum::<u64>(), n, "worker rows sum to the result");
    let executed: u64 = workers.iter().map(|w| w.metric("morsels_executed").unwrap()).sum();
    assert_eq!(executed, 60u64.div_ceil(8), "every morsel executed exactly once");
    for w in &workers {
        // set_metric: a worker that stole nothing still renders a zero.
        w.metric("morsels_stolen").expect("morsels_stolen renders even at zero");
    }
}

/// The parallel semijoin probe fetches base rows through one private
/// row cache per worker; each worker's cache accounting must balance
/// exactly — both sides are probed unconditionally, so
/// hits + misses == 2 × pairs_probed — and the parallel run returns
/// the serial rows.
#[test]
fn parallel_semijoin_worker_cache_accounting_balances() {
    sdo_dbms::set_morsel_rows(8);
    let db = session_with_tables();
    let sql = "SELECT a.id, b.id FROM city_table a, river_table b \
               WHERE (a.rowid, b.rowid) IN \
               (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
                'city_table', 'geom', 'river_table', 'geom', 'intersect')))";

    let serial = db.execute(sql).unwrap();
    db.execute("ALTER SESSION SET parallel_dop = 4").unwrap();
    let par = db.execute(sql).unwrap();
    assert_eq!(par.rows, serial.rows, "parallel probe is bit-identical to serial");
    let n = par.rows.len() as u64;
    assert!(n > 0);

    let profile = db.last_profile().unwrap();
    let ex = profile.root.find("EXCHANGE").expect("the probe fans out at dop 4");
    assert!(ex.attrs.iter().any(|(k, v)| k == "dop" && v == "4"), "{:?}", ex.attrs);
    let workers: Vec<_> = ex.children.iter().filter(|c| c.name.starts_with("worker")).collect();
    assert_eq!(workers.len(), 4);
    assert_eq!(workers.iter().map(|w| w.rows).sum::<u64>(), n, "worker rows sum to the result");

    let mut probed_total = 0;
    for w in &workers {
        let probed = w.metric("pairs_probed").expect("pairs_probed renders even at zero");
        let hits = w.metric("geom_cache_hits").unwrap();
        let misses = w.metric("geom_cache_misses").unwrap();
        assert_eq!(
            hits + misses,
            2 * probed,
            "cache lookups must track probed pairs exactly ({})",
            w.name
        );
        w.metric("morsels_executed").unwrap();
        w.metric("morsels_stolen").unwrap();
        probed_total += probed;
    }
    // Pairs are distinct (the wave dedups them), and every surviving
    // pair was probed by exactly one worker.
    assert_eq!(probed_total, n, "distinct pairs probed once each");
}

#[test]
fn transaction_and_wal_counters_surface_on_the_statement_profile() {
    let dir = std::env::temp_dir().join(format!("sdo-ea-txn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir).unwrap();
    sdo_core::register_spatial(&db);
    db.execute("CREATE TABLE t (id NUMBER)").unwrap();

    // An autocommit INSERT is one transaction: its profile root carries
    // the commit plus the WAL traffic it caused.
    db.execute("EXPLAIN ANALYZE INSERT INTO t VALUES (1)").unwrap();
    let profile = db.last_profile().unwrap();
    assert_eq!(profile.root.metric("txn_commits"), Some(1), "autocommit = one commit");
    assert!(profile.root.metric("wal_bytes_written").unwrap_or(0) > 0, "DML reaches the WAL");
    assert!(profile.root.metric("wal_fsyncs").unwrap_or(0) >= 1, "fsync durability syncs");

    // COMMIT of an explicit transaction carries the commit; the DML
    // statements inside carried only their WAL bytes.
    db.execute("BEGIN").unwrap();
    db.execute("EXPLAIN ANALYZE INSERT INTO t VALUES (2)").unwrap();
    let mid = db.last_profile().unwrap();
    assert_eq!(mid.root.metric("txn_commits"), None, "no commit mid-transaction");
    assert!(mid.root.metric("wal_bytes_written").unwrap_or(0) > 0);
    db.execute("EXPLAIN ANALYZE COMMIT").unwrap();
    let commit = db.last_profile().unwrap();
    assert_eq!(commit.root.name, "COMMIT");
    assert_eq!(commit.root.metric("txn_commits"), Some(1));

    // ROLLBACK counts as an abort.
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (3)").unwrap();
    db.execute("EXPLAIN ANALYZE ROLLBACK").unwrap();
    let rb = db.last_profile().unwrap();
    assert_eq!(rb.root.metric("txn_aborts"), Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn counters_snapshot_diff_tracks_txn_and_wal_activity() {
    let dir = std::env::temp_dir().join(format!("sdo-ea-cnt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir).unwrap();
    sdo_core::register_spatial(&db);
    db.execute("CREATE TABLE t (id NUMBER)").unwrap();

    let before = db.counters().snapshot();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    db.execute("COMMIT").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (3)").unwrap();
    db.execute("ROLLBACK").unwrap();
    let delta = db.counters().diff(&before);

    assert_eq!(delta.get("txn_commits"), Some(1));
    assert_eq!(delta.get("txn_aborts"), Some(1));
    assert!(delta.get("wal_bytes_written").unwrap_or(0) > 0);
    assert!(delta.get("wal_fsyncs").unwrap_or(0) >= 1, "the COMMIT fsynced");

    let _ = std::fs::remove_dir_all(&dir);
}
