//! Streaming executor regression suite.
//!
//! The streaming batch pipeline must (1) return exactly the rows the
//! legacy materializing executor returns, (2) keep pipeline memory
//! bounded by batches in flight rather than result cardinality, and
//! (3) make `LIMIT` terminate the producing spatial join early.

use proptest::prelude::*;
use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;
use sdo_storage::Value;

fn load_counties(db: &Database, table: &str, n: usize, seed: u64) {
    db.execute(&format!("CREATE TABLE {table} (id NUMBER, geom SDO_GEOMETRY)")).unwrap();
    for (i, g) in counties::generate(n, &US_EXTENT, seed).into_iter().enumerate() {
        db.insert_row(table, vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
}

fn session_with_tables() -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    load_counties(&db, "city_table", 60, 1);
    load_counties(&db, "river_table", 60, 2);
    load_counties(&db, "plain_table", 40, 3); // deliberately unindexed
    for (idx, table) in [("city_sidx", "city_table"), ("river_sidx", "river_table")] {
        db.execute(&format!(
            "CREATE INDEX {idx} ON {table}(geom) INDEXTYPE IS SPATIAL_INDEX \
             PARAMETERS ('tree_fanout=8')"
        ))
        .unwrap();
    }
    db
}

fn row_keys(rows: &[Vec<Value>]) -> Vec<String> {
    rows.iter().map(|r| format!("{r:?}")).collect()
}

/// Every query shape the planner knows: (sql, order_sensitive).
fn corpus() -> Vec<(String, bool)> {
    vec![
        // Nested-loop spatial join via the inner index.
        (
            "SELECT a.id, b.id FROM city_table a, river_table b \
             WHERE SDO_RELATE(a.geom, b.geom, 'intersect') = 'TRUE'"
                .into(),
            false,
        ),
        // Table-function join (rowid-pair semijoin), serial and dop 2.
        (
            "SELECT a.id, b.id FROM city_table a, river_table b \
             WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
              'city_table', 'geom', 'river_table', 'geom', 'intersect')))"
                .into(),
            false,
        ),
        (
            "SELECT a.id, b.id FROM city_table a, river_table b \
             WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
              'city_table', 'geom', 'river_table', 'geom', 'intersect', 2)))"
                .into(),
            false,
        ),
        // Indexed window query.
        (
            "SELECT id FROM city_table WHERE SDO_RELATE(geom, \
             SDO_GEOMETRY('POLYGON ((-100 30, -90 30, -90 40, -100 40, -100 30))'), \
             'intersect') = 'TRUE'"
                .into(),
            false,
        ),
        // Unindexed window query (functional evaluation).
        (
            "SELECT id FROM plain_table WHERE SDO_RELATE(geom, \
             SDO_GEOMETRY('POLYGON ((-100 30, -90 30, -90 40, -100 40, -100 30))'), \
             'intersect') = 'TRUE'"
                .into(),
            false,
        ),
        // Within-distance, indexed and unindexed.
        (
            "SELECT COUNT(*) FROM city_table \
             WHERE SDO_WITHIN_DISTANCE(geom, SDO_POINT(-95, 35), 5) = 'TRUE'"
                .into(),
            false,
        ),
        (
            "SELECT COUNT(*) FROM plain_table \
             WHERE SDO_WITHIN_DISTANCE(geom, SDO_POINT(-95, 35), 5) = 'TRUE'"
                .into(),
            false,
        ),
        // k-NN ranking, indexed and unindexed.
        (
            "SELECT id FROM city_table WHERE SDO_NN(geom, SDO_POINT(-95, 35), 7) = 'TRUE'".into(),
            false,
        ),
        (
            "SELECT id FROM plain_table WHERE SDO_NN(geom, SDO_POINT(-95, 35), 5) = 'TRUE'".into(),
            false,
        ),
        // ORDER BY + LIMIT over an expression key.
        (
            "SELECT id FROM city_table \
             ORDER BY SDO_DISTANCE(geom, SDO_POINT(-95, 35)) LIMIT 5"
                .into(),
            true,
        ),
        ("SELECT id FROM city_table WHERE id < 20 ORDER BY id DESC".into(), true),
        // Residual comparisons, equi-style cross join, star projection.
        ("SELECT id FROM city_table WHERE id > 30".into(), false),
        ("SELECT a.id, b.id FROM city_table a, river_table b WHERE a.id = b.id".into(), false),
        ("SELECT * FROM river_table WHERE id < 5".into(), false),
        // Table-function scan with a residual (defeats the COUNT fast
        // path, so both executors drive the scan + filter pipeline).
        (
            "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
             'city_table', 'geom', 'river_table', 'geom', 'intersect')) WHERE 1 = 1"
                .into(),
            false,
        ),
        // Scalar-function projection.
        ("SELECT SDO_AREA(geom) shape_area FROM city_table WHERE id < 10 ORDER BY id".into(), true),
    ]
}

/// The corpus, answered identically by the streaming pipeline
/// (default) and by `ALTER SESSION SET materialize = on`. Row order is
/// compared exactly for ORDER BY queries and as a multiset otherwise.
#[test]
fn corpus_matches_materialized_executor() {
    let db = session_with_tables();
    let corpus = corpus();
    let mut streaming = Vec::new();
    for (sql, _) in &corpus {
        streaming.push(db.execute(sql).unwrap());
    }
    db.execute("ALTER SESSION SET materialize = on").unwrap();
    for (i, (sql, order_sensitive)) in corpus.iter().enumerate() {
        let mat = db.execute(sql).unwrap();
        let s = &streaming[i];
        assert_eq!(s.columns, mat.columns, "columns diverge for {sql}");
        assert!(!(*order_sensitive && s.rows != mat.rows), "ordered rows diverge for {sql}");
        let (mut sk, mut mk) = (row_keys(&s.rows), row_keys(&mat.rows));
        sk.sort();
        mk.sort();
        assert_eq!(sk, mk, "row multiset diverges for {sql}");
    }
}

/// A large `TABLE(SPATIAL_JOIN)` self-join scan: the streaming executor
/// must keep its resident footprint at batch scale while producing tens
/// of thousands of rows, and a `LIMIT 10` on the same scan must do a
/// small fraction of the R-tree work (the limit closes the pipeline,
/// which stops the join mid-traversal).
#[test]
fn scan_is_batch_bounded_and_limit_stops_the_join() {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    load_counties(&db, "grid", 4000, 7);
    db.execute("CREATE INDEX grid_sidx ON grid(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let scan = "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
                'grid', 'geom', 'grid', 'geom', 'intersect'))";

    let before = db.counters().snapshot();
    let full = db.execute(scan).unwrap();
    let full_work = db.counters().diff(&before).total();
    // A jittered county grid gives each cell roughly 8 touching
    // neighbours plus itself.
    assert!(full.rows.len() > 16_384, "expected a large join, got {}", full.rows.len());

    let profile = db.last_profile().unwrap();
    let peak = profile.root.metric("peak_resident_rows").expect("statement reports peak");
    assert!(
        peak > 0 && peak <= 4 * 1024,
        "peak resident rows {peak} must be O(batch), not O(result = {})",
        full.rows.len()
    );

    let before = db.counters().snapshot();
    let limited = db.execute(&format!("{scan} LIMIT 10")).unwrap();
    let limited_work = db.counters().diff(&before).total();
    assert_eq!(limited.rows.len(), 10);
    assert_eq!(limited.rows, full.rows[..10].to_vec(), "LIMIT must be a prefix of the scan");
    // One batch of pairs plus join start-up costs a few percent of the
    // full traversal; without early close the limited query would do
    // ~100% of it.
    assert!(
        (limited_work as f64) < (full_work as f64) * 0.25,
        "LIMIT 10 did {limited_work} of {full_work} work units; \
         early termination should stop the traversal"
    );
}

/// LIMIT through the rowid-pair semijoin, serial and parallel: early
/// close must propagate through the table function (joining slave
/// threads at dop 2) and still produce correct rows.
#[test]
fn limit_terminates_semijoin_cleanly() {
    let db = session_with_tables();
    for dop in ["", ", 2"] {
        let sql = format!(
            "SELECT a.id, b.id FROM city_table a, river_table b \
             WHERE (a.rowid, b.rowid) IN \
             (SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
              'city_table', 'geom', 'river_table', 'geom', 'intersect'{dop}))) LIMIT 10"
        );
        let res = db.execute(&sql).unwrap();
        assert_eq!(res.rows.len(), 10, "dop '{dop}'");
    }
}

/// The `max_resident_rows` budget replaces the old hard-coded cross
/// product cap: exceeding it fails with the operator's name, raising it
/// lets the query through — in both executors.
#[test]
fn max_resident_rows_budget_is_enforced() {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db.execute("CREATE TABLE a (id NUMBER)").unwrap();
    db.execute("CREATE TABLE b (id NUMBER)").unwrap();
    for i in 0..200 {
        db.insert_row("a", vec![Value::Integer(i)]).unwrap();
        db.insert_row("b", vec![Value::Integer(i)]).unwrap();
    }
    for mode in ["off", "on"] {
        db.execute(&format!("ALTER SESSION SET materialize = {mode}")).unwrap();
        db.execute("ALTER SESSION SET max_resident_rows = 5000").unwrap();
        let err = db.execute("SELECT COUNT(*) FROM a, b").unwrap_err().to_string();
        assert!(
            err.contains("MAX_RESIDENT_ROWS"),
            "materialize={mode}: budget error should name the option, got: {err}"
        );
        db.execute("ALTER SESSION SET max_resident_rows = 100000").unwrap();
        let n = db.execute("SELECT COUNT(*) FROM a, b").unwrap().count().unwrap();
        assert_eq!(n, 200 * 200, "materialize={mode}");
    }
}

#[test]
fn session_options_and_limit_validation() {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db.execute("CREATE TABLE t (id NUMBER)").unwrap();
    for i in 0..10 {
        db.insert_row("t", vec![Value::Integer(i)]).unwrap();
    }

    // Option round-trips.
    assert!(!db.options().materialize);
    db.execute("ALTER SESSION SET materialize = on").unwrap();
    assert!(db.options().materialize);
    db.execute("ALTER SESSION SET materialize = off").unwrap();
    assert!(!db.options().materialize);
    db.execute("ALTER SESSION SET max_resident_rows = 1234").unwrap();
    assert_eq!(db.options().max_resident_rows, 1234);

    // Rejected values.
    assert!(db.execute("ALTER SESSION SET max_resident_rows = 0").is_err());
    assert!(db.execute("ALTER SESSION SET max_resident_rows = banana").is_err());
    assert!(db.execute("ALTER SESSION SET materialize = sideways").is_err());
    let err = db.execute("ALTER SESSION SET no_such_option = 1").unwrap_err().to_string();
    assert!(err.contains("unknown session option"), "{err}");

    // LIMIT wiring: negative rejected at parse, 0 and n honored.
    assert!(db.execute("SELECT id FROM t LIMIT -1").is_err());
    assert_eq!(db.execute("SELECT id FROM t LIMIT 0").unwrap().rows.len(), 0);
    let res = db.execute("SELECT id FROM t ORDER BY id LIMIT 3").unwrap();
    let ids: Vec<i64> = res.rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    assert_eq!(ids, vec![0, 1, 2]);
}

/// The full corpus must return *bit-identical* rows — order included —
/// at parallel_dop 1, 2, and 4. The morsel size is shrunk so the
/// 60-row tables actually fan out; the exchange's morsel-ordered merge
/// is what makes this hold. The one exception is the table function
/// running with its *own* slave dop: its pair stream is unordered at
/// the source (two TF slaves race to emit), so that entry is compared
/// as a multiset — the exchange cannot restore an order the producer
/// never had.
#[test]
fn corpus_is_dop_invariant() {
    sdo_dbms::set_morsel_rows(8);
    let db = session_with_tables();
    db.execute("ALTER SESSION SET parallel_dop = 1").unwrap();
    let corpus = corpus();
    let baseline: Vec<_> = corpus.iter().map(|(sql, _)| db.execute(sql).unwrap()).collect();
    for dop in [2usize, 4] {
        db.execute(&format!("ALTER SESSION SET parallel_dop = {dop}")).unwrap();
        for ((sql, _), base) in corpus.iter().zip(&baseline) {
            let res = db.execute(sql).unwrap();
            assert_eq!(res.columns, base.columns, "columns diverge at dop {dop} for {sql}");
            if sql.contains("'intersect', 2") {
                let (mut rk, mut bk) = (row_keys(&res.rows), row_keys(&base.rows));
                rk.sort();
                bk.sort();
                assert_eq!(rk, bk, "row multiset diverges at dop {dop} for {sql}");
            } else {
                assert_eq!(res.rows, base.rows, "rows diverge at dop {dop} for {sql}");
            }
        }
    }
}

/// Parallelism must not loosen the resident-row budget: with the
/// morsel size shrunk and a tight (but sufficient) budget, the same
/// query respects `max_resident_rows` at every dop, and the profiled
/// peak stays within the budget.
#[test]
fn resident_budget_holds_at_every_dop() {
    sdo_dbms::set_morsel_rows(8);
    let db = session_with_tables();
    db.execute("ALTER SESSION SET max_resident_rows = 200").unwrap();
    for dop in [1usize, 2, 4] {
        db.execute(&format!("ALTER SESSION SET parallel_dop = {dop}")).unwrap();
        let res = db.execute("SELECT id FROM city_table WHERE id >= 0 ORDER BY id").unwrap();
        assert_eq!(res.rows.len(), 60, "dop {dop}");
        let profile = db.last_profile().unwrap();
        let peak = profile.root.metric("peak_resident_rows").expect("peak reported");
        assert!(peak <= 200, "dop {dop}: peak {peak} exceeds the session budget");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Parallel sort and top-k must match the serial plan bit for bit,
    /// tie-breaks included: coordinates are drawn from a tiny grid so
    /// duplicate geometries (equal distances) are common, and the
    /// serial executor breaks those ties by stable-sort scan order.
    #[test]
    fn parallel_sort_and_topk_match_serial_bit_for_bit(
        coords in proptest::collection::vec((0i64..10, 0i64..10), 24..120),
        k in 1usize..24,
    ) {
        sdo_dbms::set_morsel_rows(8);
        let db = Database::new();
        sdo_core::register_spatial(&db);
        db.execute("CREATE TABLE pts (id NUMBER, geom SDO_GEOMETRY)").unwrap();
        for (i, (x, y)) in coords.iter().enumerate() {
            let g = sdo_geom::wkt::parse_wkt(&format!("POINT ({x} {y})")).unwrap();
            db.insert_row("pts", vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
        }
        let queries = [
            "SELECT id FROM pts ORDER BY SDO_DISTANCE(geom, SDO_POINT(5, 5))".to_string(),
            format!("SELECT id FROM pts ORDER BY SDO_DISTANCE(geom, SDO_POINT(5, 5)) LIMIT {k}"),
            format!(
                "SELECT id FROM pts ORDER BY SDO_DISTANCE(geom, SDO_POINT(5, 5)) DESC LIMIT {k}"
            ),
        ];
        db.execute("ALTER SESSION SET parallel_dop = 1").unwrap();
        let serial: Vec<_> = queries.iter().map(|q| db.execute(q).unwrap().rows).collect();
        for dop in [2usize, 4] {
            db.execute(&format!("ALTER SESSION SET parallel_dop = {dop}")).unwrap();
            for (q, s) in queries.iter().zip(&serial) {
                let par = db.execute(q).unwrap().rows;
                prop_assert_eq!(&par, s, "dop {} diverges for {}", dop, q);
            }
        }
    }
}

/// `parallel_dop` validation: zero and out-of-range rejected with the
/// legal range in the message, garbage rejected, valid values
/// round-trip — consistent with `max_resident_rows` handling.
#[test]
fn parallel_dop_option_is_validated() {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db.execute("ALTER SESSION SET parallel_dop = 4").unwrap();
    assert_eq!(db.options().parallel_dop, 4);
    db.execute("ALTER SESSION SET parallel_dop = 1").unwrap();
    assert_eq!(db.options().parallel_dop, 1);

    let err = db.execute("ALTER SESSION SET parallel_dop = 0").unwrap_err().to_string();
    assert!(err.contains("between 1 and 64"), "zero must name the range: {err}");
    let err = db.execute("ALTER SESSION SET parallel_dop = 65").unwrap_err().to_string();
    assert!(err.contains("between 1 and 64"), "overflow must name the range: {err}");
    let err = db.execute("ALTER SESSION SET parallel_dop = banana").unwrap_err().to_string();
    assert!(err.contains("invalid value"), "garbage must be rejected: {err}");
    // Failed SETs leave the option untouched.
    assert_eq!(db.options().parallel_dop, 1);
}

/// EXECUTE of a prepared statement re-resolves the dop from the
/// session options at execution time: the same prepared SELECT runs
/// parallel after `SET parallel_dop = 4` and serial after `= 1`,
/// observable through the EXPLAIN ANALYZE profile.
#[test]
fn execute_reresolves_dop_from_session_options() {
    sdo_dbms::set_morsel_rows(8);
    let db = session_with_tables();
    db.execute("PREPARE q AS SELECT id FROM city_table WHERE id >= 0").unwrap();

    db.execute("ALTER SESSION SET parallel_dop = 4").unwrap();
    let par = db.execute("EXECUTE q").unwrap();
    assert_eq!(par.rows.len(), 60);
    let profile = db.last_profile().unwrap();
    assert!(
        profile.root.find("EXCHANGE").is_some(),
        "dop 4 EXECUTE must run through the exchange:\n{}",
        profile.render_text()
    );

    db.execute("ALTER SESSION SET parallel_dop = 1").unwrap();
    let ser = db.execute("EXECUTE q").unwrap();
    assert_eq!(ser.rows, par.rows, "dop must not change results");
    let profile = db.last_profile().unwrap();
    assert!(
        profile.root.find("EXCHANGE").is_none(),
        "dop 1 EXECUTE must stay serial:\n{}",
        profile.render_text()
    );
}
