//! Cross-strategy join equivalence: nested-loop, R-tree table-function
//! join, and quadtree merge join must return identical row-pair sets.

use sdo_datagen::{counties, stars, SKY_EXTENT, US_EXTENT};
use sdo_dbms::Database;
use sdo_geom::Geometry;
use sdo_storage::Value;

fn session_with(table: &str, geoms: &[Geometry]) -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db.execute(&format!("CREATE TABLE {table} (id NUMBER, geom SDO_GEOMETRY)")).unwrap();
    for (i, g) in geoms.iter().enumerate() {
        db.insert_row(table, vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
    }
    db
}

fn pair_set(db: &Database, sql: &str) -> Vec<(u64, u64)> {
    let res = db.execute(sql).unwrap();
    let mut out: Vec<(u64, u64)> = res
        .rows
        .iter()
        .map(|r| (r[0].as_rowid().expect("rid1").as_u64(), r[1].as_rowid().expect("rid2").as_u64()))
        .collect();
    out.sort_unstable();
    out
}

fn brute_pairs(a: &[Geometry], b: &[Geometry], d: f64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for (i, ga) in a.iter().enumerate() {
        for (j, gb) in b.iter().enumerate() {
            if sdo_geom::within_distance(ga, gb, d) {
                out.push((i as u64, j as u64));
            }
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn rtree_join_equals_brute_force_counties() {
    let a = counties::generate(70, &US_EXTENT, 100);
    let b = counties::generate(70, &US_EXTENT, 101);
    let db = session_with("ta", &a);
    db.execute("CREATE TABLE tb (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in b.iter().enumerate() {
        db.insert_row("tb", vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
    }
    db.execute("CREATE INDEX ta_x ON ta(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    db.execute("CREATE INDEX tb_x ON tb(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let got = pair_set(
        &db,
        "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('ta','geom','tb','geom','intersect'))",
    );
    assert_eq!(got, brute_pairs(&a, &b, 0.0));
    // distance join
    let got = pair_set(
        &db,
        "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('ta','geom','tb','geom','distance=2.5'))",
    );
    assert_eq!(got, brute_pairs(&a, &b, 2.5));
}

#[test]
fn quadtree_join_equals_rtree_join_stars() {
    let s = stars::generate(400, &SKY_EXTENT, 55);
    // R-tree session
    let db_r = session_with("s1", &s);
    db_r.execute("CREATE TABLE s2 (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in s.iter().enumerate() {
        db_r.insert_row("s2", vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
    }
    db_r.execute("CREATE INDEX s1_x ON s1(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    db_r.execute("CREATE INDEX s2_x ON s2(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let rtree_pairs = pair_set(
        &db_r,
        "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('s1','geom','s2','geom','intersect'))",
    );

    // Quadtree session over the same data
    let db_q = session_with("s1", &s);
    db_q.execute("CREATE TABLE s2 (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for (i, g) in s.iter().enumerate() {
        db_q.insert_row("s2", vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
    }
    db_q.execute(
        "CREATE INDEX s1_q ON s1(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('sdo_level=9, extent=0:0:360:90')",
    )
    .unwrap();
    db_q.execute(
        "CREATE INDEX s2_q ON s2(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('sdo_level=9, extent=0:0:360:90')",
    )
    .unwrap();
    let quadtree_pairs = pair_set(
        &db_q,
        "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('s1','geom','s2','geom','intersect'))",
    );
    assert_eq!(rtree_pairs, quadtree_pairs);
    assert_eq!(rtree_pairs, brute_pairs(&s, &s, 0.0));
}

#[test]
fn touch_mask_join_via_table_function() {
    // Counties share borders: a TOUCH self-join is non-trivial.
    let a = counties::generate(36, &US_EXTENT, 77);
    let db = session_with("c", &a);
    db.execute("CREATE INDEX c_x ON c(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let got = pair_set(
        &db,
        "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('c','geom','c','geom','mask=TOUCH'))",
    );
    let mut want = Vec::new();
    for (i, ga) in a.iter().enumerate() {
        for (j, gb) in a.iter().enumerate() {
            if sdo_geom::relate(ga, gb, sdo_geom::RelateMask::Touch) {
                want.push((i as u64, j as u64));
            }
        }
    }
    want.sort_unstable();
    assert_eq!(got, want);
    assert!(!got.is_empty(), "adjacent counties must TOUCH");
    assert!(got.iter().all(|(i, j)| i != j), "a county cannot TOUCH itself");
}

#[test]
fn filter_interaction_returns_mbr_candidates() {
    let a = counties::generate(30, &US_EXTENT, 88);
    let db = session_with("c", &a);
    db.execute("CREATE INDEX c_x ON c(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let primary =
        pair_set(&db, "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('c','geom','c','geom','FILTER'))");
    let exact = pair_set(
        &db,
        "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('c','geom','c','geom','intersect'))",
    );
    // primary candidates are a superset of exact results
    let exact_set: std::collections::HashSet<_> = exact.iter().collect();
    assert!(exact.len() <= primary.len());
    assert!(exact_set.iter().all(|p| primary.binary_search(p).is_ok()));
}

#[test]
fn kernel_and_prepare_options_preserve_join_results() {
    // The batched MBR kernels and the prepared-geometry secondary
    // filter are pure optimizations: every combination of
    // kernel=scalar|batch x prepare=on|off must return the same pairs.
    let a = counties::generate(60, &US_EXTENT, 300);
    let db = session_with("k", &a);
    db.execute("CREATE INDEX k_x ON k(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    for pred in ["intersect", "mask=touch+overlap", "distance=1.5"] {
        let base = pair_set(
            &db,
            &format!("SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN('k','geom','k','geom','{pred}'))"),
        );
        assert!(!base.is_empty(), "{pred} join must produce pairs");
        for opts in [
            "kernel=scalar",
            "prepare=off",
            "kernel=scalar,prepare=off",
            "kernel=batch,prepare=on",
            "kernel=simd",
            "kernel=simd,prepare=on",
            // sweep_threshold=max forces the quantized scan path;
            // sweep_threshold=0 forces the vectorized plane sweep.
            "kernel=simd,sweep_threshold=max",
            "kernel=simd,sweep_threshold=0",
            "kernel=simd,method=partition",
        ] {
            let got = pair_set(
                &db,
                &format!(
                    "SELECT rid1, rid2 FROM TABLE( \
                     SPATIAL_JOIN('k','geom','k','geom','{pred}', 1, -1, '{opts}'))"
                ),
            );
            assert_eq!(got, base, "pred={pred} opts={opts}");
        }
    }
}

#[test]
fn unknown_kernel_value_is_rejected_at_parse_time() {
    // Option validation must fail the query before any join work
    // starts, and the error must name the offending option and the
    // accepted values.
    let a = counties::generate(4, &US_EXTENT, 301);
    let db = session_with("k", &a);
    db.execute("CREATE INDEX k_x ON k(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    for bad in ["avx512", "vector", "batch2", ""] {
        let err = db
            .execute(&format!(
                "SELECT rid1, rid2 FROM TABLE( \
                 SPATIAL_JOIN('k','geom','k','geom','intersect', 1, -1, 'kernel={bad}'))"
            ))
            .expect_err("bad kernel value must be rejected");
        let msg = err.to_string();
        assert!(msg.contains("kernel"), "error must name the option: {msg}");
        assert!(msg.contains("scalar|batch|simd"), "error must list accepted values: {msg}");
        assert!(msg.contains(bad), "error must echo the rejected value: {msg}");
    }
}
